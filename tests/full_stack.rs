//! Cross-crate integration: scenarios that span the whole workspace —
//! generator → proxy pipeline → client engine → compiler → optimizer.

use dvm_repro::compiler::{NetworkCompiler, Target};
use dvm_repro::core::{CostModel, Organization, ServiceConfig};
use dvm_repro::jvm::{Completion, MapProvider, Vm};
use dvm_repro::monitor::{ProfileMode, SiteTable};
use dvm_repro::optimizer::{repartition_app, ColdPolicy};
use dvm_repro::security::Policy;
use dvm_repro::workload::{figure5_apps, generate};

fn small_app() -> dvm_repro::workload::GeneratedApp {
    generate(&figure5_apps().remove(1).scaled(1, 20000)) // javacup
}

#[test]
fn network_compiler_translates_every_generated_method() {
    let app = small_app();
    let mut nc = NetworkCompiler::new();
    let mut methods = 0;
    for cf in &app.classes {
        let x86 = nc.compile(cf, Target::X86).unwrap();
        let alpha = nc.compile(cf, Target::Alpha).unwrap();
        assert_eq!(x86.methods.len(), alpha.methods.len());
        methods += x86.methods.len();
        // Alpha's fixed 4-byte encoding is never smaller per instruction.
        for (mx, ma) in x86.methods.iter().zip(&alpha.methods) {
            assert_eq!(mx.name, ma.name);
            assert!(mx.native_insns >= ma.native_insns);
        }
    }
    assert!(methods > 100, "compiled {methods} methods");
}

#[test]
fn compiler_amortizes_across_clients_per_figure_of_merit() {
    let app = small_app();
    let mut nc = NetworkCompiler::new();
    for cf in &app.classes {
        nc.compile(cf, Target::X86).unwrap();
    }
    let first_cost = nc.stats.cycles_spent;
    // A second client with the same native format costs nothing extra.
    for cf in &app.classes {
        nc.compile(cf, Target::X86).unwrap();
    }
    assert_eq!(nc.stats.cycles_spent, first_cost);
    assert_eq!(nc.stats.cache_hits as usize, app.classes.len());
}

#[test]
fn profile_guided_repartition_preserves_behavior_end_to_end() {
    let app = small_app();

    // Baseline output.
    let mut provider = MapProvider::new();
    for cf in &app.classes {
        let mut cf = cf.clone();
        provider.insert_class(&mut cf).unwrap();
    }
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    vm.run_main(&app.main_class).unwrap();
    let expected = vm.stdout.clone();

    // Profile with real instrumentation.
    let mut sites = SiteTable::new();
    let mut provider = MapProvider::new();
    for cf in &app.classes {
        let mut cf = cf.clone();
        dvm_repro::monitor::profile_class(&mut cf, &mut sites, ProfileMode::Method).unwrap();
        provider.insert_class(&mut cf).unwrap();
    }
    struct Collector(std::sync::Arc<std::sync::Mutex<dvm_repro::monitor::ProfileCollector>>);
    impl dvm_repro::jvm::DynamicServices for Collector {
        fn profile_count(&mut self, site: i32) {
            self.0
                .lock()
                .unwrap()
                .count(dvm_repro::monitor::SiteId(site));
        }
        fn first_use(&mut self, site: i32) {
            self.0
                .lock()
                .unwrap()
                .first_use(dvm_repro::monitor::SiteId(site));
        }
    }
    let collected = std::sync::Arc::new(std::sync::Mutex::new(
        dvm_repro::monitor::ProfileCollector::new(),
    ));
    let mut vm =
        Vm::with_services(Box::new(provider), Box::new(Collector(collected.clone()))).unwrap();
    vm.run_main(&app.main_class).unwrap();
    let profile = collected.lock().unwrap().clone();
    assert!(!profile.first_use_order().is_empty());

    // Repartition on the real profile; dead methods must move.
    let (split, stats) =
        repartition_app(&app.classes, &sites, &profile, ColdPolicy::NeverUsed).unwrap();
    assert!(stats.methods_moved > 0, "no cold methods found");

    // The split program still verifies under the organization pipeline and
    // produces identical output.
    let org = Organization::new(
        &split,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();
    let mut client = org.client("integration", "applets").unwrap();
    let report = client.run_main(&app.main_class).unwrap();
    assert!(
        matches!(report.completion, Completion::Normal(_)),
        "{:?}",
        report.exception
    );
    assert_eq!(
        client.vm.stdout, expected,
        "repartitioning changed program output"
    );

    // Overflow classes were fetched lazily only when needed: cold units
    // are NOT in the transfer log unless a stub fired (NeverUsed policy
    // means none should have).
    let cold_fetched = report
        .transfers
        .iter()
        .filter(|t| t.class.ends_with("$Cold"))
        .count();
    assert_eq!(
        cold_fetched, 0,
        "cold overflow units must not ship at startup"
    );

    // And the bytes actually transferred shrank versus the unsplit app
    // pushed through the *same* pipeline (both sides carry the pipeline's
    // instrumentation; the split side additionally defers link checks on
    // the not-yet-seen overflow classes, which costs a little back).
    let shipped_split: usize = report.transfers.iter().map(|t| t.bytes).sum();
    let org_unsplit = Organization::new(
        &app.classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();
    let mut baseline_client = org_unsplit.client("baseline", "applets").unwrap();
    let baseline = baseline_client.run_main(&app.main_class).unwrap();
    let shipped_full: usize = baseline.transfers.iter().map(|t| t.bytes).sum();
    assert!(
        shipped_split < shipped_full,
        "split shipped {shipped_split} bytes, unsplit shipped {shipped_full}"
    );
    // The saving is substantial: at least 10% of the wire bytes.
    assert!(
        (shipped_full - shipped_split) as f64 / shipped_full as f64 > 0.10,
        "saving too small: {shipped_split} vs {shipped_full}"
    );
}

#[test]
fn audit_and_security_compose_on_one_pipeline() {
    // Both services instrument the same classes; the composed result must
    // still verify and run.
    let app = small_app();
    let org = Organization::new(
        &app.classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();
    let mut client = org.client("compose", "applets").unwrap();
    let report = client.run_main(&app.main_class).unwrap();
    assert!(matches!(report.completion, Completion::Normal(_)));
    let stats = *org.service_stats.lock();
    assert!(stats.audit_probes > 0);
    assert!(stats.static_checks > 0);
    assert!(org.console.lock().total_events() > 0);
}
