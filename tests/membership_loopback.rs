//! End-to-end tests for dvm-membership: real sockets, live joins and
//! retirements under client load, warm-cache handoff to a joining
//! shard, a mid-migration shard kill that resumes from the cursor, and
//! gossip detection of a dead shard feeding automatic retirement.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use dvm_repro::chaos::{run_scale, ScaleConfig};
use dvm_repro::cluster::{ClusterClassProvider, ClusterClientConfig, ClusterOptions, HealthConfig};
use dvm_repro::core::{CostModel, Organization, ServiceConfig};
use dvm_repro::membership::{MembershipOptions, MigrationClient, MigrationConfig};
use dvm_repro::net::{Hello, NetConfig, MIGRATE_BATCH};
use dvm_repro::proxy::Signer;
use dvm_repro::security::Policy;
use dvm_repro::workload::{corpus, Applet};

fn org_over(applets: &[Applet]) -> Organization {
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    Organization::new(
        &classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap()
}

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

/// The smallest `n` corpus applets (cheap to rewrite in a debug build).
fn small_applets(seed: u64, n: usize) -> Vec<Applet> {
    let mut applets = corpus(seed);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(n);
    applets
}

fn urls_of(applets: &[Applet]) -> Vec<String> {
    applets
        .iter()
        .flat_map(|a| a.classes.iter())
        .map(|c| format!("class://{}", c.name().unwrap()))
        .collect()
}

fn fast_config() -> ClusterClientConfig {
    ClusterClientConfig {
        net: NetConfig {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            ..NetConfig::default()
        },
        health: HealthConfig {
            failure_threshold: 2,
            quarantine: Duration::from_millis(200),
        },
        rounds: 3,
        round_backoff: Duration::from_millis(10),
        ring_sync: true,
    }
}

/// The acceptance scenario: a 3-shard cluster grows to 6 and shrinks to
/// 2 while 8 clients fetch through every epoch change. No fetch fails,
/// every payload matches the fault-free oracle, migration carries the
/// cache (bounded re-rewrites), and each transition publishes a larger
/// epoch.
#[test]
fn scale_dance_under_load_loses_no_client() {
    let applets = small_applets(11, 4);
    let urls = urls_of(&applets);
    let org = org_over(&applets);
    let mut plane = org
        .serve_elastic(
            3,
            ClusterOptions {
                seed: 7,
                ..ClusterOptions::default()
            },
            MembershipOptions::default(),
        )
        .unwrap();

    let cfg = ScaleConfig {
        seed: 0xD1CE,
        clients: 8,
        grow_to: 6,
        keep: vec![1, 4],
        client_config: fast_config(),
        signer: Some(Signer::new(b"dvm-org-key")),
        hello: hello("scale"),
        transition_pause: Duration::from_millis(30),
    };
    let mut make_proxy = |id: u32| org.shard_proxy_named(&format!("shard{id}"));
    let report = run_scale(&mut plane, &mut make_proxy, &urls, &cfg);
    plane.into_cluster().shutdown();

    assert!(
        report.ok(),
        "scale invariants violated:\n{}",
        report.render()
    );
    assert_eq!(report.fetches_failed, 0, "{}", report.render());
    assert!(report.fetches_ok > 0);
    assert_eq!(report.shards_peak, 6);
    assert_eq!(report.shards_end, 2);
    assert!(report.epoch_end > report.epoch_start);
    assert!(
        report.migrated_keys > 0,
        "joins should have migrated cache entries:\n{}",
        report.render()
    );
    assert!(
        report.client_ring_syncs > 0,
        "clients should have adopted new epochs over RING_UPDATE:\n{}",
        report.render()
    );
}

/// A join pulls its key range out of the previous owners before
/// returning, so the joining shard's first fetches hit warm cache: the
/// acceptance bar is a > 90% first-fetch hit rate, and with the join
/// fully sequenced before the fetches it is exactly 100% — zero
/// rewrites on the new shard.
#[test]
fn joining_shard_first_fetches_hit_warm_cache() {
    let applets = small_applets(11, 5);
    let urls = urls_of(&applets);
    let org = org_over(&applets);
    let mut plane = org
        .serve_elastic(
            3,
            ClusterOptions {
                seed: 21,
                ..ClusterOptions::default()
            },
            MembershipOptions::default(),
        )
        .unwrap();

    let mut provider = ClusterClassProvider::new(
        plane.cluster().addrs().to_vec(),
        plane.cluster().ring().clone(),
        hello("warm"),
        Some(Signer::new(b"dvm-org-key")),
        fast_config(),
    );
    // Warm every key on the starting shards.
    for url in &urls {
        provider.fetch(url).expect("warmup fetch");
    }

    // Join until the new shard owns at least one of the warmed keys
    // (ownership is hash-determined; one join almost always suffices).
    let mut owned: Vec<String> = Vec::new();
    let mut joined = None;
    for _ in 0..3 {
        let report = org.grow_cluster(&mut plane).expect("join");
        assert!(
            report.migration.complete,
            "join migration did not complete: failed sources {:?}",
            report.failed_sources
        );
        owned = urls
            .iter()
            .filter(|u| plane.cluster().ring().home(u) == Some(report.shard))
            .cloned()
            .collect();
        joined = Some(report);
        if !owned.is_empty() {
            break;
        }
    }
    let joined = joined.unwrap();
    assert!(
        !owned.is_empty(),
        "no warmed key landed on a joining shard across three joins"
    );
    assert!(
        joined.migration.keys >= owned.len() as u64,
        "migration moved {} keys but the shard owns {} warmed urls",
        joined.migration.keys,
        owned.len()
    );

    // Re-route over RING_UPDATE (no reconnect) and fetch every key the
    // new shard now owns: all of them must be served from the migrated
    // cache, i.e. zero rewrites on the joining shard.
    assert!(provider.sync_ring(), "client should observe the new epoch");
    assert_eq!(provider.ring_epoch(), plane.cluster().ring().epoch());
    let shard = joined.shard as usize;
    let rewrites_before = plane.cluster().proxy(shard).stats().rewrites;
    for url in &owned {
        provider.fetch(url).expect("post-join fetch");
    }
    let cold = plane
        .cluster()
        .proxy(shard)
        .stats()
        .rewrites
        .saturating_sub(rewrites_before);
    assert_eq!(
        cold,
        0,
        "{} of {} first fetches on the joining shard missed the migrated cache",
        cold,
        owned.len()
    );
    provider.close();
    plane.into_cluster().shutdown();
}

/// A byte-level TCP forwarder whose upstream can be swapped at runtime:
/// the migration puller connects to a stable address while the shard
/// behind it is killed and restarted (on a fresh port, as real restarts
/// are).
struct Forwarder {
    addr: SocketAddr,
    upstream: Arc<Mutex<SocketAddr>>,
    running: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Forwarder {
    fn start(upstream: SocketAddr) -> Forwarder {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let upstream = Arc::new(Mutex::new(upstream));
        let running = Arc::new(AtomicBool::new(true));
        let accept = {
            let upstream = upstream.clone();
            let running = running.clone();
            std::thread::spawn(move || {
                for client in listener.incoming() {
                    if !running.load(Ordering::SeqCst) {
                        break;
                    }
                    let client = match client {
                        Ok(c) => c,
                        Err(_) => break,
                    };
                    let up = *upstream.lock().unwrap();
                    let server = match TcpStream::connect_timeout(&up, Duration::from_millis(500)) {
                        Ok(s) => s,
                        // Upstream dead: the client observes an
                        // immediate close — exactly what a killed
                        // shard looks like.
                        Err(_) => continue,
                    };
                    let (c2, s2) = (client.try_clone().unwrap(), server.try_clone().unwrap());
                    std::thread::spawn(move || pump(client, server));
                    std::thread::spawn(move || pump(s2, c2));
                }
            })
        };
        Forwarder {
            addr,
            upstream,
            running,
            accept: Some(accept),
        }
    }

    fn set_upstream(&self, addr: SocketAddr) {
        *self.upstream.lock().unwrap() = addr;
    }

    fn shutdown(mut self) {
        self.running.store(false, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn pump(mut from: TcpStream, mut to: TcpStream) {
    let _ = std::io::copy(&mut from, &mut to);
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// The crash story of live migration: the source shard is killed while
/// a pull is mid-range and restarted on a new port; the puller resumes
/// from its cursor over the same (forwarded) address and still receives
/// every key exactly once — a kill costs a reconnect, never a restart
/// from scratch.
#[test]
fn mid_migration_kill_resumes_from_cursor() {
    let applets = small_applets(11, 2);
    let org = org_over(&applets);
    let mut cluster = org
        .serve_cluster_with(
            2,
            ClusterOptions {
                seed: 33,
                ..ClusterOptions::default()
            },
        )
        .unwrap();

    // Seed shard 0's cache with enough entries that the new shard's
    // range spans several MIGRATE_BEGIN exchanges.
    let mut seeded: HashMap<String, Vec<u8>> = HashMap::new();
    for i in 0..300u32 {
        let url = format!("class://bulk/K{i:03}");
        let value = vec![(i % 251) as u8; 64 + (i % 7) as usize];
        cluster.proxy(0).migrate_ingest(&url, value.clone());
        seeded.insert(url, value);
    }

    // A third shard joins the ring (no automatic migration at this
    // layer — the pull below is the migration).
    let (shard, _plan) = cluster
        .spawn_shard(org.shard_proxy_named("shard2"))
        .unwrap();
    let epoch = cluster.ring().epoch();
    let expected: HashMap<String, Vec<u8>> = seeded
        .iter()
        .filter(|(url, _)| cluster.ring().home(url) == Some(shard))
        .map(|(u, v)| (u.clone(), v.clone()))
        .collect();
    assert!(
        expected.len() > MIGRATE_BATCH,
        "want a multi-batch range to cut mid-stream, got {} keys",
        expected.len()
    );

    let forwarder = Forwarder::start(cluster.addrs()[0]);
    let fwd_addr = forwarder.addr;
    let (cut_tx, cut_rx) = mpsc::channel::<()>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();

    let puller = std::thread::spawn(move || {
        let mut client = MigrationClient::new(
            fwd_addr,
            Hello {
                user: format!("shard{shard}"),
                principal: "cluster-peer".to_owned(),
                ..hello("mig")
            },
            MigrationConfig {
                net: NetConfig {
                    connect_timeout: Duration::from_millis(500),
                    read_timeout: Duration::from_millis(2_000),
                    write_timeout: Duration::from_millis(2_000),
                    ..NetConfig::default()
                },
                max_attempts: 10,
                retry_backoff: Duration::from_millis(20),
            },
        );
        let mut got: HashMap<String, Vec<u8>> = HashMap::new();
        let mut signalled = false;
        let result = client.pull(shard, epoch, |url, bytes| {
            got.insert(url.to_owned(), bytes.to_vec());
            if got.len() == 10 && !signalled {
                signalled = true;
                // Mid-range: hold the stream while the main thread
                // kills and restarts the source.
                cut_tx.send(()).unwrap();
                resume_rx.recv().unwrap();
            }
        });
        (result, got)
    });

    cut_rx.recv().expect("puller reached mid-range");
    cluster.kill_shard(0).expect("shard 0 was serving");
    let new_addr = cluster.restart_shard(0).expect("restart shard 0");
    forwarder.set_upstream(new_addr);
    resume_tx.send(()).unwrap();

    let (result, got) = puller.join().expect("puller thread");
    let report = result.expect("pull completes after the kill");
    assert!(report.complete, "source confirmed the full range");
    assert!(
        report.resumes >= 1,
        "the kill must have cut the stream at least once"
    );
    assert_eq!(
        got.len(),
        expected.len(),
        "resumed pull must deliver every owned key exactly once"
    );
    for (url, value) in &expected {
        assert_eq!(
            got.get(url).map(|v| v.as_slice()),
            Some(value.as_slice()),
            "migrated bytes for {url} diverged"
        );
    }

    forwarder.shutdown();
    cluster.shutdown();
}

/// Gossip failure detection closes the loop: a killed shard is probed,
/// suspected, declared dead (deterministically, from the seed), and
/// auto-retired from the ring — after which clients re-sync and keep
/// fetching from the survivors.
#[test]
fn gossip_detects_dead_shard_and_retires_it() {
    let applets = small_applets(11, 3);
    let urls = urls_of(&applets);
    let org = org_over(&applets);
    let mut plane = org
        .serve_elastic(
            3,
            ClusterOptions {
                seed: 5,
                ..ClusterOptions::default()
            },
            MembershipOptions {
                net: NetConfig {
                    connect_timeout: Duration::from_millis(200),
                    read_timeout: Duration::from_millis(1_000),
                    write_timeout: Duration::from_millis(1_000),
                    ..NetConfig::default()
                },
                ..MembershipOptions::default()
            },
        )
        .unwrap();

    let mut provider = ClusterClassProvider::new(
        plane.cluster().addrs().to_vec(),
        plane.cluster().ring().clone(),
        hello("gossip"),
        Some(Signer::new(b"dvm-org-key")),
        fast_config(),
    );
    for url in &urls {
        provider.fetch(url).expect("warmup fetch");
    }

    let epoch_before = plane.cluster().ring().epoch();
    plane.cluster_mut().kill_shard(2).expect("shard 2 serving");

    // Probe until the detector walks the full suspect → dead path for
    // shard 2 (ping fails, indirect probes fail, suspicion expires).
    for _ in 0..32 {
        plane.gossip_tick();
        if plane.dead_members().contains(&2) {
            break;
        }
    }
    assert!(
        plane.dead_members().contains(&2),
        "gossip never declared the killed shard dead"
    );

    let reports = plane.retire_dead();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].shard, 2);
    assert!(
        !plane.cluster().ring().shards().contains(&2),
        "dead shard must leave the ring"
    );
    assert!(plane.cluster().ring().epoch() > epoch_before);
    let stats = plane.stats();
    assert!(stats.deaths >= 1, "death not counted: {stats:?}");
    assert!(stats.undrained_retires >= 1, "a dead shard cannot drain");

    // Survivors still serve everything after a ring re-sync.
    assert!(provider.sync_ring(), "client should observe the new epoch");
    for url in &urls {
        provider.fetch(url).expect("post-retirement fetch");
    }
    provider.close();
    plane.into_cluster().shutdown();
}
