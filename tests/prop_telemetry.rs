//! Property-based tests for the dvm-telemetry metrics plane: bucket
//! boundaries really bound, quantiles track a sorted reference to
//! within one bucket, snapshot merging is associative and commutative,
//! and the lock-free hot path survives concurrent writers.

use proptest::prelude::*;

use dvm_repro::telemetry::metrics::{bucket_lower, bucket_upper, BUCKETS};
use dvm_repro::telemetry::{Histogram, HistogramSnapshot, Registry};

/// The bucket a value lands in, recovered from the public bounds alone
/// (`bucket_index` itself is private): the unique `i` with
/// `lower(i) <= v < upper(i)`.
fn bucket_of(v: u64) -> usize {
    let mut lo = 0usize;
    let mut hi = BUCKETS - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if bucket_lower(mid) <= v {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Every value is bounded by its own bucket: `lower <= v < upper`,
    /// and recording it increments exactly that bucket.
    #[test]
    fn bucket_bounds_contain_the_value(v in any::<u64>()) {
        let i = bucket_of(v);
        prop_assert!(bucket_lower(i) <= v);
        prop_assert!(v < bucket_upper(i) || bucket_upper(i) == u64::MAX);
        let snap = snapshot_of(&[v]);
        prop_assert_eq!(snap.buckets.len(), 1);
        prop_assert_eq!(snap.buckets[0], (i as u32, 1));
    }

    /// The estimated quantile lands in the same bucket as the exact
    /// quantile of a sorted reference — the error bound the log-linear
    /// layout promises (<= 1/16 relative) — and the extremes are exact.
    #[test]
    fn quantile_tracks_a_sorted_reference(
        mut values in proptest::collection::vec(0u64..1_000_000_000_000, 1..200),
        q_millis in 0u64..=1000,
    ) {
        let q = q_millis as f64 / 1000.0;
        let snap = snapshot_of(&values);
        values.sort_unstable();
        prop_assert_eq!(snap.quantile(0.0), values[0]);
        prop_assert_eq!(snap.quantile(1.0), *values.last().unwrap());
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let reference = values[rank - 1];
        let estimate = snap.quantile(q);
        if q > 0.0 && q < 1.0 {
            let i = bucket_of(reference);
            prop_assert!(
                bucket_lower(i) <= estimate && estimate < bucket_upper(i),
                "q={} estimate {} outside reference {}'s bucket [{}, {})",
                q, estimate, reference, bucket_lower(i), bucket_upper(i)
            );
        }
    }

    /// Merging snapshots is associative and commutative, so shard
    /// reports can be folded in any order and yield one fleet view.
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000_000_000, 0..60),
        b in proptest::collection::vec(0u64..1_000_000_000_000, 0..60),
        c in proptest::collection::vec(0u64..1_000_000_000_000, 0..60),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // The merge is also the histogram of the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        if !all.is_empty() {
            prop_assert_eq!(&left, &snapshot_of(&all));
        }
    }
}

/// The hot path is relaxed atomics on shared handles: 8 threads
/// hammering one counter and one histogram lose nothing.
#[test]
fn concurrent_increments_from_eight_threads_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("hits");
    let histogram = registry.histogram("lat_ns");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(t as u64 * 1000 + i);
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    let snap = registry.snapshot();
    assert_eq!(snap.counters["hits"], THREADS as u64 * PER_THREAD);
    let h = &snap.histograms["lat_ns"];
    assert_eq!(h.count, THREADS as u64 * PER_THREAD);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, 7 * 1000 + PER_THREAD - 1);
    assert_eq!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>(), h.count);
}
