//! Loopback end-to-end tests for dvm-net: real TCP sockets, concurrent
//! clients, signature verification, cache-tier reporting, fault
//! injection, and clean shutdown.

use std::time::{Duration, Instant};

use dvm_repro::core::{CostModel, Organization, ServiceConfig};
use dvm_repro::net::{FaultPlan, Hello, NetClassProvider, NetConfig, NetError, ServerConfig};
use dvm_repro::proxy::{ServedFrom, Signer};
use dvm_repro::security::Policy;
use dvm_repro::workload::{corpus, Applet};

/// A signed, cached, fully-serviced organization over `applets`.
fn org_over(applets: &[Applet]) -> Organization {
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    Organization::new(
        &classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap()
}

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

fn org_signer() -> Option<Signer> {
    Some(Signer::new(b"dvm-org-key"))
}

/// The smallest `n` corpus applets (cheap to execute in a debug build).
fn small_applets(seed: u64, n: usize) -> Vec<Applet> {
    let mut applets = corpus(seed);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(n);
    applets
}

/// The acceptance scenario: at least eight concurrent `DvmClient`s fetch
/// and run applet-corpus code through a live `ProxyServer`, with zero
/// signature failures and audit events arriving at the console.
#[test]
fn eight_concurrent_remote_clients_run_corpus_applets() {
    let applets = small_applets(11, 4);
    let org = org_over(&applets);
    let server = org.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        for i in 0..8usize {
            let applet = &applets[i % applets.len()];
            let org = &org;
            scope.spawn(move || {
                let user = format!("user{i}");
                let mut client = org.remote_client(addr, &user, "applets").unwrap();
                let report = client.run_main(&applet.main_class).unwrap();
                assert!(
                    matches!(report.completion, dvm_repro::jvm::Completion::Normal(_)),
                    "client {i}: {:?}",
                    report.completion
                );
                assert!(!report.transfers.is_empty(), "client {i} fetched nothing");
                // A bad signature would have failed the class load outright,
                // so a normal completion certifies verification; the tiers
                // must still be sensible for a warm shared cache.
                for t in &report.transfers {
                    assert!(
                        matches!(
                            t.served_from,
                            ServedFrom::Rewritten | ServedFrom::MemoryCache
                        ),
                        "client {i} class {} came from {:?}",
                        t.class,
                        t.served_from
                    );
                }
            });
        }
    });

    // Each remote client opens a provider and an audit connection, and
    // every handshake creates a console session.
    assert_eq!(org.console.lock().session_count(), 16);

    // Audit events are fire-and-forget: give the server a moment to drain
    // what the clients wrote before they disconnected.
    let deadline = Instant::now() + Duration::from_secs(5);
    while org.console.lock().total_events() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let events = org.console.lock().total_events();
    assert!(
        events > 0,
        "no audit events reached the console over the wire"
    );

    let stats = server.shutdown();
    assert_eq!(stats.connections, 16);
    assert!(stats.requests > 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.audit_events, events);
}

/// Tier reporting over the wire: the first fetch is rewritten, repeats
/// are served from the memory cache, and no signature ever fails.
#[test]
fn cache_tiers_and_signatures_are_reported_correctly() {
    let applets = small_applets(23, 2);
    let org = org_over(&applets);
    let server = org.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let url = format!("class://{}", applets[0].main_class);

    let mut first =
        NetClassProvider::new(addr, hello("alice"), org_signer(), NetConfig::default()).unwrap();
    let (bytes, transfer) = first.fetch(&url).unwrap();
    assert!(!bytes.is_empty());
    assert_eq!(transfer.served_from, ServedFrom::Rewritten);
    assert!(
        transfer.processing_ns > 0,
        "rewrite must charge simulated time"
    );

    let (_, again) = first.fetch(&url).unwrap();
    assert_eq!(again.served_from, ServedFrom::MemoryCache);
    assert_eq!(again.processing_ns, 0);

    let mut second =
        NetClassProvider::new(addr, hello("bob"), org_signer(), NetConfig::default()).unwrap();
    let (other_bytes, cross) = second.fetch(&url).unwrap();
    assert_eq!(cross.served_from, ServedFrom::MemoryCache);
    assert_eq!(
        other_bytes, bytes,
        "both clients must see identical verified payloads"
    );

    assert_eq!(first.stats().signature_failures, 0);
    assert_eq!(second.stats().signature_failures, 0);

    // A client verifying with the wrong key must reject the payload. An
    // integrity failure is retried on a fresh connection (the stream
    // cannot be trusted), so a *persistent* bad key exhausts the retry
    // budget — every attempt rejected, nothing ever delivered.
    let wrong_config = NetConfig {
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(2),
        ..NetConfig::default()
    };
    let mut wrong_key = NetClassProvider::new(
        addr,
        hello("mallory"),
        Some(Signer::new(b"not-the-org-key")),
        wrong_config,
    )
    .unwrap();
    match wrong_key.fetch(&url) {
        Err(NetError::Exhausted(inner)) => {
            assert!(matches!(*inner, NetError::BadSignature), "got {inner:?}")
        }
        other => panic!("expected exhausted BadSignature retries, got {other:?}"),
    }
    assert_eq!(
        wrong_key.stats().signature_failures,
        u64::from(wrong_config.max_attempts),
        "every attempt must have been verified and rejected"
    );

    // Typed error frames: an unknown URL is a remote NotFound, not a
    // transport failure.
    match first.fetch("class://no/Such") {
        Err(NetError::Remote { code, .. }) => {
            assert_eq!(code, dvm_repro::net::ErrorCode::NotFound)
        }
        other => panic!("expected remote NotFound, got {other:?}"),
    }

    server.shutdown();
}

/// Injected connection drops are recovered by the client's bounded
/// retry/backoff, transparently to the caller.
#[test]
fn injected_connection_drops_are_recovered_by_retry() {
    let applets = small_applets(37, 3);
    let org = org_over(&applets);
    let server = org
        .serve_with(
            "127.0.0.1:0",
            ServerConfig {
                fault: Some(FaultPlan::drop_every_nth(4)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
    let addr = server.addr();

    let cfg = NetConfig {
        max_attempts: 4,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(20),
        ..NetConfig::default()
    };
    let mut provider = NetClassProvider::new(addr, hello("carol"), org_signer(), cfg).unwrap();

    let mut names = Vec::new();
    for a in &applets {
        for c in &a.classes {
            names.push(c.name().unwrap().to_owned());
        }
    }
    for name in &names {
        provider
            .fetch(&format!("class://{name}"))
            .unwrap_or_else(|e| {
                panic!("fetch of {name} not recovered: {e}");
            });
    }

    let stats = provider.stats();
    assert_eq!(stats.requests, names.len() as u64);
    assert!(stats.retries > 0, "the fault plan never fired a retry");
    assert!(stats.reconnects > 1, "recovery must rebuild the connection");
    assert_eq!(stats.signature_failures, 0);

    let server_stats = server.shutdown();
    assert!(server_stats.faults_injected > 0);
}

/// Shutdown joins every connection thread — even with a client still
/// connected — and frees the port.
#[test]
fn shutdown_is_clean_with_live_connections() {
    let applets = small_applets(51, 1);
    let org = org_over(&applets);
    let server = org.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut provider =
        NetClassProvider::new(addr, hello("dave"), org_signer(), NetConfig::default()).unwrap();
    let url = format!("class://{}", applets[0].main_class);
    provider.fetch(&url).unwrap();

    // The provider stays connected across shutdown: the server must not
    // wait for the peer to hang up.
    let started = Instant::now();
    let stats = server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "shutdown hung on a live connection"
    );
    assert!(stats.connections >= 1);

    // The listener is gone; a further fetch cannot reconnect.
    std::thread::sleep(Duration::from_millis(20));
    match provider.fetch(&url) {
        Err(_) => {}
        Ok(_) => panic!("fetch succeeded after shutdown"),
    }
}

/// The in-process and socket paths are the same machine: identical
/// completions and identical transfer manifests for the same applet.
#[test]
fn remote_client_matches_in_process_client() {
    let applets = small_applets(73, 1);
    let org = org_over(&applets);
    let server = org.serve("127.0.0.1:0").unwrap();

    let mut local = org.client("alice", "applets").unwrap();
    let local_report = local.run_main(&applets[0].main_class).unwrap();

    let mut remote = org.remote_client(server.addr(), "bob", "applets").unwrap();
    let remote_report = remote.run_main(&applets[0].main_class).unwrap();

    assert_eq!(
        format!("{:?}", local_report.completion),
        format!("{:?}", remote_report.completion)
    );
    let manifest = |r: &dvm_repro::core::RunReport| {
        let mut v: Vec<(String, usize)> = r
            .transfers
            .iter()
            .map(|t| (t.class.clone(), t.bytes))
            .collect();
        v.sort();
        v
    };
    assert_eq!(manifest(&local_report), manifest(&remote_report));

    server.shutdown();
}
