//! End-to-end tests for the dvm-telemetry stats plane: a remote fetch
//! through a live shard cluster produces one distributed trace whose
//! spans cover client → shard → pipeline, and `STATS_REQUEST` pulls a
//! mergeable per-shard picture of the whole fleet — including the
//! client-side circuit breaker opening after a shard is killed.

use std::time::Duration;

use dvm_repro::cluster::{
    collect_fleet_stats, ClusterClassProvider, ClusterClientConfig, HealthConfig,
};
use dvm_repro::core::{CostModel, Organization, ServiceConfig};
use dvm_repro::net::{Hello, NetConfig};
use dvm_repro::proxy::Signer;
use dvm_repro::security::Policy;
use dvm_repro::telemetry::{Span, SpanId};
use dvm_repro::workload::{corpus, Applet};

fn org_over(applets: &[Applet]) -> Organization {
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    Organization::new(
        &classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap()
}

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

fn small_applets(seed: u64, n: usize) -> Vec<Applet> {
    let mut applets = corpus(seed);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(n);
    applets
}

fn fast_config() -> ClusterClientConfig {
    ClusterClientConfig {
        net: NetConfig {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            ..NetConfig::default()
        },
        health: HealthConfig {
            failure_threshold: 2,
            // Long enough that an opened breaker is still open when the
            // test inspects the gauge.
            quarantine: Duration::from_secs(30),
        },
        rounds: 3,
        round_backoff: Duration::from_millis(10),
        ..ClusterClientConfig::default()
    }
}

fn provider_for(cluster: &dvm_repro::cluster::ProxyCluster, user: &str) -> ClusterClassProvider {
    ClusterClassProvider::new(
        cluster.addrs().to_vec(),
        cluster.ring().clone(),
        hello(user),
        Some(Signer::new(b"dvm-org-key")),
        fast_config(),
    )
}

/// The tentpole acceptance scenario: one remote fetch through a 3-shard
/// cluster yields one trace whose spans — gathered from the client's own
/// recorder plus every shard's `STATS_RESPONSE` — cover the client
/// fetch, the serving shard, the proxy, and its pipeline stages.
#[test]
fn one_remote_fetch_produces_a_full_cross_process_trace() {
    let applets = small_applets(19, 1);
    let org = org_over(&applets);
    let cluster = org.serve_cluster(3).unwrap();
    let mut provider = provider_for(&cluster, "tracer");

    let url = format!("class://{}", applets[0].main_class);
    let (bytes, _) = provider.fetch(&url).unwrap();
    assert!(!bytes.is_empty());

    // The client's recorder holds the trace root.
    let client_spans = provider.telemetry().recorder().dump();
    let root = client_spans
        .iter()
        .find(|s| s.name == "cluster.fetch")
        .expect("client recorded no root span");
    assert_eq!(root.parent, SpanId::NONE);
    let trace = root.trace;

    // Pull every shard's span window over the wire and keep this trace.
    let mut spans: Vec<Span> = client_spans
        .iter()
        .filter(|s| s.trace == trace)
        .cloned()
        .collect();
    for &addr in cluster.addrs() {
        let report =
            dvm_repro::net::fetch_stats(addr, hello("stats-puller"), NetConfig::default(), true)
                .unwrap();
        assert!(report.node.starts_with("shard"), "node = {}", report.node);
        spans.extend(report.spans.into_iter().filter(|s| s.trace == trace));
    }

    assert!(
        spans.len() >= 5,
        "expected >= 5 spans, got {}: {:?}",
        spans.len(),
        spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    let has = |name: &str| spans.iter().any(|s| s.name == name);
    assert!(has("cluster.fetch"), "client span missing");
    assert!(has("shard.serve"), "shard span missing");
    assert!(has("proxy.handle"), "proxy span missing");
    let stages: Vec<&Span> = spans
        .iter()
        .filter(|s| s.name.starts_with("stage."))
        .collect();
    assert!(!stages.is_empty(), "no pipeline stage spans");
    assert!(
        stages.iter().any(|s| s.duration_ns > 0),
        "every stage latency was zero: {stages:?}"
    );
    // Parenting holds across processes: every non-root span of the trace
    // points at another span of the trace.
    let ids: Vec<SpanId> = spans.iter().map(|s| s.id).collect();
    for s in spans.iter().filter(|s| s.parent != SpanId::NONE) {
        assert!(
            ids.contains(&s.parent),
            "span {} has a dangling parent",
            s.name
        );
    }
    cluster.shutdown();
}

/// The stats plane sees the whole fleet: per-shard reports merge into a
/// snapshot consistent with the workload, and after a shard is killed
/// the collector marks it unreachable while the client's circuit
/// breaker (visible in *its* report) opens.
#[test]
fn fleet_stats_merge_and_survive_a_shard_kill() {
    let applets = small_applets(31, 3);
    let org = org_over(&applets);
    let mut cluster = org.serve_cluster(3).unwrap();
    let mut provider = provider_for(&cluster, "fleet-user");

    let urls: Vec<String> = applets
        .iter()
        .flat_map(|a| a.classes.iter())
        .map(|c| format!("class://{}", c.name().unwrap()))
        .collect();
    for url in &urls {
        provider.fetch(url).unwrap();
    }

    let fleet = collect_fleet_stats(
        cluster.addrs(),
        &hello("stats-puller"),
        NetConfig::default(),
        false,
    );
    assert_eq!(fleet.reachable(), 3);
    // The merged snapshot accounts for the workload: every fetch hit
    // some shard's proxy (peer fills can only add on top).
    let served = fleet.merged.counters.get("proxy.requests").copied();
    assert!(
        served.unwrap_or(0) >= urls.len() as u64,
        "merged proxy.requests = {served:?}, expected >= {}",
        urls.len()
    );
    let frames_in = fleet.merged.counters.get("net.server.frames_in").copied();
    assert!(frames_in.unwrap_or(0) > 0, "no wire frames counted");
    // Per-shard attribution survives the merge path.
    let mut nodes: Vec<String> = fleet
        .shards
        .iter()
        .filter_map(|s| s.report.as_ref().map(|r| r.node.clone()))
        .collect();
    nodes.sort();
    assert_eq!(nodes, ["shard0", "shard1", "shard2"]);

    // Kill a shard, then hammer a URL homed on it until the client's
    // breaker opens.
    let dead = cluster.ring().home(&urls[0]).unwrap() as usize;
    cluster.kill_shard(dead).expect("shard was alive");
    for _ in 0..3 {
        // Failover keeps these succeeding; the dead home keeps failing.
        provider.fetch(&urls[0]).unwrap();
    }
    let client_report = provider.telemetry().report();
    let opened = client_report
        .metrics
        .counters
        .get("cluster.breaker.opened")
        .copied()
        .unwrap_or(0);
    assert!(opened >= 1, "breaker never opened: {client_report:?}");
    assert_eq!(
        client_report
            .metrics
            .gauges
            .get("cluster.breaker.open_now")
            .copied(),
        Some(1),
        "dead shard's circuit should still be open"
    );
    assert!(
        client_report
            .metrics
            .counters
            .get("cluster.failovers")
            .copied()
            .unwrap_or(0)
            >= 1
    );

    // The collector tolerates the dead shard and says which one it is.
    let fleet = collect_fleet_stats(
        cluster.addrs(),
        &hello("stats-puller"),
        NetConfig {
            connect_timeout: Duration::from_millis(250),
            ..NetConfig::default()
        },
        false,
    );
    assert_eq!(fleet.reachable(), 2);
    let down = &fleet.shards[dead];
    assert!(!down.reachable());
    assert!(down.error.is_some());
    cluster.shutdown();
}
