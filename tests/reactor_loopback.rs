//! Loopback tests for the epoll reactor engine (`dvm-reactor` behind
//! `ProxyServer`): slowloris reaping, write backpressure under pipelined
//! load, the blocking fallback engine, and an ignored C10K soak.
//!
//! `net_loopback.rs` proves the protocol behaves the same on either
//! engine; this file targets the properties only the reactor has — a
//! deadline that reaps stalled connections without a thread per victim,
//! bounded per-connection output with pause/resume, and one loop thread
//! holding thousands of sockets.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dvm_repro::core::{CostModel, Organization, ServiceConfig};
use dvm_repro::net::{Frame, ServerConfig};
use dvm_repro::security::Policy;
use dvm_repro::workload::{corpus, Applet};

/// A signed, cached, fully-serviced organization over `applets`.
fn org_over(applets: &[Applet]) -> Organization {
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    Organization::new(
        &classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap()
}

/// The smallest `n` corpus applets (cheap to execute in a debug build).
fn small_applets(seed: u64, n: usize) -> Vec<Applet> {
    let mut applets = corpus(seed);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(n);
    applets
}

/// Blocking read of one complete frame off `r`.
fn read_frame(r: &mut impl Read) -> Frame {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix).unwrap();
    let len = u32::from_be_bytes(prefix) as usize;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).unwrap();
    Frame::decode_body(&body).unwrap()
}

/// Fifty connections dribble half a length prefix and stall forever; the
/// idle deadline reaps every one of them while a real client fetches and
/// runs code through the same loop, unharmed.
#[test]
fn slowloris_connections_are_reaped_while_real_clients_proceed() {
    let applets = small_applets(7, 2);
    let org = org_over(&applets);
    let server = org
        .serve_with(
            "127.0.0.1:0",
            ServerConfig {
                max_connections: 128,
                idle_deadline: Some(Duration::from_millis(250)),
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
    let addr = server.addr();

    let attackers: Vec<TcpStream> = (0..50)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            // Half a length prefix: never a complete frame, never a
            // violation — exactly the read a slowloris holds open.
            s.write_all(&[0x00, 0x00]).unwrap();
            s
        })
        .collect();

    // Service is undisturbed while the attack is in progress.
    let mut client = org.remote_client(addr, "victim", "applets").unwrap();
    let report = client.run_main(&applets[0].main_class).unwrap();
    assert!(
        matches!(report.completion, dvm_repro::jvm::Completion::Normal(_)),
        "client under slowloris: {:?}",
        report.completion
    );
    drop(client);

    // The reaper clears all fifty within a few deadlines — no thread was
    // ever parked on any of them.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().idle_reaped < 50 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    assert!(
        stats.idle_reaped >= 50,
        "only {} of 50 stalled connections reaped",
        stats.idle_reaped
    );
    assert_eq!(stats.errors, 0);

    // The reaped sockets observe the close as EOF, not a protocol error.
    for mut s in attackers {
        let mut buf = [0u8; 16];
        let n = s.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "reaped connection delivered bytes");
    }
    server.shutdown();
}

/// One connection pipelines 400 cache probes whose replies total ~25 MB
/// against a 32 KiB output bound, without reading a byte until the burst
/// is sent. The reactor must pause reads (recording backpressure stalls)
/// instead of buffering the amplification, then drain every reply intact
/// once the peer starts reading.
#[test]
fn pipelined_reads_hit_backpressure_and_drain_intact() {
    let applets = small_applets(11, 2);
    let org = org_over(&applets);
    let server = org
        .serve_with(
            "127.0.0.1:0",
            ServerConfig {
                write_buf_limit: 32 << 10,
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
    let addr = server.addr();

    let url = "dvm://applets/BackpressureBlob.class";
    let payload = vec![0xAB; 64 << 10];
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(
        &Frame::PeerPut {
            url: url.to_owned(),
            bytes: payload.clone(),
        }
        .encode(),
    )
    .unwrap();

    const GETS: u32 = 400;
    let mut burst = Vec::new();
    for request_id in 0..GETS {
        burst.extend_from_slice(
            &Frame::PeerGet {
                request_id,
                url: url.to_owned(),
            }
            .encode(),
        );
    }
    s.write_all(&burst).unwrap();

    // With this peer not reading, the kernel's socket buffers absorb a
    // few megabytes at most — far less than the ~25 MB of replies — so
    // the reactor must stall rather than queue the rest in memory.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().backpressure_stalls == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        server.stats().backpressure_stalls >= 1,
        "no backpressure stall while the peer refused to read"
    );

    // Start draining: every reply arrives, in order, bit-exact.
    let mut r = BufReader::with_capacity(1 << 20, s.try_clone().unwrap());
    for want_id in 0..GETS {
        match read_frame(&mut r) {
            Frame::CodeResponse {
                request_id, bytes, ..
            } => {
                assert_eq!(request_id, want_id);
                assert_eq!(bytes, payload, "reply {want_id} corrupted");
            }
            other => panic!("reply {want_id}: unexpected frame {other:?}"),
        }
    }

    // The reactor's own telemetry flows through the ordinary stats plane.
    let metrics = server.telemetry().report().metrics;
    assert!(metrics.counter("reactor.loop_iterations") > 0);
    assert!(metrics.counter("reactor.events_total") > 0);
    assert!(metrics.counter("reactor.backpressure_stalls_total") >= 1);
    assert_eq!(metrics.gauge("reactor.conns_open"), 1);

    drop(r);
    drop(s);
    let stats = server.shutdown();
    assert!(stats.backpressure_stalls >= 1);
    assert_eq!(stats.errors, 0);
}

/// `reactor: false` still serves the full protocol on the original
/// thread-per-connection engine — the fallback is live, not vestigial.
#[test]
fn blocking_engine_still_serves_with_reactor_off() {
    let applets = small_applets(3, 2);
    let org = org_over(&applets);
    let server = org
        .serve_with(
            "127.0.0.1:0",
            ServerConfig {
                reactor: false,
                ..ServerConfig::default()
            },
        )
        .unwrap();
    let mut client = org
        .remote_client(server.addr(), "fallback", "applets")
        .unwrap();
    let report = client.run_main(&applets[0].main_class).unwrap();
    assert!(
        matches!(report.completion, dvm_repro::jvm::Completion::Normal(_)),
        "blocking engine: {:?}",
        report.completion
    );
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.errors, 0);
}

/// C10K soak: one loop thread holds ten thousand live connections and
/// still answers stats probes. Scaled down only if the file-descriptor
/// limit cannot be raised. Run with `--ignored` (it raises
/// `RLIMIT_NOFILE` and opens ~10k sockets).
#[test]
#[ignore = "10k-connection soak; run with --ignored"]
fn c10k_soak_holds_ten_thousand_connections() {
    let limit = dvm_repro::reactor::sys::raise_nofile_limit(25_000).unwrap_or(1024);
    // Client + server ends both count against the same process limit,
    // with headroom for everything else the test binary holds open.
    let target = (((limit.saturating_sub(500)) / 2) as usize).min(10_000);

    let applets = small_applets(5, 1);
    let org = org_over(&applets);
    let server = org
        .serve_with(
            "127.0.0.1:0",
            ServerConfig {
                max_connections: target + 64,
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
    let addr = server.addr();

    let mut conns = Vec::with_capacity(target);
    for _ in 0..target {
        conns.push(TcpStream::connect(addr).unwrap());
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.live_connections() < target && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        server.live_connections(),
        target,
        "not all connections admitted"
    );

    // With every socket open, the loop still serves: every 100th
    // connection completes a stats round-trip.
    for (i, s) in conns.iter_mut().enumerate().step_by(100) {
        s.write_all(
            &Frame::StatsRequest {
                request_id: i as u32,
                include_spans: false,
            }
            .encode(),
        )
        .unwrap();
        match read_frame(s) {
            Frame::StatsResponse { request_id, .. } => assert_eq!(request_id, i as u32),
            other => panic!("conn {i}: unexpected frame {other:?}"),
        }
    }

    drop(conns);
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.live_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.shutdown();
    assert_eq!(stats.connections as usize, target);
    assert_eq!(stats.errors, 0);
}
