//! Property-based tests for the dvm-cluster consistent-hash ring: load
//! balance within ±25% of fair share, minimal remapping on shard
//! removal, deterministic agreement between independently built rings,
//! and failover orders that are true permutations.

use proptest::prelude::*;

use dvm_repro::cluster::HashRing;

/// A workload of distinct class-URL-shaped keys.
fn keys(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("class://pkg{}/Class{i}", i % 37))
        .collect()
}

proptest! {
    /// Every shard's key count stays within ±25% of fair share at >= 64
    /// vnodes, for any seed and any shard count — claim-style placement
    /// gives every shard exactly `vnodes` equal arcs, so the only noise
    /// left is the key hash's multinomial spread.
    #[test]
    fn balance_is_within_a_quarter_of_fair_share(
        shards in 2u32..=8,
        vnodes in 64u32..=256,
        seed in any::<u64>(),
    ) {
        let ring = HashRing::with_shards(shards, vnodes, seed);
        let keys = keys(2000);
        let mut counts = vec![0u64; shards as usize];
        for k in &keys {
            counts[ring.home(k).unwrap() as usize] += 1;
        }
        let fair = keys.len() as f64 / shards as f64;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - fair).abs() / fair;
            prop_assert!(
                dev <= 0.25,
                "shard {}/{}: {} keys vs fair {:.0} (deviation {:.3}, vnodes {}, seed {})",
                s, shards, c, fair, dev, vnodes, seed
            );
        }
    }

    /// Removing one shard remaps only that shard's keys: every key homed
    /// elsewhere keeps its home, and every key homed on the victim moves
    /// to a survivor.
    #[test]
    fn removal_remaps_only_the_removed_shards_keys(
        shards in 2u32..=8,
        vnodes in 64u32..=128,
        seed in any::<u64>(),
        victim_pick in any::<u32>(),
    ) {
        let mut ring = HashRing::with_shards(shards, vnodes, seed);
        let victim = victim_pick % shards;
        let keys = keys(1500);
        let before: Vec<u32> = keys.iter().map(|k| ring.home(k).unwrap()).collect();
        ring.remove_shard(victim);
        for (k, &was) in keys.iter().zip(&before) {
            let now = ring.home(k).unwrap();
            if was == victim {
                prop_assert_ne!(now, victim, "{} still maps to the removed shard", k);
            } else {
                prop_assert_eq!(now, was, "{} moved although its home survived", k);
            }
        }
    }

    /// The join mirror of removal: adding one shard moves only the keys
    /// the newcomer claims — every key whose home survives keeps it —
    /// and the grown ring still balances within ±25% of fair share.
    #[test]
    fn join_remaps_only_the_keys_the_newcomer_claims(
        shards in 2u32..=7,
        vnodes in 64u32..=256,
        seed in any::<u64>(),
    ) {
        let mut ring = HashRing::with_shards(shards, vnodes, seed);
        let keys = keys(2000);
        let before: Vec<u32> = keys.iter().map(|k| ring.home(k).unwrap()).collect();
        let newcomer = shards;
        let plan = ring.join_shard(newcomer);
        prop_assert!(plan.targets().contains(&newcomer) || plan.is_empty());
        let mut counts = vec![0u64; shards as usize + 1];
        for (k, &was) in keys.iter().zip(&before) {
            let now = ring.home(k).unwrap();
            counts[now as usize] += 1;
            if now != was {
                prop_assert_eq!(
                    now, newcomer,
                    "{} moved to shard {} although only shard {} joined",
                    k, now, newcomer
                );
            }
        }
        let fair = keys.len() as f64 / (shards + 1) as f64;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - fair).abs() / fair;
            prop_assert!(
                dev <= 0.25,
                "shard {}/{}: {} keys vs fair {:.0} after join (deviation {:.3}, vnodes {}, seed {})",
                s, shards + 1, c, fair, dev, vnodes, seed
            );
        }
    }

    /// Two rings built independently from the same (shards, vnodes,
    /// seed) agree on every key — the zero-coordination contract between
    /// clients and shards.
    #[test]
    fn independently_built_rings_agree(
        shards in 1u32..=8,
        vnodes in 1u32..=256,
        seed in any::<u64>(),
    ) {
        let a = HashRing::with_shards(shards, vnodes, seed);
        let b = HashRing::with_shards(shards, vnodes, seed);
        for k in keys(300) {
            prop_assert_eq!(a.home(&k), b.home(&k));
            prop_assert_eq!(a.route(&k), b.route(&k));
        }
    }

    /// The failover order is a permutation of the shard set starting at
    /// the key's home shard.
    #[test]
    fn route_is_a_permutation_starting_at_home(
        shards in 1u32..=8,
        vnodes in 1u32..=128,
        seed in any::<u64>(),
        key_pick in 0usize..1000,
    ) {
        let ring = HashRing::with_shards(shards, vnodes, seed);
        let key = format!("class://route/K{key_pick}");
        let order = ring.route(&key);
        prop_assert_eq!(order.len(), shards as usize);
        prop_assert_eq!(order[0], ring.home(&key).unwrap());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, ring.shards().to_vec());
    }
}
