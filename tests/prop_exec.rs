//! Differential property tests for the optimizing execution tier: for
//! any generated program the compiled IR must be observationally
//! equivalent to the interpreter — same return values (or the same
//! exception), same heap effects, same service-event stream — plus
//! replay of the hostile IR-package corpus in `tests/corpus/exec/`.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use dvm_repro::bytecode::asm::Asm;
use dvm_repro::bytecode::insn::{ICond, Kind};
use dvm_repro::classfile::{
    AccessFlags, Attribute, ClassBuilder, ClassFile, CodeAttribute, MemberInfo,
};
use dvm_repro::exec::{compile_class, decode, encode, lower, ExecError};
use dvm_repro::jvm::{
    AuditKind, Completion, DynamicServices, MapProvider, SecurityDecision, Value, Vm,
};

// ---- Helpers ----------------------------------------------------------------

fn ps() -> AccessFlags {
    AccessFlags::PUBLIC | AccessFlags::STATIC
}

fn push_method(cf: &mut ClassFile, method: &str, descriptor: &str, a: Asm) {
    let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
    let name_index = cf.pool.utf8(method).unwrap();
    let desc_index = cf.pool.utf8(descriptor).unwrap();
    cf.methods.push(MemberInfo {
        access: ps(),
        name_index,
        descriptor_index: desc_index,
        attributes: vec![Attribute::Code(attr)],
    });
}

fn vm_interp(cf: &ClassFile) -> Vm {
    let mut cf = cf.clone();
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf).unwrap();
    Vm::new(Box::new(provider)).unwrap()
}

/// A VM with the class's optimized IR installed before first load.
fn vm_ir(cf: &ClassFile) -> Vm {
    let mut vm = vm_interp(cf);
    let (ir, _) = compile_class(cf).unwrap();
    vm.install_ir(ir);
    vm
}

/// An observation a test can compare across tiers: the integer result
/// or the thrown exception's (class, message).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Int(i32),
    Thrown(String, String),
}

fn observe(vm: &mut Vm, class: &str, method: &str, descriptor: &str, args: Vec<Value>) -> Outcome {
    match vm.run_static(class, method, descriptor, args).unwrap() {
        Completion::Normal(Some(Value::Int(v))) => Outcome::Int(v),
        Completion::Exception(e) => {
            let (class, msg) = vm.exception_message(e).unwrap();
            Outcome::Thrown(class, msg)
        }
        other => panic!("unexpected completion {other:?}"),
    }
}

// ---- Random arithmetic ------------------------------------------------------

/// One step of a straight-line accumulator program.
#[derive(Debug, Clone, Copy)]
enum Step {
    Add(i32),
    Sub(i32),
    Mul(i32),
    Rem(i32),
    Xor(i32),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-1000..1000i32).prop_map(Step::Add),
        (-1000..1000i32).prop_map(Step::Sub),
        (-13..13i32).prop_map(Step::Mul),
        // Any divisor, zero included: ArithmeticException must match too.
        (-7..7i32).prop_map(Step::Rem),
        (-1000..1000i32).prop_map(Step::Xor),
    ]
}

fn arith_class(steps: &[Step]) -> ClassFile {
    let mut cf = ClassBuilder::new("p/Arith").build();
    let mut a = Asm::new(4);
    a.iload(0).istore(1);
    for s in steps {
        a.iload(1);
        match s {
            Step::Add(k) => {
                a.iconst(*k).iadd();
            }
            Step::Sub(k) => {
                a.iconst(*k).isub();
            }
            Step::Mul(k) => {
                a.iconst(*k).imul();
            }
            Step::Rem(k) => {
                a.iconst(*k).irem();
            }
            Step::Xor(k) => {
                a.iconst(*k).logic(
                    dvm_repro::bytecode::NumKind::Int,
                    dvm_repro::bytecode::LogicOp::Xor,
                );
            }
        }
        a.istore(1);
    }
    a.iload(1).ret_val(Kind::Int);
    push_method(&mut cf, "run", "(I)I", a);
    cf
}

// ---- Heap effects -----------------------------------------------------------

/// `p/Heap`: a static accumulator plus an array digest.
///
/// `bump(v)` adds `v` to static `x`; `get()` reads it back;
/// `fill(n, k)` builds `a[i] = i*i + x` for `i < n` and returns `a[k]`.
fn heap_class() -> ClassFile {
    let mut cf = ClassBuilder::new("p/Heap")
        .field(AccessFlags::STATIC, "x", "I")
        .build();
    let xref = cf.pool.fieldref("p/Heap", "x", "I").unwrap();

    let mut a = Asm::new(1);
    a.getstatic(xref).iload(0).iadd().putstatic(xref).ret();
    push_method(&mut cf, "bump", "(I)V", a);

    let mut a = Asm::new(0);
    a.getstatic(xref).ret_val(Kind::Int);
    push_method(&mut cf, "get", "()I", a);

    let mut a = Asm::new(4);
    let top = a.new_label();
    let done = a.new_label();
    a.iload(0)
        .newarray(dvm_repro::bytecode::AKind::Int)
        .astore(2);
    a.iconst(0).istore(3);
    a.place(top);
    a.iload(3).iload(0).if_icmp(ICond::Ge, done);
    a.aload(2).iload(3);
    a.iload(3).iload(3).imul().getstatic(xref).iadd();
    a.array_store(dvm_repro::bytecode::AKind::Int);
    a.iinc(3, 1).goto(top);
    a.place(done);
    a.aload(2)
        .iload(1)
        .array_load(dvm_repro::bytecode::AKind::Int);
    a.ret_val(Kind::Int);
    push_method(&mut cf, "fill", "(II)I", a);
    cf
}

// ---- Service events ---------------------------------------------------------

struct Recorder {
    events: Arc<Mutex<Vec<String>>>,
}

impl DynamicServices for Recorder {
    fn security_check(&mut self, sid: i32, perm: i32) -> SecurityDecision {
        self.events
            .lock()
            .unwrap()
            .push(format!("check {sid} {perm}"));
        // Deny odd subject ids so both outcomes appear in the stream.
        if sid % 2 != 0 {
            SecurityDecision::Deny { cost_cycles: 11 }
        } else {
            SecurityDecision::Allow { cost_cycles: 7 }
        }
    }

    fn audit_event(&mut self, site: i32, kind: AuditKind) {
        self.events
            .lock()
            .unwrap()
            .push(format!("audit {site} {kind:?}"));
    }

    fn profile_count(&mut self, site: i32) {
        self.events.lock().unwrap().push(format!("count {site}"));
    }
}

/// `p/Svc.probe(sid)`: audit-enter, a security check against the given
/// subject, a profiler count, audit-exit, return 1. The lowered IR
/// carries these as `Service` instructions.
fn service_class(sites: &[i32]) -> ClassFile {
    let mut cf = ClassBuilder::new("p/Svc").build();
    let check = cf
        .pool
        .methodref("dvm/rt/Enforcer", "check", "(II)V")
        .unwrap();
    let enter = cf.pool.methodref("dvm/rt/Audit", "enter", "(I)V").unwrap();
    let exit = cf.pool.methodref("dvm/rt/Audit", "exit", "(I)V").unwrap();
    let count = cf
        .pool
        .methodref("dvm/rt/Profiler", "count", "(I)V")
        .unwrap();
    let mut a = Asm::new(1);
    for site in sites {
        a.iconst(*site).invokestatic(enter);
        a.iload(0).iconst(*site).invokestatic(check);
        a.iconst(*site).invokestatic(count);
        a.iconst(*site).invokestatic(exit);
    }
    a.iconst(1).ret_val(Kind::Int);
    push_method(&mut cf, "probe", "(I)I", a);
    cf
}

fn vm_services(cf: &ClassFile, events: Arc<Mutex<Vec<String>>>, ir: bool) -> Vm {
    let mut cf2 = cf.clone();
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf2).unwrap();
    let mut vm = Vm::with_services(Box::new(provider), Box::new(Recorder { events })).unwrap();
    if ir {
        let (class_ir, _) = compile_class(cf).unwrap();
        vm.install_ir(class_ir);
    }
    vm
}

// ---- Properties -------------------------------------------------------------

proptest! {
    /// Straight-line integer arithmetic (including division-by-zero
    /// paths): the IR tier returns the interpreter's value or throws
    /// the interpreter's exception.
    #[test]
    fn ir_matches_interpreter_on_random_arithmetic(
        steps in proptest::collection::vec(arb_step(), 1..24),
        seed in any::<i32>(),
    ) {
        let cf = arith_class(&steps);
        let mut interp = vm_interp(&cf);
        let mut tiered = vm_ir(&cf);
        let want = observe(&mut interp, "p/Arith", "run", "(I)I", vec![Value::Int(seed)]);
        let got = observe(&mut tiered, "p/Arith", "run", "(I)I", vec![Value::Int(seed)]);
        prop_assert_eq!(&got, &want, "steps {:?}", steps);
        prop_assert_eq!(interp.exec.stats.ir_invocations, 0);
        prop_assert!(tiered.exec.stats.ir_invocations >= 1, "method stayed interpreted");
    }

    /// Counted loops: accumulator loops with arbitrary bounds, strides,
    /// and deltas agree across tiers.
    #[test]
    fn ir_matches_interpreter_on_random_loops(
        n in 0..60i32,
        stride in 1..5i32,
        delta in -10..10i32,
    ) {
        let mut cf = ClassBuilder::new("p/Loop").build();
        let mut a = Asm::new(4);
        let top = a.new_label();
        let done = a.new_label();
        a.iconst(0).istore(1);
        a.iconst(0).istore(2);
        a.place(top);
        a.iload(2).iload(0).if_icmp(ICond::Ge, done);
        a.iload(1).iload(2).iadd().iconst(delta).iadd().istore(1);
        a.iinc(2, stride as i16).goto(top);
        a.place(done);
        a.iload(1).ret_val(Kind::Int);
        push_method(&mut cf, "sum", "(I)I", a);

        let mut interp = vm_interp(&cf);
        let mut tiered = vm_ir(&cf);
        let want = observe(&mut interp, "p/Loop", "sum", "(I)I", vec![Value::Int(n)]);
        let got = observe(&mut tiered, "p/Loop", "sum", "(I)I", vec![Value::Int(n)]);
        prop_assert_eq!(got, want);
        prop_assert!(tiered.exec.stats.ir_invocations >= 1);
    }

    /// Heap effects: any sequence of static-field bumps and array
    /// fills leaves both tiers observing the same heap.
    #[test]
    fn ir_matches_interpreter_on_heap_effects(
        bumps in proptest::collection::vec(-100..100i32, 1..12),
        n in 1..20i32,
        k in 0..20i32,
    ) {
        let k = k.min(n - 1);
        let cf = heap_class();
        let mut interp = vm_interp(&cf);
        let mut tiered = vm_ir(&cf);
        for vm in [&mut interp, &mut tiered] {
            for v in &bumps {
                vm.run_static("p/Heap", "bump", "(I)V", vec![Value::Int(*v)]).unwrap();
            }
        }
        let want_x = observe(&mut interp, "p/Heap", "get", "()I", vec![]);
        let got_x = observe(&mut tiered, "p/Heap", "get", "()I", vec![]);
        prop_assert_eq!(got_x, want_x);
        let want_a = observe(&mut interp, "p/Heap", "fill", "(II)I",
            vec![Value::Int(n), Value::Int(k)]);
        let got_a = observe(&mut tiered, "p/Heap", "fill", "(II)I",
            vec![Value::Int(n), Value::Int(k)]);
        prop_assert_eq!(got_a, want_a);
        prop_assert!(tiered.exec.stats.ir_invocations >= 1);
    }

    /// Service streams: audit, profiling, and security events reach the
    /// hooks in the same order with the same operands on both tiers —
    /// including the denial path's SecurityException.
    #[test]
    fn ir_matches_interpreter_on_service_events(
        sites in proptest::collection::vec(0..50i32, 1..8),
        sid in 0..8i32,
    ) {
        let cf = service_class(&sites);
        let interp_events = Arc::new(Mutex::new(Vec::new()));
        let tiered_events = Arc::new(Mutex::new(Vec::new()));
        let mut interp = vm_services(&cf, interp_events.clone(), false);
        let mut tiered = vm_services(&cf, tiered_events.clone(), true);
        let want = observe(&mut interp, "p/Svc", "probe", "(I)I", vec![Value::Int(sid)]);
        let got = observe(&mut tiered, "p/Svc", "probe", "(I)I", vec![Value::Int(sid)]);
        prop_assert_eq!(got, want);
        prop_assert_eq!(
            tiered_events.lock().unwrap().clone(),
            interp_events.lock().unwrap().clone()
        );
        prop_assert!(tiered.exec.stats.ir_invocations >= 1);
    }

    /// Lowered IR round-trips through the wire format exactly.
    #[test]
    fn packages_round_trip(
        steps in proptest::collection::vec(arb_step(), 1..24),
    ) {
        let cf = arith_class(&steps);
        let (ir, _) = compile_class(&cf).unwrap();
        let decoded = decode(&encode(&ir)).unwrap();
        prop_assert_eq!(decoded, ir);
    }

    /// Arbitrary bytes never panic the package decoder: corrupt cache
    /// entries and hostile peers get a typed error.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        if let Err(e) = decode(&bytes) {
            prop_assert!(matches!(e, ExecError::BadPackage(_)), "{e:?}");
        }
    }

    /// Arbitrary bytes behind a valid magic/version prefix never panic.
    #[test]
    fn decoder_never_panics_with_magic(tail in proptest::collection::vec(any::<u8>(), 0..600)) {
        let mut bytes = b"DVMX\x01".to_vec();
        bytes.extend(tail);
        if let Err(e) = decode(&bytes) {
            prop_assert!(matches!(e, ExecError::BadPackage(_)), "{e:?}");
        }
    }

    /// Arbitrary code arrays never panic the lowering pass: whatever
    /// the bytecode decoder accepts, `lower` either compiles or
    /// declines with a typed error.
    #[test]
    fn lowering_never_panics(code in proptest::collection::vec(any::<u8>(), 0..200)) {
        let attr = CodeAttribute {
            max_stack: 10,
            max_locals: 10,
            code,
            exception_table: vec![],
            attributes: vec![],
        };
        let pool = dvm_repro::classfile::pool::ConstPool::new();
        if let Ok(decoded) = dvm_repro::bytecode::Code::decode(&attr) {
            let _ = lower(&decoded, &pool, "fuzz", "()V");
        }
    }
}

// ---- Corpus replay ----------------------------------------------------------

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/exec")
}

/// Replays every hostile package in `tests/corpus/exec/` against the
/// IR decoder through the shared `dvm_fuzz::corpus` loader. Each
/// entry carries `# expect: reject` and must be rejected with a typed
/// `ExecError::BadPackage` — never accepted, never a panic.
#[test]
fn corpus_packages_are_rejected_without_panicking() {
    let entries = dvm_repro::fuzz::corpus::load_dir(corpus_dir());
    assert!(!entries.is_empty(), "corpus directory has no .hex entries");
    for entry in &entries {
        let name = &entry.name;
        assert_eq!(
            entry.annotation("expect"),
            Some("reject"),
            "{name}: missing or unexpected '# expect:' annotation"
        );
        match decode(&entry.bytes) {
            Err(ExecError::BadPackage(_)) => {}
            other => panic!("{name}: expected BadPackage, got {other:?}"),
        }
    }
}

/// Writes the corpus through the shared `dvm_fuzz::corpus` renderer.
/// Every entry is one hostile DVMX package annotated `# expect:
/// reject`. Run with `-- --ignored` after a format change, then review
/// the diff — an entry that stops being rejected is a decoder break,
/// not a refresh.
#[test]
#[ignore = "regenerates tests/corpus/exec/*.hex"]
fn regenerate_exec_corpus() {
    let dir = corpus_dir();

    /// `"DVMX"` magic plus the current version byte.
    fn header() -> Vec<u8> {
        vec![0x44, 0x56, 0x4D, 0x58, 0x01]
    }
    /// Header plus class name `"t/C"`.
    fn class() -> Vec<u8> {
        let mut v = header();
        v.extend_from_slice(&[0x00, 0x03]);
        v.extend_from_slice(b"t/C");
        v
    }
    /// One-method package: name `"m"`, descriptor `"()V"`, the given
    /// frame shape, instruction bytes, and handler bytes.
    fn method(
        max_locals: u16,
        num_regs: u16,
        insn_count: u32,
        insns: &[u8],
        handlers: &[u8],
    ) -> Vec<u8> {
        let mut v = class();
        v.extend_from_slice(&[0x00, 0x01]); // one method
        v.extend_from_slice(&[0x00, 0x01]);
        v.push(b'm');
        v.extend_from_slice(&[0x00, 0x03]);
        v.extend_from_slice(b"()V");
        v.extend_from_slice(&max_locals.to_be_bytes());
        v.extend_from_slice(&num_regs.to_be_bytes());
        v.extend_from_slice(&insn_count.to_be_bytes());
        v.extend_from_slice(insns);
        v.extend_from_slice(handlers);
        v
    }
    const NO_HANDLERS: &[u8] = &[0x00, 0x00];

    let dump = |name: &str, note: &str, bytes: &[u8]| {
        dvm_repro::fuzz::corpus::write_entry(&dir, name, note, &[("expect", "reject")], bytes);
    };

    dump(
        "bad-constant-tag.hex",
        "Const instruction with constant tag 9 (valid tags are 0-5).\n\
         Expect ExecError::BadPackage(\"bad constant tag 9\").",
        &method(1, 2, 1, &[0x01, 0x00, 0x01, 0x09], NO_HANDLERS),
    );
    dump(
        "bad-magic.hex",
        "Magic reads \"DVMY\", not \"DVMX\".\n\
         Expect ExecError::BadPackage(\"bad magic\").",
        &[0x44, 0x56, 0x4D, 0x59, 0x01],
    );
    dump(
        "bad-version.hex",
        "Valid magic, version byte 0x63 (99) names no format revision.\n\
         Expect ExecError::BadPackage(\"unsupported version 99\").",
        &[0x44, 0x56, 0x4D, 0x58, 0x63],
    );
    dump(
        "branch-target-out-of-range.hex",
        "Goto targets instruction 9 of a 1-instruction body.\n\
         Expect ExecError::BadPackage(\"branch target 9 out of 1\").",
        &method(1, 2, 1, &[0x0E, 0x00, 0x00, 0x00, 0x09], NO_HANDLERS),
    );
    dump(
        "class-name-overrun.hex",
        "Class-name length claims 32 bytes but only two follow.\n\
         Expect ExecError::BadPackage (truncated).",
        &{
            let mut v = header();
            v.extend_from_slice(&[0x00, 0x20]);
            v.extend_from_slice(b"t/");
            v
        },
    );
    dump(
        "handler-out-of-bounds.hex",
        "Exception handler covers the empty range [0, 0).\n\
         Expect ExecError::BadPackage(\"handler range out of bounds\").",
        &method(
            1,
            2,
            1,
            &[0x11, 0x00],
            &[
                0x00, 0x01, // one handler
                0x00, 0x00, 0x00, 0x00, // start 0
                0x00, 0x00, 0x00, 0x00, // end 0 (start >= end)
                0x00, 0x00, 0x00, 0x00, // handler 0
                0x00, 0x00, // catch_type 0
            ],
        ),
    );
    dump(
        "max-locals-exceed-regs.hex",
        "max_locals 5 in a 2-register frame: arguments could not be\n\
         received. Expect ExecError::BadPackage(\"max_locals exceeds\n\
         num_regs\").",
        &method(5, 2, 1, &[0x11, 0x00], NO_HANDLERS),
    );
    dump(
        "oversized-body.hex",
        "Instruction count 0x00200001 exceeds the decoder's MAX_ITEMS cap;\n\
         the length field must be rejected before any allocation.\n\
         Expect ExecError::BadPackage(\"oversized method body\").",
        &method(1, 2, 0x0020_0001, &[], &[]),
    );
    dump(
        "register-out-of-range.hex",
        "Move writes register 255 in a 2-register frame; post-decode\n\
         validation must refuse to install it.\n\
         Expect ExecError::BadPackage(\"register 255 out of 2\").",
        &method(1, 2, 1, &[0x02, 0x00, 0xFF, 0x00, 0x00], NO_HANDLERS),
    );
    dump(
        "trailing-bytes.hex",
        "A well-formed empty package followed by one stray byte.\n\
         Expect ExecError::BadPackage(\"trailing bytes\").",
        &{
            let mut v = class();
            v.extend_from_slice(&[0x00, 0x00]); // no methods
            v.push(0xFF);
            v
        },
    );
    dump(
        "truncated-magic.hex",
        "Three bytes of magic; the package ends mid-header.\n\
         Expect ExecError::BadPackage (truncated).",
        &[0x44, 0x56, 0x4D],
    );
    dump(
        "unknown-insn-tag.hex",
        "A one-instruction body whose tag (0xEE) names no IR instruction.\n\
         Expect ExecError::BadPackage(\"bad instruction tag 238\").",
        &method(1, 2, 1, &[0xEE], &[]),
    );
    dump(
        "zero-length.hex",
        "The empty package: not even a magic number.\n\
         Expect ExecError::BadPackage (truncated).",
        &[],
    );
}
