//! Loopback end-to-end tests for the optimizing execution tier: a live
//! `ProxyServer` compiles rewritten classes to IR packages, clients
//! fetch them next to the classes over real sockets and execute on the
//! IR tier, repeat fetches serve cached IR with zero re-lowering, and
//! the compiled-IR disk tier survives a kill + warm restart.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dvm_repro::cluster::ClusterOptions;
use dvm_repro::core::{CostModel, Organization, ServiceConfig};
use dvm_repro::net::{Hello, NetClassProvider, NetConfig};
use dvm_repro::proxy::{ServedFrom, Signer};
use dvm_repro::security::Policy;
use dvm_repro::workload::{corpus, Applet};

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dvm-exec-loopback-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_applets(seed: u64, n: usize) -> Vec<Applet> {
    let mut applets = corpus(seed);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(n);
    applets
}

fn org_over(applets: &[Applet]) -> Organization {
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    Organization::new(
        &classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap()
}

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

fn org_signer() -> Option<Signer> {
    Some(Signer::new(b"dvm-org-key"))
}

fn class_urls(applets: &[Applet]) -> Vec<String> {
    applets
        .iter()
        .flat_map(|a| a.classes.iter())
        .map(|c| format!("class://{}", c.name().unwrap()))
        .collect()
}

/// A full remote client executes applet code on the IR tier: the
/// proxy compiled the rewritten classes, the provider fetched the IR
/// packages next to them over the socket, and the VM dispatched
/// compiled methods.
#[test]
fn remote_client_executes_on_the_ir_tier() {
    let applets = small_applets(11, 2);
    let org = org_over(&applets);
    let server = org.serve("127.0.0.1:0").unwrap();

    let mut client = org
        .remote_client(server.addr(), "tiered", "applets")
        .unwrap();
    let report = client.run_main(&applets[0].main_class).unwrap();
    assert!(
        matches!(report.completion, dvm_repro::jvm::Completion::Normal(_)),
        "{:?}",
        report.completion
    );
    let stats = client.vm.exec.stats;
    assert!(
        stats.installed_classes > 0,
        "no IR packages arrived over the wire: {stats:?}"
    );
    assert!(
        stats.ir_invocations > 0,
        "nothing executed on the IR tier: {stats:?}"
    );
    assert!(org.proxy.stats().ir_compiles > 0);
    server.shutdown();
}

/// The cache path: a second client's fetches serve every class and
/// every IR package from the proxy cache — the compiler does zero
/// re-lowering, and the packages arrive byte-identical.
#[test]
fn second_fetch_serves_cached_ir_with_zero_relowering() {
    let applets = small_applets(23, 3);
    let urls = class_urls(&applets);
    let org = org_over(&applets);
    let server = org.serve("127.0.0.1:0").unwrap();

    // First life: every class is rewritten and compiled once.
    let mut first_ir = Vec::new();
    {
        let mut provider = NetClassProvider::new(
            server.addr(),
            hello("cold"),
            org_signer(),
            NetConfig::default(),
        )
        .unwrap();
        for url in &urls {
            let (_, transfer) = provider.fetch(url).unwrap();
            assert_eq!(transfer.served_from, ServedFrom::Rewritten);
            let key = transfer.ir_key.expect("class fetches carry an IR key");
            if let Ok((ir_bytes, _)) = provider.fetch(&key) {
                dvm_repro::exec::decode(&ir_bytes).expect("served IR decodes");
                first_ir.push((key, ir_bytes));
            }
        }
        provider.close();
    }
    let compiled = org.proxy.stats().ir_compiles;
    assert!(compiled > 0, "the proxy compiled nothing");
    assert_eq!(compiled, first_ir.len() as u64);
    let cold_served = org.proxy.stats().ir_served;

    // Second life: same fetches, warm proxy. Zero new compilations —
    // every IR package is a cache hit with the exact same bytes.
    {
        let mut provider = NetClassProvider::new(
            server.addr(),
            hello("warm"),
            org_signer(),
            NetConfig::default(),
        )
        .unwrap();
        for url in &urls {
            let (_, transfer) = provider.fetch(url).unwrap();
            assert_ne!(transfer.served_from, ServedFrom::Rewritten);
        }
        for (key, first) in &first_ir {
            let (ir_bytes, _) = provider.fetch(key).expect("warm IR fetch");
            assert_eq!(&ir_bytes, first, "{key}: cached IR diverged");
        }
        provider.close();
    }
    assert_eq!(
        org.proxy.stats().ir_compiles,
        compiled,
        "the warm pass re-lowered classes"
    );
    assert!(org.proxy.stats().ir_served > cold_served);
    let cstats = org.exec_compiler_stats().expect("exec tier enabled");
    assert_eq!(cstats.compilations, compiled);
    server.shutdown();
}

/// The warm-restart acceptance: kill a persistent shard without
/// flushing, rebuild a brand-new organization over the same directory,
/// and fetch the IR packages again. They must arrive from the disk
/// tier, byte-identical, with zero re-lowering — compiled code
/// survives restarts exactly like rewritten classes do.
#[test]
fn compiled_ir_survives_a_shard_restart_on_the_disk_tier() {
    let dir = TempDir::new();
    let applets = small_applets(19, 2);
    let urls = class_urls(&applets);

    // Life 1: rewrite + compile everything once, remember the IR bytes.
    let mut first_ir = Vec::new();
    {
        let org = org_over(&applets);
        let cluster = org
            .serve_cluster_persistent(1, ClusterOptions::default(), &dir.0)
            .unwrap();
        let mut provider = NetClassProvider::new(
            cluster.addrs()[0],
            hello("life1"),
            org_signer(),
            NetConfig::default(),
        )
        .unwrap();
        for url in &urls {
            let (_, transfer) = provider.fetch(url).unwrap();
            let key = transfer.ir_key.expect("class fetches carry an IR key");
            if let Ok((ir_bytes, _)) = provider.fetch(&key) {
                first_ir.push((key, ir_bytes));
            }
        }
        assert!(!first_ir.is_empty(), "no IR packages were compiled");
        assert_eq!(cluster.proxy(0).stats().ir_compiles, first_ir.len() as u64);
        provider.close();
        // The "crash": no flush, no graceful anything.
        cluster.shutdown();
    }

    // Life 2: a brand-new organization over the same directory serves
    // the compiled IR from disk without lowering a single method.
    let org = org_over(&applets);
    let cluster = org
        .serve_cluster_persistent(1, ClusterOptions::default(), &dir.0)
        .unwrap();
    let mut provider = NetClassProvider::new(
        cluster.addrs()[0],
        hello("life2"),
        org_signer(),
        NetConfig::default(),
    )
    .unwrap();
    for (key, first) in &first_ir {
        let (ir_bytes, transfer) = provider.fetch(key).unwrap();
        assert_eq!(
            transfer.served_from,
            ServedFrom::DiskCache,
            "{key} was not served from the recovered disk tier"
        );
        assert_eq!(&ir_bytes, first, "{key}: restart changed the package");
        dvm_repro::exec::decode(&ir_bytes).expect("recovered IR decodes");
    }
    assert_eq!(
        cluster.proxy(0).stats().ir_compiles,
        0,
        "the warm shard re-lowered classes"
    );
    assert_eq!(cluster.proxy(0).stats().rewrites, 0);
    provider.close();
    cluster.shutdown();
}
