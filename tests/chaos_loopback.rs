//! Seeded chaos soak: concurrent clients against a sharded cluster with
//! every byte routed through fault-injecting [`ChaosLink`]s, plus the
//! truncation regression and the deliberately-broken-invariant check.
//!
//! Every test here is replayable: fault placement is a pure function of
//! the printed seed and schedule, so a failure message *is* the
//! reproduction recipe.

use std::time::Duration;

use dvm_repro::chaos::{
    BrownoutConfig, ChaosLink, ChaosRunner, ChaosSchedule, Dir, RunnerConfig, ShardKill,
};
use dvm_repro::cluster::{ClusterClientConfig, ClusterOptions, HealthConfig};
use dvm_repro::core::{CostModel, Organization, ServiceConfig};
use dvm_repro::net::{Hello, NetClassProvider, NetConfig, NetError, ServerConfig};
use dvm_repro::netsim::SimRng;
use dvm_repro::proxy::Signer;
use dvm_repro::security::Policy;
use dvm_repro::workload::{corpus, Applet};

fn org_over(applets: &[Applet]) -> Organization {
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    Organization::new(
        &classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap()
}

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

fn org_signer() -> Option<Signer> {
    Some(Signer::new(b"dvm-org-key"))
}

fn small_applets(seed: u64, n: usize) -> Vec<Applet> {
    let mut applets = corpus(seed);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(n);
    applets
}

fn class_urls(applets: &[Applet]) -> Vec<String> {
    applets
        .iter()
        .flat_map(|a| a.classes.iter())
        .map(|c| format!("class://{}", c.name().unwrap()))
        .collect()
}

/// Parses a seed given as decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Client tuning that fails fast on dead shards and retries quickly.
fn fast_config() -> ClusterClientConfig {
    ClusterClientConfig {
        net: NetConfig {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(20),
            ..NetConfig::default()
        },
        health: HealthConfig {
            failure_threshold: 2,
            quarantine: Duration::from_millis(150),
        },
        rounds: 4,
        round_backoff: Duration::from_millis(15),
        ..ClusterClientConfig::default()
    }
}

/// The acceptance soak: 3 shards, 8 clients, a schedule mixing a shard
/// kill with corruption, resets, stalls, and bounded delays — the
/// compressed equivalent of a 30-second background fault barrage. All
/// invariants must hold; on failure the panic message carries the
/// `CHAOS REPLAY:` line.
///
/// `CHAOS_SEED` (decimal or `0x`-hex) overrides the master seed and
/// `CHAOS_FETCHES` the per-client fetch count, so CI can sweep seeds
/// and run extended soaks — and so a failure replays with exactly
/// `CHAOS_SEED=<seed> cargo test --release --test chaos_loopback seeded_soak`.
#[test]
fn seeded_soak_survives_kills_corruption_and_stalls() {
    let seed = match std::env::var("CHAOS_SEED") {
        Ok(s) => parse_seed(&s).unwrap_or_else(|| panic!("unparseable CHAOS_SEED: {s:?}")),
        Err(_) => 0xC0FFEE,
    };
    let fetches: usize = std::env::var("CHAOS_FETCHES")
        .ok()
        .map(|s| s.parse().expect("unparseable CHAOS_FETCHES"))
        .unwrap_or(12);
    let applets = small_applets(11, 4);
    let org = org_over(&applets);
    let urls = class_urls(&applets);
    let mut cluster = org
        .serve_cluster_with(
            3,
            ClusterOptions {
                seed: 7,
                ..ClusterOptions::default()
            },
        )
        .unwrap();

    // Server→client corruption (the signature-verification gauntlet),
    // occasional connection resets, per-direction delays, and one hard
    // stall per stream. Client→server corruption is deliberately absent:
    // a corrupted *request URL* makes the server answer NotFound, which
    // is a correct answer to the question actually asked — not a fault
    // the client stack can or should mask.
    let schedule = ChaosSchedule::parse(
        "<corrupt@p0.05 reset@p0.01 <delay:3ms@p0.08 >delay:2ms@p0.05 stall:40ms@once6",
    )
    .unwrap();

    let cfg = RunnerConfig {
        seed,
        clients: 8,
        fetches_per_client: fetches,
        schedule,
        client_config: fast_config(),
        signer: org_signer(),
        hello: hello("chaos"),
        kills: vec![ShardKill {
            shard: 2,
            after: Duration::from_millis(300),
        }],
        audit: true,
    };

    let report = ChaosRunner::run(&mut cluster, &urls, &cfg);
    cluster.shutdown();

    assert!(report.ok(), "{}", report.render());
    assert_eq!(report.fetches_attempted, 8 * fetches as u64);
    assert!(
        report.fetches_ok > 0,
        "no fetch succeeded: the harness starved itself\n{}",
        report.render()
    );
    assert!(
        report.faults_injected() > 0,
        "the schedule never fired: this soak tested nothing"
    );
    assert!(report.audit_emitted > 0, "no audit events were exercised");
}

/// Reproducibility, twice over: (a) the pure placement preview is a
/// function of the seed alone, and (b) every fault a *live* run injects
/// appears in that preview at exactly its (connection, direction, frame)
/// coordinate — two full runs from the same seed stay within one
/// placement table.
#[test]
fn same_seed_and_schedule_place_identical_faults() {
    let schedule = ChaosSchedule::parse("<corrupt@p0.3 delay:1ms@p0.2 reset@once9").unwrap();
    let seed = 0xDEAD_BEEF_u64;

    // (a) The preview is deterministic.
    let twice_a = schedule.placements(seed, 8, 64);
    let twice_b = schedule.placements(seed, 8, 64);
    assert_eq!(twice_a, twice_b, "placement preview must be pure");
    assert!(!twice_a.is_empty());

    // (b) Two live runs, same seed: every injected fault must sit inside
    // the pure placement table for its link's derived seed.
    for _run in 0..2 {
        let applets = small_applets(23, 2);
        let org = org_over(&applets);
        let urls = class_urls(&applets);
        let mut cluster = org
            .serve_cluster_with(
                2,
                ClusterOptions {
                    seed: 3,
                    ..ClusterOptions::default()
                },
            )
            .unwrap();
        let cfg = RunnerConfig {
            seed,
            clients: 3,
            fetches_per_client: 6,
            schedule: schedule.clone(),
            client_config: fast_config(),
            signer: org_signer(),
            hello: hello("replay"),
            kills: vec![],
            audit: true,
        };
        let report = ChaosRunner::run(&mut cluster, &urls, &cfg);
        cluster.shutdown();
        assert!(report.ok(), "{}", report.render());

        for (shard, link) in report.link_stats.iter().enumerate() {
            if link.events.is_empty() {
                continue;
            }
            // Mirror the runner's per-link seed derivation, then ask the
            // schedule for every placement up to the frames this run
            // actually produced.
            let link_seed = SimRng::derive(seed, 0x1000 + shard as u64).next_u64();
            let conns = link.events.iter().map(|e| e.conn).max().unwrap() + 1;
            let frames = link.events.iter().map(|e| e.frame).max().unwrap();
            let table = schedule.placements(link_seed, conns, frames);
            for event in &link.events {
                assert!(
                    table.iter().any(|p| p.conn == event.conn
                        && p.dir == event.dir
                        && p.frame == event.frame
                        && p.fault.name() == event.kind),
                    "shard {shard}: injected fault {event:?} is not in the pure \
                     placement table — determinism broke (seed {seed})"
                );
            }
        }
    }
}

/// Regression for the truncation/EOF distinction: a link that cuts a
/// response frame mid-body must surface as `NetError::Truncated` (a
/// retryable transport error), not as a clean close or a grammar error.
#[test]
fn mid_frame_truncation_through_the_link_is_typed() {
    let applets = small_applets(37, 1);
    let org = org_over(&applets);
    let server = org.serve("127.0.0.1:0").unwrap();
    // Truncate the *fourth* server→client frame 9 bytes in. Triggers are
    // per connection stream, so on the first connection the WELCOME and
    // two CODE_RESPONSEs pass and the third response is cut mid-frame —
    // while the retry's fresh connection (frames 1–2) clears the fault.
    let schedule = ChaosSchedule::parse("<trunc:9@once4").unwrap();
    let link = ChaosLink::start(server.addr(), schedule, 5).unwrap();

    let mut provider = NetClassProvider::new(
        link.addr(),
        hello("trunc"),
        org_signer(),
        NetConfig::default(),
    )
    .unwrap();
    let url = format!("class://{}", applets[0].main_class);
    provider.fetch(&url).unwrap();
    provider.fetch(&url).unwrap();
    match provider.fetch_attempt(&url) {
        Err(e @ NetError::Truncated { got, expected }) => {
            assert!(got >= 1, "some bytes must have arrived");
            if let Some(want) = expected {
                assert!(got < want, "truncation means fewer bytes than declared");
            }
            assert!(e.is_transport(), "truncation is transport-class");
            assert!(e.is_retryable(), "truncation must be retryable");
        }
        other => panic!("expected NetError::Truncated, got {other:?}"),
    }

    // The full fetch path recovers on a fresh connection: truncation is
    // retryable by construction.
    let (bytes, _) = provider.fetch(&url).expect("retry after truncation");
    assert!(!bytes.is_empty());

    let stats = link.shutdown();
    assert_eq!(stats.faults.get("trunc"), Some(&1));
    server.shutdown();
}

/// A link stall longer than the server's idle deadline must trip the
/// reactor's reaper — the held request's connection is closed server-side
/// (`idle_reaped`), the client sees a retryable transport error, and the
/// retry's fresh connection clears the fault.
#[test]
fn request_stalled_past_the_idle_deadline_is_reaped_and_retried() {
    let applets = small_applets(43, 1);
    let org = org_over(&applets);
    let server = org
        .serve_with(
            "127.0.0.1:0",
            ServerConfig {
                idle_deadline: Some(Duration::from_millis(150)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
    // Hold the *third* client→server frame for 600 ms. On the first
    // connection that is the second CODE_REQUEST (HELLO, request,
    // request): while the link sits on it the server sees 600 ms of
    // silence — four times its deadline — and reaps the connection. The
    // retry's fresh connection only reaches frame 2, clearing the fault.
    let schedule = ChaosSchedule::parse(">stall:600ms@once3").unwrap();
    let link = ChaosLink::start(server.addr(), schedule, 5).unwrap();

    let mut provider = NetClassProvider::new(
        link.addr(),
        hello("staller"),
        org_signer(),
        NetConfig::default(),
    )
    .unwrap();
    let url = format!("class://{}", applets[0].main_class);
    provider.fetch(&url).unwrap();
    match provider.fetch_attempt(&url) {
        Err(e) => {
            assert!(
                e.is_transport(),
                "reaped mid-stall must be transport-class: {e:?}"
            );
            assert!(
                e.is_retryable(),
                "reaped mid-stall must be retryable: {e:?}"
            );
        }
        Ok(_) => panic!("fetch succeeded through a 600ms stall against a 150ms deadline"),
    }

    // Recovery is the ordinary retry path on a fresh connection.
    let (bytes, _) = provider.fetch(&url).expect("retry after reap");
    assert!(!bytes.is_empty());

    let stats = link.shutdown();
    assert_eq!(stats.faults.get("stall"), Some(&1));
    let server_stats = server.shutdown();
    assert!(
        server_stats.idle_reaped >= 1,
        "the stalled connection was not reaped ({server_stats:?})"
    );
}

/// The harness must catch real corruption: with signature verification
/// deliberately disabled, scheduled corruption reaches the application
/// and the oracle invariant reports it — with the replay seed in the
/// report.
#[test]
fn disabled_verification_lets_corruption_through_and_is_caught() {
    let applets = small_applets(51, 2);
    let org = org_over(&applets);
    let urls = class_urls(&applets);
    let mut cluster = org
        .serve_cluster_with(
            1,
            ClusterOptions {
                seed: 1,
                ..ClusterOptions::default()
            },
        )
        .unwrap();

    let cfg = RunnerConfig {
        seed: 0xBAD_5EED,
        clients: 2,
        fetches_per_client: 10,
        schedule: ChaosSchedule::parse("<corrupt@p0.5").unwrap(),
        client_config: fast_config(),
        // No signer: nothing verifies payloads, so corrupt bytes that
        // survive frame decoding are delivered as if they were code.
        signer: None,
        hello: hello("nosig"),
        kills: vec![],
        audit: false,
    };

    let report = ChaosRunner::run(&mut cluster, &urls, &cfg);
    cluster.shutdown();

    assert!(
        !report.ok(),
        "corruption with verification disabled must violate the oracle invariant"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "payload-matches-oracle"),
        "wrong invariant fired: {:?}",
        report.violations
    );
    let rendered = report.render();
    assert!(
        rendered.contains("CHAOS REPLAY:") && rendered.contains(&format!("seed={}", cfg.seed)),
        "violation report must carry the replay line:\n{rendered}"
    );
    // Control: with verification ON, the same schedule and seed hold all
    // invariants — corrupted deliveries are rejected and retried.
    let mut cluster = org
        .serve_cluster_with(
            1,
            ClusterOptions {
                seed: 1,
                ..ClusterOptions::default()
            },
        )
        .unwrap();
    let cfg = RunnerConfig {
        signer: org_signer(),
        ..cfg
    };
    let report = ChaosRunner::run(&mut cluster, &urls, &cfg);
    cluster.shutdown();
    assert!(report.ok(), "{}", report.render());
}

/// The crash-recovery scenario: a faulted first life over persistent
/// shards (including a mid-run shard kill), an unflushed shutdown, and
/// a second life over the same data directories that must serve every
/// class warm — zero re-rewrites, at least one disk-tier serve, no
/// corruption after recovery. Both of the store's chaos invariants
/// (`warm-restart-serves-without-re-rewrite`,
/// `no-post-recovery-corruption`) are checked by the runner itself.
#[test]
fn kill_then_restart_serves_warm_from_disk() {
    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let dir = std::env::temp_dir().join(format!("dvm-chaos-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _cleanup = Cleanup(dir.clone());

    let applets = small_applets(91, 3);
    let org = org_over(&applets);
    let urls = class_urls(&applets);

    let make = || {
        org.serve_cluster_persistent(
            2,
            ClusterOptions {
                seed: 5,
                ..ClusterOptions::default()
            },
            dir.clone(),
        )
        .unwrap()
    };

    let cfg = RunnerConfig {
        seed: 0xFEED_FACE,
        clients: 4,
        fetches_per_client: 8,
        schedule: ChaosSchedule::parse("<delay:2ms@p0.08 reset@p0.02 <corrupt@p0.03").unwrap(),
        client_config: fast_config(),
        signer: org_signer(),
        hello: hello("restart"),
        kills: vec![ShardKill {
            shard: 1,
            after: Duration::from_millis(200),
        }],
        audit: true,
    };

    let report = ChaosRunner::run_restart(make, &urls, &cfg);

    assert!(report.ok(), "{}", report.render());
    assert!(
        report.recovered_records > 0,
        "the restart recovered nothing:\n{}",
        report.render()
    );
    assert_eq!(
        report.second.serves_rewritten,
        0,
        "the warm second life re-rewrote classes:\n{}",
        report.render()
    );
    assert!(
        report.second.serves_disk > 0,
        "no second-life fetch touched the disk tier:\n{}",
        report.render()
    );
    assert_eq!(
        report.second.fetches_failed,
        0,
        "fault-free second life had failures:\n{}",
        report.render()
    );
}

/// `Dir` filters hold at the transport level: a client→server-only
/// schedule never touches server→client bytes.
#[test]
fn direction_filters_only_touch_their_direction() {
    let applets = small_applets(73, 1);
    let org = org_over(&applets);
    let server = org.serve("127.0.0.1:0").unwrap();
    let schedule = ChaosSchedule::parse(">delay:1ms").unwrap();
    let link = ChaosLink::start(server.addr(), schedule, 9).unwrap();

    let mut provider = NetClassProvider::new(
        link.addr(),
        hello("dirs"),
        org_signer(),
        NetConfig::default(),
    )
    .unwrap();
    let url = format!("class://{}", applets[0].main_class);
    provider.fetch(&url).unwrap();
    drop(provider);

    let stats = link.shutdown();
    assert!(
        stats.faults_total() > 0,
        "the ToServer rule must have fired"
    );
    assert!(
        stats.events.iter().all(|e| e.dir == Dir::ToServer),
        "a '>' rule leaked onto the ToClient stream: {:?}",
        stats.events
    );
    server.shutdown();
}

/// The observability-plane scenario: a full brownout (every shard
/// killed) must drive the client-side error-ratio alert through
/// ok → firing, and the recovery must walk it back through resolved to
/// ok — with every transition in the event journal. The clock is
/// synthetic (one tick per batch), so the walk is deterministic.
#[test]
fn brownout_fires_and_resolves_the_error_ratio_alert() {
    let applets = small_applets(29, 2);
    let org = org_over(&applets);
    let urls = class_urls(&applets);
    let mut cluster = org
        .serve_cluster_with(
            3,
            ClusterOptions {
                seed: 5,
                ..ClusterOptions::default()
            },
        )
        .unwrap();

    let cfg = BrownoutConfig {
        client_config: fast_config(),
        signer: org_signer(),
        hello: hello("brownout"),
        ..BrownoutConfig::default()
    };
    let report = ChaosRunner::run_brownout(&mut cluster, &urls, &cfg);
    cluster.shutdown();

    assert!(
        report.ok(),
        "brownout invariants failed: {:?}\ntransitions: {:?}",
        report.violations,
        report.transitions,
    );
    assert!(report.fetches_failed > 0, "the fault window saw no errors");
    assert!(report.fetches_ok > 0, "no healthy traffic ever succeeded");
}
