//! Property-based tests for the dvm-net wire protocol: every frame that
//! is encoded decodes back identically, and truncated, oversized, or
//! garbage inputs are rejected without panicking — plus a deterministic
//! replay of the hostile-bytes corpus in `tests/corpus/`.

use std::path::PathBuf;

use proptest::prelude::*;

use dvm_repro::net::{Frame, FrameError, Hello, MAX_FRAME_LEN};
use dvm_repro::proxy::ServedFrom;
use dvm_repro::telemetry::{SpanId, TraceContext, TraceId};

fn arb_string() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9/$_.:-]{0,40}"
}

fn arb_served_from() -> impl Strategy<Value = ServedFrom> {
    prop_oneof![
        Just(ServedFrom::Rewritten),
        Just(ServedFrom::MemoryCache),
        Just(ServedFrom::DiskCache),
        Just(ServedFrom::Peer),
    ]
}

fn arb_error_code() -> impl Strategy<Value = dvm_repro::net::ErrorCode> {
    use dvm_repro::net::ErrorCode;
    prop_oneof![
        Just(ErrorCode::NotFound),
        Just(ErrorCode::Parse),
        Just(ErrorCode::Filter),
        Just(ErrorCode::Malformed),
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::Internal),
        Just(ErrorCode::CacheMiss),
    ]
}

fn arb_trace() -> impl Strategy<Value = Option<TraceContext>> {
    prop_oneof![
        Just(None),
        (1u64..u64::MAX, 1u64..u64::MAX).prop_map(|(trace, parent)| Some(TraceContext {
            trace: TraceId(trace),
            parent: SpanId(parent),
        })),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            arb_string(),
            arb_string(),
            arb_string(),
            arb_string(),
            arb_string()
        )
            .prop_map(|(user, principal, hardware, native_format, jvm_version)| {
                Frame::Hello(Hello {
                    user,
                    principal,
                    hardware,
                    native_format,
                    jvm_version,
                })
            }),
        any::<u64>().prop_map(|session| Frame::Welcome { session }),
        (
            any::<u32>(),
            any::<u64>(),
            arb_string(),
            arb_string(),
            arb_trace()
        )
            .prop_map(|(request_id, session, url, native_format, trace)| {
                Frame::CodeRequest {
                    request_id,
                    session,
                    url,
                    native_format,
                    trace,
                }
            }),
        (
            any::<u32>(),
            arb_served_from(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(request_id, served_from, processing_ns, bytes)| {
                Frame::CodeResponse {
                    request_id,
                    served_from,
                    processing_ns,
                    bytes,
                }
            }),
        (any::<u32>(), arb_error_code(), arb_string()).prop_map(|(request_id, code, message)| {
            Frame::Error {
                request_id,
                code,
                message,
            }
        }),
        (any::<u64>(), any::<i32>(), 0u8..3).prop_map(|(session, site, kind)| {
            Frame::AuditEvent {
                session,
                site,
                kind,
            }
        }),
        (any::<u32>(), arb_string())
            .prop_map(|(request_id, url)| Frame::PeerGet { request_id, url }),
        (
            arb_string(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(url, bytes)| Frame::PeerPut { url, bytes }),
        (any::<u32>(), any::<bool>()).prop_map(|(request_id, include_spans)| {
            Frame::StatsRequest {
                request_id,
                include_spans,
            }
        }),
        (
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(request_id, report)| Frame::StatsResponse { request_id, report }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..512))
            .prop_map(|(epoch, ring)| Frame::RingUpdate { epoch, ring }),
        (any::<u32>(), any::<u64>(), any::<u32>(), arb_string()).prop_map(
            |(request_id, epoch, shard, resume_from)| Frame::MigrateBegin {
                request_id,
                epoch,
                shard,
                resume_from,
            }
        ),
        (
            any::<u32>(),
            any::<u32>(),
            arb_string(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(request_id, seq, url, bytes)| Frame::MigrateChunk {
                request_id,
                seq,
                url,
                bytes,
            }),
        (any::<u32>(), any::<u32>(), any::<bool>()).prop_map(|(request_id, total, complete)| {
            Frame::MigrateEnd {
                request_id,
                total,
                complete,
            }
        }),
        any::<u32>().prop_map(|request_id| Frame::MetricsScrape { request_id }),
        (
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(request_id, text)| Frame::MetricsText { request_id, text }),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(request_id, after_seq, max)| {
            Frame::EventsRequest {
                request_id,
                after_seq,
                max,
            }
        }),
        (
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(request_id, next_seq, events)| Frame::EventsResponse {
                request_id,
                next_seq,
                events,
            }),
        Just(Frame::Bye),
    ]
}

proptest! {
    /// Encode → decode is the identity, consuming exactly the encoding.
    #[test]
    fn frame_round_trips(frame in arb_frame()) {
        let encoded = frame.encode();
        let (decoded, consumed) = Frame::decode(&encoded).unwrap();
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(consumed, encoded.len());
        // The streaming decoder agrees.
        let (streamed, n) = Frame::try_decode(&encoded).unwrap().unwrap();
        prop_assert_eq!(&streamed, &frame);
        prop_assert_eq!(n, encoded.len());
    }

    /// Every strict prefix of an encoding is incomplete, not a panic: the
    /// strict decoder errors, the streaming decoder asks for more bytes.
    #[test]
    fn truncation_is_rejected(frame in arb_frame(), cut in any::<u16>()) {
        let encoded = frame.encode();
        let cut = cut as usize % encoded.len();
        let prefix = &encoded[..cut];
        prop_assert!(Frame::decode(prefix).is_err());
        prop_assert!(matches!(Frame::try_decode(prefix), Ok(None)));
    }

    /// Arbitrary bytes never panic either decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Frame::decode(&bytes);
        let _ = Frame::try_decode(&bytes);
    }

    /// A length prefix beyond the bound is rejected before any
    /// allocation, whatever follows it.
    #[test]
    fn oversized_lengths_are_rejected(
        extra in 1u32..1000,
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let len = (MAX_FRAME_LEN as u32).saturating_add(extra);
        let mut buf = len.to_be_bytes().to_vec();
        buf.extend_from_slice(&tail);
        prop_assert!(matches!(Frame::decode(&buf), Err(FrameError::BadLength(_))));
        prop_assert!(matches!(Frame::try_decode(&buf), Err(FrameError::BadLength(_))));
    }

    /// Trailing bytes after a complete frame are left unconsumed.
    #[test]
    fn trailing_bytes_are_not_consumed(frame in arb_frame(), tail in proptest::collection::vec(any::<u8>(), 0..64)) {
        let encoded = frame.encode();
        let mut buf = encoded.clone();
        buf.extend_from_slice(&tail);
        let (decoded, consumed) = Frame::decode(&buf).unwrap();
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(consumed, encoded.len());
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Replays every hostile input in `tests/corpus/` against both
/// decoders through the shared `dvm_fuzz::corpus` loader. Each must be
/// rejected with a typed `FrameError` by the strict decoder — never
/// accepted, never a panic. Each entry's `# expect:` annotation states
/// what the streaming decoder may do: `reject` means it too must
/// error, `incomplete` means it may answer `Ok(None)` (still waiting
/// for bytes the wire cut off — the connection-level reader later
/// converts that to `FrameError::Truncated`).
#[test]
fn corpus_inputs_are_rejected_without_panicking() {
    let entries = dvm_repro::fuzz::corpus::load_dir(corpus_dir());
    assert!(
        entries.len() >= 10,
        "corpus shrank to {} entries",
        entries.len()
    );
    for entry in &entries {
        let name = &entry.name;
        let bytes = &entry.bytes;
        let expect = entry
            .annotation("expect")
            .unwrap_or_else(|| panic!("{name}: missing '# expect:' annotation"));

        let strict = Frame::decode(bytes);
        assert!(
            strict.is_err(),
            "{name}: strict decoder accepted hostile bytes: {strict:?}"
        );

        match Frame::try_decode(bytes) {
            Err(_) => {}
            Ok(None) => {
                assert_eq!(
                    expect, "incomplete",
                    "{name}: streaming decoder withheld judgment on a complete frame"
                );
                // Cross-check the annotation: `Ok(None)` is only
                // legitimate when fewer bytes exist than the prefix
                // declares.
                let declared = if bytes.len() >= 4 {
                    4 + u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize
                } else {
                    usize::MAX
                };
                assert!(
                    bytes.len() < declared,
                    "{name}: annotated incomplete but the frame is complete"
                );
            }
            Ok(Some((frame, _))) => {
                panic!("{name}: streaming decoder accepted hostile bytes as {frame:?}")
            }
        }
    }
}

/// Writes the corpus through the shared `dvm_fuzz::corpus` renderer.
/// Each entry is one hostile wire input with a `# expect:` annotation —
/// `reject` (both decoders must error) or `incomplete` (the streaming
/// decoder may answer `Ok(None)` for bytes cut short of their declared
/// frame). Run with `-- --ignored` after a grammar change, then review
/// the diff — an entry that stops being rejected is a decoder break,
/// not a refresh.
#[test]
#[ignore = "regenerates tests/corpus/*.hex"]
fn regenerate_net_corpus() {
    let dir = corpus_dir();

    fn u16be(v: u16) -> [u8; 2] {
        v.to_be_bytes()
    }
    fn u32be(v: u32) -> [u8; 4] {
        v.to_be_bytes()
    }
    fn u64be(v: u64) -> [u8; 8] {
        v.to_be_bytes()
    }
    /// Body framed with a correct length prefix.
    fn framed(body: &[u8]) -> Vec<u8> {
        let mut out = u32be(body.len() as u32).to_vec();
        out.extend_from_slice(body);
        out
    }
    /// Body framed with a deliberately wrong declared length.
    fn framed_as(declared: u32, body: &[u8]) -> Vec<u8> {
        let mut out = u32be(declared).to_vec();
        out.extend_from_slice(body);
        out
    }
    fn cat(parts: &[&[u8]]) -> Vec<u8> {
        parts.concat()
    }

    let dump = |name: &str, note: &str, expect: &str, bytes: &[u8]| {
        dvm_repro::fuzz::corpus::write_entry(&dir, name, note, &[("expect", expect)], bytes);
    };

    dump(
        "audit-bad-kind.hex",
        "AUDIT_EVENT with event kind 0x07 (only 0..=2 exist).\n\
         Expect FrameError::Malformed (\"audit kind 7\").",
        "reject",
        &framed(&cat(&[&[0x06], &u64be(42), &u32be(7), &[0x07]])),
    );
    dump(
        "bye-trailing-bytes.hex",
        "BYE followed by two junk bytes inside the declared body. A frame\n\
         must consume its whole body exactly. Expect FrameError::Malformed\n\
         (\"trailing bytes after payload\").",
        "reject",
        &framed(&[0x07, 0xAA, 0xBB]),
    );
    dump(
        "code-request-bad-trace-flag.hex",
        "CODE_REQUEST whose trace-presence flag is 0x02 (only 0 and 1 are\n\
         legal). Expect FrameError::Malformed (\"trace flag 2\").",
        "reject",
        &framed(&cat(&[
            &[0x03],
            &u32be(1),
            &u64be(0),
            &u16be(1),
            b"A",
            &u16be(0),
            &[0x02],
        ])),
    );
    dump(
        "code-response-bad-tier.hex",
        "CODE_RESPONSE with served-from tier 0x09 (only 0..=3 exist). This\n\
         is exactly what a single flipped byte in the tier field looks like.\n\
         Expect FrameError::Malformed (\"served-from tier 9\").",
        "reject",
        &framed(&cat(&[&[0x04], &u32be(1), &[0x09], &u64be(0), &u32be(0)])),
    );
    dump(
        "code-response-bytes-overrun.hex",
        "CODE_RESPONSE declaring a ~4 GiB class-bytes blob inside an\n\
         18-byte body: a length-field corruption that must not drive an\n\
         allocation or an out-of-bounds read. Expect FrameError::Malformed.",
        "reject",
        &framed(&cat(&[
            &[0x04],
            &u32be(1),
            &[0x00],
            &u64be(0),
            &u32be(0xFFFF_FFF0),
        ])),
    );
    dump(
        "events-request-truncated.hex",
        "EVENTS_REQUEST cut off before the max field: after_seq is complete\n\
         but the u32 max is missing entirely, and the length prefix agrees —\n\
         a complete frame whose body ends early. Expect FrameError::Malformed.",
        "reject",
        &framed(&cat(&[&[0x12], &u32be(1), &u64be(5)])),
    );
    dump(
        "events-response-events-overrun.hex",
        "EVENTS_RESPONSE whose event-batch length prefix (0x7FFFFFFF)\n\
         dwarfs both the frame and MAX_FRAME_LEN; must be rejected before\n\
         allocation.",
        "reject",
        &framed(&cat(&[
            &[0x13],
            &u32be(2),
            &u64be(10),
            &u32be(0x7FFF_FFFF),
            &[0x00],
        ])),
    );
    dump(
        "hello-bad-utf8.hex",
        "HELLO whose user field contains invalid UTF-8 (FF FE), remaining\n\
         four string fields empty. Expect FrameError::Malformed\n\
         (\"invalid UTF-8\").",
        "reject",
        &framed(&cat(&[
            &[0x01],
            &u16be(2),
            &[0xFF, 0xFE],
            &u16be(0),
            &u16be(0),
            &u16be(0),
            &u16be(0),
        ])),
    );
    dump(
        "hello-string-overrun.hex",
        "HELLO whose user string claims 0xFFFF bytes but the body holds two.\n\
         The cursor must bounds-check, not read past the buffer.\n\
         Expect FrameError::Malformed (\"payload truncated\").",
        "reject",
        &framed(&cat(&[&[0x01], &u16be(0xFFFF), b"AA"])),
    );
    dump(
        "metrics-scrape-trailing-bytes.hex",
        "METRICS_SCRAPE with a stray byte after the request id: the decoder\n\
         must reject payload bytes its grammar did not consume.",
        "reject",
        &framed(&cat(&[&[0x10], &u32be(1), &[0xFF]])),
    );
    dump(
        "metrics-text-bytes-overrun.hex",
        "METRICS_TEXT whose byte-field length prefix (255) promises more\n\
         exposition text than the frame carries (2 bytes).",
        "reject",
        &framed(&cat(&[&[0x11], &u32be(1), &u32be(0xFF), &[0xAB, 0xCD]])),
    );
    dump(
        "migrate-chunk-bytes-overrun.hex",
        "A MIGRATE_CHUNK carrying an oversized length field (~4 GiB claimed\n\
         inside a 40-byte declared body) — a corruption that must not drive\n\
         an allocation or out-of-bounds read. Expect FrameError::Malformed.",
        "reject",
        &framed_as(
            0x28,
            &cat(&[
                &[0x0E],
                &u32be(1),
                &u32be(0),
                &u32be(9),
                b"class://a",
                &[
                    0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC,
                    0xDD, 0xEE, 0xFF,
                ],
                &u32be(0xFFFF_FFF0),
                b"AB",
            ]),
        ),
    );
    dump(
        "migrate-chunk-digest-mismatch.hex",
        "A MIGRATE_CHUNK whose MD5 digest field does not match its value\n\
         bytes — a corrupted (or tampered) migration payload. The decoder\n\
         re-hashes on ingest and must reject with FrameError::Malformed\n\
         rather than admit the bytes into a cache.",
        "reject",
        &framed(&cat(&[
            &[0x0E],
            &u32be(1),
            &u32be(0),
            &u32be(9),
            b"class://a",
            &[0u8; 16],
            &u32be(2),
            b"AB",
        ])),
    );
    dump(
        "migrate-chunk-truncated.hex",
        "A MIGRATE_CHUNK cut mid-transfer: the frame declares a 64-byte body\n\
         but the stream dies 8 bytes in — the shape a killed migration\n\
         source leaves on the wire. The strict decoder errors; the streaming\n\
         decoder may answer Ok(None) pending bytes that will never come (the\n\
         puller's resumption loop turns that into a reconnect).",
        "incomplete",
        &framed_as(0x40, &cat(&[&[0x0E], &u32be(1), &[0x00, 0x00, 0x00]])),
    );
    dump(
        "migrate-end-bad-flag.hex",
        "A MIGRATE_END whose `complete` flag is 7: booleans on the wire are\n\
         0 or 1, anything else is FrameError::Malformed (a decoder that\n\
         treats nonzero as true would mask corruption).",
        "reject",
        &framed(&cat(&[&[0x0F], &u32be(1), &u32be(64), &[0x07]])),
    );
    dump(
        "oversized-length.hex",
        "Length prefix 0xFFFFFFFF, far beyond MAX_FRAME_LEN. Must be\n\
         rejected before any allocation is attempted. Expect\n\
         FrameError::BadLength.",
        "reject",
        &[0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02, 0x03, 0x04],
    );
    dump(
        "ring-update-epoch-truncated.hex",
        "A RING_UPDATE whose body ends inside the epoch field: the length\n\
         prefix says 4 body bytes, so after the tag only 3 of the epoch's 8\n\
         bytes exist. A complete frame with a bad epoch encoding must be a\n\
         typed error from both decoders, never a stall or a panic.",
        "reject",
        &framed(&[0x0C, 0x00, 0x00, 0x00]),
    );
    dump(
        "truncated-body.hex",
        "A frame declaring 32 body bytes, cut after 5 — the shape a\n\
         ChaosLink `trunc:` fault writes on the wire. The strict decoder\n\
         errors; the streaming decoder may answer Ok(None) pending more\n\
         bytes that will never come (the connection-level reader turns that\n\
         into FrameError::Truncated).",
        "incomplete",
        &framed_as(0x20, &[0x04, 0x00, 0x00, 0x00, 0x01]),
    );
    dump(
        "truncated-prefix.hex",
        "Two bytes of a four-byte length prefix: the cut fell inside the\n\
         prefix itself. The strict decoder errors; the streaming decoder may\n\
         answer Ok(None) — it cannot yet know a frame exists.",
        "incomplete",
        &[0x00, 0x00],
    );
    dump(
        "unknown-tag.hex",
        "A well-formed one-byte body whose tag (0xFF) names no frame kind.\n\
         Expect FrameError::UnknownTag(0xFF).",
        "reject",
        &framed(&[0xFF]),
    );
    dump(
        "zero-length.hex",
        "A frame declaring a zero-byte body: no room for even a tag.\n\
         Expect FrameError::BadLength(0).",
        "reject",
        &framed(&[]),
    );
}
