//! Property-based tests for the dvm-net wire protocol: every frame that
//! is encoded decodes back identically, and truncated, oversized, or
//! garbage inputs are rejected without panicking — plus a deterministic
//! replay of the hostile-bytes corpus in `tests/corpus/`.

use std::path::PathBuf;

use proptest::prelude::*;

use dvm_repro::net::{Frame, FrameError, Hello, MAX_FRAME_LEN};
use dvm_repro::proxy::ServedFrom;
use dvm_repro::telemetry::{SpanId, TraceContext, TraceId};

fn arb_string() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9/$_.:-]{0,40}"
}

fn arb_served_from() -> impl Strategy<Value = ServedFrom> {
    prop_oneof![
        Just(ServedFrom::Rewritten),
        Just(ServedFrom::MemoryCache),
        Just(ServedFrom::DiskCache),
        Just(ServedFrom::Peer),
    ]
}

fn arb_error_code() -> impl Strategy<Value = dvm_repro::net::ErrorCode> {
    use dvm_repro::net::ErrorCode;
    prop_oneof![
        Just(ErrorCode::NotFound),
        Just(ErrorCode::Parse),
        Just(ErrorCode::Filter),
        Just(ErrorCode::Malformed),
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::Internal),
        Just(ErrorCode::CacheMiss),
    ]
}

fn arb_trace() -> impl Strategy<Value = Option<TraceContext>> {
    prop_oneof![
        Just(None),
        (1u64..u64::MAX, 1u64..u64::MAX).prop_map(|(trace, parent)| Some(TraceContext {
            trace: TraceId(trace),
            parent: SpanId(parent),
        })),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            arb_string(),
            arb_string(),
            arb_string(),
            arb_string(),
            arb_string()
        )
            .prop_map(|(user, principal, hardware, native_format, jvm_version)| {
                Frame::Hello(Hello {
                    user,
                    principal,
                    hardware,
                    native_format,
                    jvm_version,
                })
            }),
        any::<u64>().prop_map(|session| Frame::Welcome { session }),
        (
            any::<u32>(),
            any::<u64>(),
            arb_string(),
            arb_string(),
            arb_trace()
        )
            .prop_map(|(request_id, session, url, native_format, trace)| {
                Frame::CodeRequest {
                    request_id,
                    session,
                    url,
                    native_format,
                    trace,
                }
            }),
        (
            any::<u32>(),
            arb_served_from(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(request_id, served_from, processing_ns, bytes)| {
                Frame::CodeResponse {
                    request_id,
                    served_from,
                    processing_ns,
                    bytes,
                }
            }),
        (any::<u32>(), arb_error_code(), arb_string()).prop_map(|(request_id, code, message)| {
            Frame::Error {
                request_id,
                code,
                message,
            }
        }),
        (any::<u64>(), any::<i32>(), 0u8..3).prop_map(|(session, site, kind)| {
            Frame::AuditEvent {
                session,
                site,
                kind,
            }
        }),
        (any::<u32>(), arb_string())
            .prop_map(|(request_id, url)| Frame::PeerGet { request_id, url }),
        (
            arb_string(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(url, bytes)| Frame::PeerPut { url, bytes }),
        (any::<u32>(), any::<bool>()).prop_map(|(request_id, include_spans)| {
            Frame::StatsRequest {
                request_id,
                include_spans,
            }
        }),
        (
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(request_id, report)| Frame::StatsResponse { request_id, report }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..512))
            .prop_map(|(epoch, ring)| Frame::RingUpdate { epoch, ring }),
        (any::<u32>(), any::<u64>(), any::<u32>(), arb_string()).prop_map(
            |(request_id, epoch, shard, resume_from)| Frame::MigrateBegin {
                request_id,
                epoch,
                shard,
                resume_from,
            }
        ),
        (
            any::<u32>(),
            any::<u32>(),
            arb_string(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(request_id, seq, url, bytes)| Frame::MigrateChunk {
                request_id,
                seq,
                url,
                bytes,
            }),
        (any::<u32>(), any::<u32>(), any::<bool>()).prop_map(|(request_id, total, complete)| {
            Frame::MigrateEnd {
                request_id,
                total,
                complete,
            }
        }),
        any::<u32>().prop_map(|request_id| Frame::MetricsScrape { request_id }),
        (
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(request_id, text)| Frame::MetricsText { request_id, text }),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(request_id, after_seq, max)| {
            Frame::EventsRequest {
                request_id,
                after_seq,
                max,
            }
        }),
        (
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(request_id, next_seq, events)| Frame::EventsResponse {
                request_id,
                next_seq,
                events,
            }),
        Just(Frame::Bye),
    ]
}

proptest! {
    /// Encode → decode is the identity, consuming exactly the encoding.
    #[test]
    fn frame_round_trips(frame in arb_frame()) {
        let encoded = frame.encode();
        let (decoded, consumed) = Frame::decode(&encoded).unwrap();
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(consumed, encoded.len());
        // The streaming decoder agrees.
        let (streamed, n) = Frame::try_decode(&encoded).unwrap().unwrap();
        prop_assert_eq!(&streamed, &frame);
        prop_assert_eq!(n, encoded.len());
    }

    /// Every strict prefix of an encoding is incomplete, not a panic: the
    /// strict decoder errors, the streaming decoder asks for more bytes.
    #[test]
    fn truncation_is_rejected(frame in arb_frame(), cut in any::<u16>()) {
        let encoded = frame.encode();
        let cut = cut as usize % encoded.len();
        let prefix = &encoded[..cut];
        prop_assert!(Frame::decode(prefix).is_err());
        prop_assert!(matches!(Frame::try_decode(prefix), Ok(None)));
    }

    /// Arbitrary bytes never panic either decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Frame::decode(&bytes);
        let _ = Frame::try_decode(&bytes);
    }

    /// A length prefix beyond the bound is rejected before any
    /// allocation, whatever follows it.
    #[test]
    fn oversized_lengths_are_rejected(
        extra in 1u32..1000,
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let len = (MAX_FRAME_LEN as u32).saturating_add(extra);
        let mut buf = len.to_be_bytes().to_vec();
        buf.extend_from_slice(&tail);
        prop_assert!(matches!(Frame::decode(&buf), Err(FrameError::BadLength(_))));
        prop_assert!(matches!(Frame::try_decode(&buf), Err(FrameError::BadLength(_))));
    }

    /// Trailing bytes after a complete frame are left unconsumed.
    #[test]
    fn trailing_bytes_are_not_consumed(frame in arb_frame(), tail in proptest::collection::vec(any::<u8>(), 0..64)) {
        let encoded = frame.encode();
        let mut buf = encoded.clone();
        buf.extend_from_slice(&tail);
        let (decoded, consumed) = Frame::decode(&buf).unwrap();
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(consumed, encoded.len());
    }
}

/// Parses one corpus `.hex` file: `#` comments, whitespace-separated or
/// contiguous hex digits.
fn parse_hex_corpus(text: &str) -> Vec<u8> {
    let digits: String = text
        .lines()
        .map(|line| line.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join(" ")
        .chars()
        .filter(|c| c.is_ascii_hexdigit())
        .collect();
    assert!(
        digits.len().is_multiple_of(2),
        "corpus file holds an odd number of hex digits"
    );
    digits
        .as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
        .collect()
}

/// Replays every hostile input in `tests/corpus/` against both
/// decoders. Each must be rejected with a typed `FrameError` by the
/// strict decoder — never accepted, never a panic. The streaming
/// decoder may additionally answer `Ok(None)` (incomplete), which the
/// connection-level reader later converts to `FrameError::Truncated`.
#[test]
fn corpus_inputs_are_rejected_without_panicking() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut cases = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "hex"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus directory has no .hex entries");
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let bytes = parse_hex_corpus(&std::fs::read_to_string(&path).unwrap());
        cases += 1;

        let strict = Frame::decode(&bytes);
        assert!(
            strict.is_err(),
            "{name}: strict decoder accepted hostile bytes: {strict:?}"
        );

        match Frame::try_decode(&bytes) {
            Err(_) => {}
            Ok(None) => {
                // Only legitimate for inputs shorter than their declared
                // frame — the decoder is still waiting for bytes.
                let declared = if bytes.len() >= 4 {
                    4 + u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize
                } else {
                    usize::MAX
                };
                assert!(
                    bytes.len() < declared,
                    "{name}: streaming decoder withheld judgment on a complete frame"
                );
            }
            Ok(Some((frame, _))) => {
                panic!("{name}: streaming decoder accepted hostile bytes as {frame:?}")
            }
        }
    }
    assert!(cases >= 10, "corpus shrank to {cases} entries");
}
