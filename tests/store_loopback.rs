//! End-to-end warm-restart acceptance over real sockets: a proxy backed
//! by `dvm-store` is killed, rebuilt from scratch over the same data
//! directory — by a *new* `Organization` instance, so nothing can ride
//! along in memory — and must serve the previously rewritten classes
//! from the disk tier, byte-identical, with **zero** re-rewrites.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dvm_repro::cluster::ClusterOptions;
use dvm_repro::core::{CostModel, Organization, ServiceConfig};
use dvm_repro::net::{Hello, NetClassProvider, NetConfig};
use dvm_repro::proxy::md5::md5;
use dvm_repro::proxy::{ServedFrom, Signer};
use dvm_repro::security::Policy;
use dvm_repro::workload::{corpus, Applet};

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dvm-store-loopback-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_applets(seed: u64, n: usize) -> Vec<Applet> {
    let mut applets = corpus(seed);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(n);
    applets
}

/// A fresh `Organization` over `applets` — called once per "process
/// life" so the second life shares no memory with the first.
fn org_over(applets: &[Applet]) -> Organization {
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    Organization::new(
        &classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap()
}

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

fn class_urls(applets: &[Applet]) -> Vec<String> {
    applets
        .iter()
        .flat_map(|a| a.classes.iter())
        .map(|c| format!("class://{}", c.name().unwrap()))
        .collect()
}

/// The tentpole acceptance: fill a persistent single-shard proxy over
/// TCP, kill it without flushing, rebuild everything from scratch over
/// the same directory, and fetch again. Every class must arrive from
/// the disk tier with the exact bytes (and therefore the exact MD5) of
/// the first life, and the rewrite counter must stay at zero.
#[test]
fn restarted_shard_serves_rewrites_from_disk_with_zero_rewrites() {
    let dir = TempDir::new();
    let applets = small_applets(19, 3);
    let urls = class_urls(&applets);

    // Life 1: rewrite everything once, remember the delivered payloads.
    let mut first_payloads = Vec::new();
    {
        let org = org_over(&applets);
        let cluster = org
            .serve_cluster_persistent(1, ClusterOptions::default(), &dir.0)
            .unwrap();
        let mut provider = NetClassProvider::new(
            cluster.addrs()[0],
            hello("life1"),
            Some(Signer::new(b"dvm-org-key")),
            NetConfig::default(),
        )
        .unwrap();
        for url in &urls {
            let (bytes, transfer) = provider.fetch(url).unwrap();
            assert_eq!(transfer.served_from, ServedFrom::Rewritten);
            first_payloads.push(bytes);
        }
        assert_eq!(cluster.proxy(0).stats().rewrites, urls.len() as u64);
        provider.close();
        // The "crash": no flush_store, no graceful anything — whatever
        // the append path already wrote is all the next life gets.
        cluster.shutdown();
    }

    // Life 2: a brand-new organization over the same directory.
    let org = org_over(&applets);
    let cluster = org
        .serve_cluster_persistent(1, ClusterOptions::default(), &dir.0)
        .unwrap();
    let stats = cluster.proxy(0).store_stats().expect("persistent shard");
    assert!(
        stats.recovered_records >= urls.len() as u64,
        "recovery found {} records for {} classes",
        stats.recovered_records,
        urls.len()
    );

    let mut provider = NetClassProvider::new(
        cluster.addrs()[0],
        hello("life2"),
        Some(Signer::new(b"dvm-org-key")),
        NetConfig::default(),
    )
    .unwrap();
    for (url, first) in urls.iter().zip(&first_payloads) {
        let (bytes, transfer) = provider.fetch(url).unwrap();
        assert_eq!(
            transfer.served_from,
            ServedFrom::DiskCache,
            "{url} was not served from the recovered disk tier"
        );
        assert_eq!(&bytes, first, "{url}: restart changed the payload");
        assert_eq!(
            md5(&bytes),
            md5(first),
            "{url}: MD5 diverged across the restart"
        );
    }
    assert_eq!(
        cluster.proxy(0).stats().rewrites,
        0,
        "the warm shard re-rewrote classes"
    );
    assert_eq!(cluster.proxy(0).cache_stats().disk_load_rejects, 0);
    provider.close();
    cluster.shutdown();
}

/// Peer cache-fill offers land durably: a class rewritten by a non-home
/// shard is offered to its home shard, whose *store* must hold it — so
/// after a full cluster restart the home shard serves it from disk
/// without ever having rewritten it itself.
#[test]
fn peer_offers_survive_a_cluster_restart_on_the_home_shard() {
    let dir = TempDir::new();
    let applets = small_applets(43, 3);
    let urls = class_urls(&applets);
    let opts = || ClusterOptions {
        seed: 9,
        ..ClusterOptions::default()
    };

    // Life 1: find a URL whose home is shard 0, fetch it *through shard
    // 1* so shard 1 rewrites and offers the result to shard 0.
    let (url, first_bytes) = {
        let org = org_over(&applets);
        let cluster = org.serve_cluster_persistent(2, opts(), &dir.0).unwrap();
        let url = urls
            .iter()
            .find(|u| cluster.ring().home(u) == Some(0))
            .expect("some URL homes at shard 0")
            .clone();
        let mut provider = NetClassProvider::new(
            cluster.addrs()[1],
            hello("via-peer"),
            Some(Signer::new(b"dvm-org-key")),
            NetConfig::default(),
        )
        .unwrap();
        let (bytes, _) = provider.fetch(&url).unwrap();
        provider.close();
        assert_eq!(
            cluster.proxy(0).stats().rewrites,
            0,
            "the home shard must not have rewritten anything itself"
        );
        // The offer is pushed over a real socket; give the home shard a
        // moment to land it in its store before the "crash".
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while cluster.proxy(0).store_stats().map_or(0, |s| s.appends) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "peer offer never landed in the home shard's store"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        cluster.shutdown();
        (url, bytes)
    };

    // Life 2: the home shard alone must serve the peer-offered rewrite
    // from its recovered store.
    let org = org_over(&applets);
    let cluster = org.serve_cluster_persistent(2, opts(), &dir.0).unwrap();
    let mut provider = NetClassProvider::new(
        cluster.addrs()[0],
        hello("home-direct"),
        Some(Signer::new(b"dvm-org-key")),
        NetConfig::default(),
    )
    .unwrap();
    let (bytes, transfer) = provider.fetch(&url).unwrap();
    assert_eq!(
        transfer.served_from,
        ServedFrom::DiskCache,
        "the home shard did not recover the peer offer"
    );
    assert_eq!(
        bytes, first_bytes,
        "peer-offered payload changed across restart"
    );
    assert_eq!(cluster.proxy(0).stats().rewrites, 0);
    provider.close();
    cluster.shutdown();
}
