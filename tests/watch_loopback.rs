//! Continuous-observability acceptance over real sockets: a live
//! 3-shard cluster with per-shard watches must serve a parseable
//! `/metrics` exposition (HTTP and wire) that agrees with
//! `STATS_REQUEST`, an induced brownout must walk an SLO alert through
//! ok → firing → resolved visibly in both the event journal and the
//! scrape, and a killed-and-restarted shard's journal cursor tail must
//! resume without gaps.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dvm_repro::cluster::{ClusterClassProvider, ClusterClientConfig, ClusterOptions};
use dvm_repro::core::{CostModel, Organization, ServiceConfig};
use dvm_repro::net::{fetch_events, fetch_metrics_text, fetch_stats, Hello, NetConfig};
use dvm_repro::proxy::Signer;
use dvm_repro::security::Policy;
use dvm_repro::telemetry::{JournalKind, Telemetry};
use dvm_repro::watch::{expo, http_get, Objective, Watch, WatchConfig};
use dvm_repro::workload::{corpus, Applet};

const SEC: u64 = 1_000_000_000;

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dvm-watch-loopback-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_applets(seed: u64, n: usize) -> Vec<Applet> {
    let mut applets = corpus(seed);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(n);
    applets
}

fn org_over(applets: &[Applet]) -> Organization {
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    Organization::new(
        &classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap()
}

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

fn class_urls(applets: &[Applet]) -> Vec<String> {
    applets
        .iter()
        .flat_map(|a| a.classes.iter())
        .map(|c| format!("class://{}", c.name().unwrap()))
        .collect()
}

fn watched_options() -> ClusterOptions {
    ClusterOptions {
        seed: 3,
        watch: Some(WatchConfig::default()),
        metrics_http: true,
        ..ClusterOptions::default()
    }
}

/// Pulls one sample value out of parsed exposition text.
fn sample(samples: &[(String, String, f64)], name: &str) -> Option<f64> {
    samples
        .iter()
        .find(|(n, _, _)| n == name)
        .map(|(_, _, v)| *v)
}

/// `GET /metrics` over HTTP and `METRICS_SCRAPE` over the wire both
/// return parseable exposition whose proxy counters agree with what
/// `STATS_REQUEST` reports for the same shard.
#[test]
fn scrape_agrees_with_stats_request_on_every_shard() {
    let applets = small_applets(17, 3);
    let org = org_over(&applets);
    let urls = class_urls(&applets);
    let cluster = org.serve_cluster_with(3, watched_options()).unwrap();

    // Traffic first, so the counters have something to say.
    let mut provider = ClusterClassProvider::new(
        cluster.addrs().to_vec(),
        cluster.ring().clone(),
        hello("scrape"),
        Some(Signer::new(b"dvm-org-key")),
        ClusterClientConfig::default(),
    );
    for _ in 0..3 {
        for url in &urls {
            provider.fetch(url).unwrap();
        }
    }
    provider.close();

    for i in 0..cluster.len() {
        let http_addr = cluster.metrics_addr(i).expect("metrics_http bound");
        let body = http_get(http_addr, "/metrics").unwrap();
        let samples = expo::parse(&body).unwrap_or_else(|e| panic!("shard {i} scrape: {e}"));
        assert!(!samples.is_empty(), "shard {i} served an empty exposition");
        assert!(
            body.contains(&format!("node=\"shard{i}\"")),
            "shard {i} scrape is not labelled with its node"
        );

        // The wire-protocol scrape and the HTTP one render the same plane.
        let wire =
            fetch_metrics_text(cluster.addrs()[i], hello("scrape"), NetConfig::default()).unwrap();
        let wire_samples = expo::parse(&wire).unwrap();

        // Proxy-level counters only move on class requests, so a scrape
        // taken after the traffic stopped must agree exactly with
        // STATS_REQUEST pulled right after it.
        let report = fetch_stats(
            cluster.addrs()[i],
            hello("scrape"),
            NetConfig::default(),
            false,
        )
        .unwrap();
        for counter in ["proxy.requests", "proxy.rewrites", "proxy.cache.miss"] {
            let expected = report.metrics.counters.get(counter).copied().unwrap_or(0) as f64;
            let scraped = sample(&samples, &expo::sanitize(counter))
                .unwrap_or_else(|| panic!("shard {i} scrape lacks {counter}"));
            assert_eq!(
                scraped, expected,
                "shard {i}: scrape of {counter} disagrees with STATS_REQUEST"
            );
            let wired = sample(&wire_samples, &expo::sanitize(counter)).unwrap();
            assert_eq!(
                wired, expected,
                "shard {i}: wire scrape of {counter} disagrees with STATS_REQUEST"
            );
        }
    }
    cluster.shutdown();
}

/// An induced brownout (every shard killed under live traffic) drives
/// the error-ratio SLO through ok → firing → resolved, and every stage
/// is visible both in the event journal and in the rendered scrape.
#[test]
fn brownout_lifecycle_is_visible_in_journal_and_scrape() {
    let applets = small_applets(23, 2);
    let org = org_over(&applets);
    let urls = class_urls(&applets);
    let mut cluster = org.serve_cluster_with(3, watched_options()).unwrap();

    // The observer: a client-side watch over this test's own fetch
    // counters, ticked on a synthetic one-second clock so the alert
    // walk is deterministic.
    let telemetry = Arc::new(Telemetry::new("observer"));
    let errors = telemetry.registry().counter("fetch.errors");
    let total = telemetry.registry().counter("fetch.total");
    let watch = Watch::new(
        telemetry.clone(),
        WatchConfig {
            objectives: vec![Objective::error_ratio(
                "fetch-error-ratio",
                "fetch.errors",
                "fetch.total",
                0.1,
                2 * SEC,
                6 * SEC,
            )],
            ..WatchConfig::default()
        },
    );

    let fast = ClusterClientConfig {
        net: NetConfig {
            connect_timeout: std::time::Duration::from_millis(250),
            ..NetConfig::default()
        },
        rounds: 1,
        ..ClusterClientConfig::default()
    };
    let mut provider = ClusterClassProvider::new(
        cluster.addrs().to_vec(),
        cluster.ring().clone(),
        hello("brownout"),
        Some(Signer::new(b"dvm-org-key")),
        fast,
    );
    let mut now = 0u64;
    watch.tick_at(now);
    let batch = |provider: &mut ClusterClassProvider, n: usize, now: &mut u64| {
        for _ in 0..n {
            for url in &urls {
                total.inc();
                if provider.fetch(url).is_err() {
                    errors.inc();
                }
            }
            *now += SEC;
            watch.tick_at(*now);
        }
    };

    batch(&mut provider, 3, &mut now);
    assert!(
        watch
            .render()
            .contains("objective=\"fetch-error-ratio\"} 0"),
        "alert not ok while healthy"
    );

    for i in 0..cluster.len() {
        cluster.kill_shard(i);
    }
    batch(&mut provider, 6, &mut now);
    provider.close();
    let firing_scrape = watch.render();
    assert!(
        firing_scrape
            .contains("dvm_alert_state{node=\"observer\",objective=\"fetch-error-ratio\"} 2"),
        "scrape does not show the alert firing:\n{firing_scrape}"
    );

    for i in 0..cluster.len() {
        cluster.restart_shard(i).unwrap();
    }
    let mut provider = ClusterClassProvider::new(
        cluster.addrs().to_vec(),
        cluster.ring().clone(),
        hello("brownout"),
        Some(Signer::new(b"dvm-org-key")),
        fast,
    );
    batch(&mut provider, 12, &mut now);
    provider.close();
    let resolved_scrape = watch.render();
    assert!(
        resolved_scrape.contains("objective=\"fetch-error-ratio\"} 0"),
        "scrape does not show the alert back at ok:\n{resolved_scrape}"
    );

    // The journal holds the whole walk, in order.
    use dvm_repro::telemetry::events::{ALERT_FIRING, ALERT_OK, ALERT_RESOLVED};
    let transitions: Vec<(u8, u8)> = telemetry
        .journal()
        .events_after(0, 1000)
        .into_iter()
        .filter_map(|e| match e.kind {
            JournalKind::AlertTransition { from, to, .. } => Some((from, to)),
            _ => None,
        })
        .collect();
    assert!(
        transitions.iter().any(|&(_, to)| to == ALERT_FIRING),
        "journal never saw the alert fire: {transitions:?}"
    );
    assert!(
        transitions.contains(&(ALERT_FIRING, ALERT_RESOLVED)),
        "journal never saw firing → resolved: {transitions:?}"
    );
    assert!(
        transitions.contains(&(ALERT_RESOLVED, ALERT_OK)),
        "journal never saw resolved → ok: {transitions:?}"
    );

    cluster.shutdown();
}

/// A journal tail (`EVENTS_REQUEST` with a cursor) against a persistent
/// shard resumes after a kill-and-restart with strictly increasing
/// sequence numbers and no gaps or duplicates.
#[test]
fn journal_cursor_tail_resumes_across_a_restart_without_gaps() {
    let applets = small_applets(31, 1);
    let org = org_over(&applets);
    let dir = TempDir::new();
    let mut opts = watched_options();
    opts.metrics_http = false;
    let mut cluster = org
        .serve_cluster_persistent(3, opts, dir.0.clone())
        .unwrap();

    let shard_telemetry = cluster.shard_telemetry(0).unwrap();
    for i in 0..5 {
        shard_telemetry.record_event(JournalKind::Note {
            text: format!("first-life-{i}"),
        });
    }

    // First tail page over the wire.
    let (page1, cursor) = fetch_events(
        cluster.addrs()[0],
        hello("tail"),
        NetConfig::default(),
        0,
        1024,
    )
    .unwrap();
    assert!(page1.len() >= 5, "expected the five notes, got {page1:?}");

    // Kill and restart the shard; its journal is spooled through the
    // persistent store, and the restarted server answers on a new port.
    cluster.kill_shard(0);
    cluster.restart_shard(0).unwrap();
    for i in 0..5 {
        shard_telemetry.record_event(JournalKind::Note {
            text: format!("second-life-{i}"),
        });
    }

    let (page2, cursor2) = fetch_events(
        cluster.addrs()[0],
        hello("tail"),
        NetConfig::default(),
        cursor,
        1024,
    )
    .unwrap();
    assert!(
        !page2.is_empty(),
        "tail from cursor {cursor} saw nothing after the restart"
    );

    // Stitched together, the two pages are one gapless, duplicate-free,
    // strictly increasing sequence.
    let seqs: Vec<u64> = page1.iter().chain(page2.iter()).map(|e| e.seq).collect();
    for pair in seqs.windows(2) {
        assert_eq!(
            pair[1],
            pair[0] + 1,
            "journal tail gapped or duplicated: {seqs:?}"
        );
    }
    assert!(cursor2 > cursor, "cursor did not advance");
    let second_life: Vec<&str> = page2
        .iter()
        .filter_map(|e| match &e.kind {
            JournalKind::Note { text } => Some(text.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        second_life.contains(&"second-life-0"),
        "post-restart events missing from the tail: {second_life:?}"
    );

    cluster.shutdown();
}
