//! Property-based and corpus tests for `dvm-store`: the store must
//! agree with an in-memory model under arbitrary op interleavings
//! (including reopens and compactions), and recovery must reduce any
//! damaged log — truncated, bit-flipped, or outright garbage — to its
//! committed prefix without ever serving a wrong byte.
//!
//! The hostile segment images live in `tests/corpus/store/*.hex`; each
//! carries an `# expect-live: N` annotation stating how many records
//! survive recovery. Regenerate them with
//! `cargo test --test prop_store regenerate_store_corpus -- --ignored`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use dvm_repro::store::record::{encode_record, encode_segment_header, KIND_PUT, KIND_TOMBSTONE};
use dvm_repro::store::{Store, StoreConfig};

/// A self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dvm-prop-store-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/store")
}

/// Replays every damaged segment image in `tests/corpus/store/` as
/// segment 0 of a store directory, loaded through the shared
/// `dvm_fuzz::corpus` helper. Recovery must succeed, index exactly the
/// `# expect-live: N` annotated committed prefix, and serve every
/// surviving key without a corruption miss.
#[test]
fn store_corpus_recovers_to_the_committed_prefix() {
    let entries = dvm_repro::fuzz::corpus::load_dir(corpus_dir());
    assert!(!entries.is_empty(), "store corpus has no .hex entries");

    for entry in entries {
        let path = &entry.path;
        let bytes = &entry.bytes;
        let expect: usize = entry
            .annotation("expect-live")
            .expect("corpus file carries an '# expect-live: N' line")
            .parse()
            .expect("expect-live value parses");

        let dir = TempDir::new();
        std::fs::create_dir_all(&dir.0).unwrap();
        std::fs::write(dir.0.join(format!("{:016x}.seg", 0)), bytes).unwrap();

        let mut store = Store::open(&dir.0, StoreConfig::default())
            .unwrap_or_else(|e| panic!("{path:?}: recovery must not fail, got {e}"));
        assert_eq!(
            store.len(),
            expect,
            "{path:?}: wrong committed prefix (keys: {:?})",
            store.keys()
        );
        for key in store.keys() {
            let got = store.get(&key).unwrap();
            assert!(
                got.is_some(),
                "{path:?}: recovered key {key:?} failed its read-back"
            );
        }
        assert_eq!(
            store.stats().read_corruptions,
            0,
            "{path:?}: a recovered record failed re-verification"
        );

        // The recovered store must remain fully writable: recovery
        // truncated the torn tail, so the append path continues cleanly.
        store.put("post-recovery", b"alive").unwrap();
        assert_eq!(store.get("post-recovery").unwrap().unwrap(), b"alive");
    }
}

/// Writes the corpus. Each image is a deliberately damaged segment-0
/// file; the annotation records how many committed records precede the
/// damage. Run with `-- --ignored` after a format change, then review
/// the diff.
#[test]
#[ignore = "regenerates tests/corpus/store/*.hex"]
fn regenerate_store_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();

    let rec = |kind: u8, key: &str, value: &[u8]| -> Vec<u8> { encode_record(kind, key, value) };
    let header = encode_segment_header(0).to_vec();

    let dump = |name: &str, note: &str, expect: usize, bytes: &[u8]| {
        let expect = expect.to_string();
        dvm_repro::fuzz::corpus::write_entry(
            &dir,
            name,
            note,
            &[("expect-live", expect.as_str())],
            bytes,
        );
    };

    // 1. A header cut mid-way: the whole segment is unreadable.
    dump(
        "truncated-header.hex",
        "segment header cut at 10 of 20 bytes: recovery drops the segment",
        0,
        &header[..10],
    );

    // 2. One committed record, then a second cut mid-body.
    let mut img = header.clone();
    img.extend_from_slice(&rec(KIND_PUT, "class://a/A", b"alpha"));
    let torn = rec(KIND_PUT, "class://b/B", b"beta-payload");
    img.extend_from_slice(&torn[..torn.len() - 7]);
    dump(
        "truncated-record.hex",
        "record 2 torn mid-body: recovery keeps record 1 and truncates",
        1,
        &img,
    );

    // 3. A record whose CRC field is flipped: rejected despite a full body.
    let mut img = header.clone();
    let mut bad = rec(KIND_PUT, "class://c/C", b"gamma");
    bad[4] ^= 0xFF;
    img.extend_from_slice(&bad);
    dump(
        "bad-crc.hex",
        "CRC field flipped on an otherwise complete record: rejected",
        0,
        &img,
    );

    // 4. One committed record, then a record missing its commit marker —
    //    the shape an un-fsynced crash leaves when the marker byte never
    //    reached the platter.
    let mut img = header.clone();
    img.extend_from_slice(&rec(KIND_PUT, "class://d/D", b"delta"));
    let mut uncommitted = rec(KIND_PUT, "class://e/E", b"epsilon");
    let last = uncommitted.len() - 1;
    uncommitted[last] = 0x00;
    img.extend_from_slice(&uncommitted);
    dump(
        "missing-commit.hex",
        "record 2 lacks its 0xC7 commit marker: only record 1 survives",
        1,
        &img,
    );

    // 5. Two committed records (a put and a tombstone for a second key),
    //    then garbage: the live index is exactly one key.
    let mut img = header.clone();
    img.extend_from_slice(&rec(KIND_PUT, "class://f/F", b"zeta"));
    img.extend_from_slice(&rec(KIND_TOMBSTONE, "class://g/G", b""));
    img.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x00, 0xFF, 0x31, 0x41, 0x59]);
    dump(
        "garbage-tail.hex",
        "two committed records (put + tombstone) then garbage: one live key",
        1,
        &img,
    );
}

#[derive(Debug, Clone)]
enum Op {
    Put(String, Vec<u8>),
    Delete(String),
    Get(String),
    Compact,
    Flush,
    Reopen,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let key = || (0u8..6).prop_map(|k| format!("class://prop/K{k}"));
    prop_oneof![
        (key(), proptest::collection::vec(any::<u8>(), 0..96)).prop_map(|(k, v)| Op::Put(k, v)),
        (key(), proptest::collection::vec(any::<u8>(), 0..96)).prop_map(|(k, v)| Op::Put(k, v)),
        key().prop_map(Op::Delete),
        key().prop_map(Op::Get),
        Just(Op::Compact),
        Just(Op::Flush),
        Just(Op::Reopen),
    ]
}

/// Tiny segments force rolls and compactions inside even short runs.
fn small_config() -> StoreConfig {
    StoreConfig {
        segment_max_bytes: 512,
        compact_min_bytes: 1 << 20,
        ..StoreConfig::default()
    }
}

proptest! {
    /// The store is a durable `HashMap`: any interleaving of puts,
    /// deletes, gets, compactions, flushes, and full reopens observes
    /// exactly the model's state.
    #[test]
    fn store_agrees_with_hashmap_model(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let dir = TempDir::new();
        let mut store = Store::open(&dir.0, small_config()).unwrap();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    store.put(&k, &v).unwrap();
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    let existed = store.delete(&k).unwrap();
                    prop_assert_eq!(existed, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(store.get(&k).unwrap(), model.get(&k).cloned());
                }
                Op::Compact => store.compact().unwrap(),
                Op::Flush => store.flush().unwrap(),
                Op::Reopen => {
                    drop(store);
                    store = Store::open(&dir.0, small_config()).unwrap();
                }
            }
        }
        prop_assert_eq!(store.len(), model.len());
        let mut keys: Vec<_> = model.keys().cloned().collect();
        keys.sort();
        prop_assert_eq!(store.keys(), keys);
        for (k, v) in &model {
            prop_assert_eq!(store.get(k).unwrap(), Some(v.clone()));
        }
        prop_assert_eq!(store.stats().read_corruptions, 0);
    }

    /// Cutting the log at *any* byte recovers a committed prefix: the
    /// surviving keys are exactly the first `m` written, each with its
    /// correct value — never a reordering, never a wrong byte.
    #[test]
    fn truncation_at_any_byte_recovers_a_prefix(
        n in 1usize..16,
        cut_seed in any::<u64>(),
    ) {
        let dir = TempDir::new();
        let value_of = |i: usize| vec![i as u8; 16 + i];
        let seg_path = {
            let mut store = Store::open(&dir.0, StoreConfig::default()).unwrap();
            for i in 0..n {
                store.put(&format!("class://trunc/K{i:02}"), &value_of(i)).unwrap();
            }
            store.flush().unwrap();
            dir.0.join(format!("{:016x}.seg", 0))
        };

        let full = std::fs::metadata(&seg_path).unwrap().len();
        // Cut anywhere from mid-header to one byte short of the end.
        let cut = cut_seed % full.max(1);
        let f = std::fs::OpenOptions::new().write(true).open(&seg_path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let mut store = Store::open(&dir.0, StoreConfig::default()).unwrap();
        let m = store.len();
        prop_assert!(m <= n);
        for i in 0..n {
            let got = store.get(&format!("class://trunc/K{i:02}")).unwrap();
            if i < m {
                prop_assert_eq!(got, Some(value_of(i)), "key {} missing from prefix", i);
            } else {
                prop_assert_eq!(got, None, "key {} survived past the cut", i);
            }
        }
    }

    /// Flipping one byte anywhere after the segment header recovers a
    /// committed prefix too — the CRC, length bounds, and commit marker
    /// leave no single-byte corruption undetected.
    #[test]
    fn single_byte_corruption_never_serves_wrong_bytes(
        n in 1usize..12,
        pos_seed in any::<u64>(),
    ) {
        let dir = TempDir::new();
        let value_of = |i: usize| vec![0xC0u8 ^ i as u8; 24];
        let seg_path = {
            let mut store = Store::open(&dir.0, StoreConfig::default()).unwrap();
            for i in 0..n {
                store.put(&format!("class://flip/K{i:02}"), &value_of(i)).unwrap();
            }
            store.flush().unwrap();
            dir.0.join(format!("{:016x}.seg", 0))
        };

        let mut bytes = std::fs::read(&seg_path).unwrap();
        let header = dvm_repro::store::record::SEGMENT_HEADER_LEN as u64;
        let span = bytes.len() as u64 - header;
        let pos = (header + pos_seed % span) as usize;
        bytes[pos] ^= 1 << (pos_seed % 8);
        std::fs::write(&seg_path, &bytes).unwrap();

        let mut store = Store::open(&dir.0, StoreConfig::default()).unwrap();
        let m = store.len();
        prop_assert!(m <= n);
        for i in 0..m {
            prop_assert_eq!(
                store.get(&format!("class://flip/K{i:02}")).unwrap(),
                Some(value_of(i)),
                "surviving key {} served wrong bytes", i
            );
        }
        prop_assert_eq!(store.stats().read_corruptions, 0);
    }
}
