//! Property-based tests on the substrate invariants: everything that is
//! written can be read back identically, and hostile inputs never panic.

use proptest::prelude::*;

use dvm_repro::bytecode::{Code, Insn, Kind};
use dvm_repro::classfile::descriptor::{FieldType, MethodDescriptor};
use dvm_repro::classfile::pool::{ConstPool, Constant};
use dvm_repro::classfile::{AccessFlags, ClassBuilder, ClassFile, CodeAttribute};

// ---- Constant pool ----------------------------------------------------------

fn arb_constant() -> impl Strategy<Value = Constant> {
    prop_oneof![
        "[a-zA-Z0-9/$_]{1,40}".prop_map(Constant::Utf8),
        any::<i32>().prop_map(Constant::Integer),
        any::<i64>().prop_map(Constant::Long),
        any::<f32>().prop_map(Constant::Float),
        any::<f64>().prop_map(Constant::Double),
    ]
}

proptest! {
    #[test]
    fn pool_round_trips(constants in proptest::collection::vec(arb_constant(), 0..60)) {
        let mut pool = ConstPool::new();
        for c in &constants {
            pool.push(c.clone()).unwrap();
        }
        let mut w = dvm_repro::classfile::writer::Writer::new();
        pool.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = dvm_repro::classfile::reader::Reader::new(&bytes);
        let parsed = ConstPool::parse(&mut r).unwrap();
        prop_assert_eq!(pool.count(), parsed.count());
        for (i, c) in pool.iter() {
            // NaN-aware comparison: compare bit patterns for floats.
            match (c, parsed.get(i).unwrap()) {
                (Constant::Float(a), Constant::Float(b)) => {
                    prop_assert_eq!(a.to_bits(), b.to_bits())
                }
                (Constant::Double(a), Constant::Double(b)) => {
                    prop_assert_eq!(a.to_bits(), b.to_bits())
                }
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    /// Arbitrary bytes never panic the class-file parser.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = ClassFile::parse(&bytes);
    }

    /// Arbitrary bytes prefixed with valid magic/version never panic.
    #[test]
    fn parser_never_panics_with_magic(tail in proptest::collection::vec(any::<u8>(), 0..600)) {
        let mut bytes = vec![0xCA, 0xFE, 0xBA, 0xBE, 0x00, 0x00, 0x00, 0x2E];
        bytes.extend(tail);
        let _ = ClassFile::parse(&bytes);
    }

    /// Arbitrary code arrays never panic the bytecode decoder.
    #[test]
    fn decoder_never_panics(code in proptest::collection::vec(any::<u8>(), 0..200)) {
        let attr = CodeAttribute {
            max_stack: 10,
            max_locals: 10,
            code,
            exception_table: vec![],
            attributes: vec![],
        };
        let _ = Code::decode(&attr);
    }
}

// ---- Descriptors ------------------------------------------------------------

fn arb_field_type() -> impl Strategy<Value = FieldType> {
    let leaf = prop_oneof![
        Just(FieldType::Byte),
        Just(FieldType::Char),
        Just(FieldType::Double),
        Just(FieldType::Float),
        Just(FieldType::Int),
        Just(FieldType::Long),
        Just(FieldType::Short),
        Just(FieldType::Boolean),
        "[a-zA-Z][a-zA-Z0-9/$]{0,20}".prop_map(FieldType::Object),
    ];
    leaf.prop_recursive(3, 8, 2, |inner| {
        inner.prop_map(|t| FieldType::Array(Box::new(t)))
    })
}

proptest! {
    #[test]
    fn field_descriptors_round_trip(t in arb_field_type()) {
        let s = t.descriptor();
        let parsed = FieldType::parse(&s).unwrap();
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn method_descriptors_round_trip(
        params in proptest::collection::vec(arb_field_type(), 0..6),
        ret in proptest::option::of(arb_field_type()),
    ) {
        let d = MethodDescriptor { params, ret };
        let s = d.descriptor();
        let parsed = MethodDescriptor::parse(&s).unwrap();
        prop_assert_eq!(parsed, d);
    }
}

// ---- Bytecode bodies --------------------------------------------------------

/// A generator for small, *structurally valid* straight-line bodies with
/// occasional local ops; targets stay in range because the only branch is
/// a final return.
fn arb_straightline() -> impl Strategy<Value = Vec<Insn>> {
    let insn = prop_oneof![
        (-32768i32..=32767).prop_map(Insn::IConst),
        (0u16..4).prop_map(|s| Insn::Load(Kind::Int, s)),
        (0u16..4).prop_map(|s| Insn::Store(Kind::Int, s)),
        (0u16..4, -128i16..=127).prop_map(|(s, d)| Insn::IInc(s, d)),
        Just(Insn::Nop),
    ];
    proptest::collection::vec(insn, 0..40)
}

proptest! {
    #[test]
    fn bodies_round_trip_through_encoding(mut insns in arb_straightline()) {
        // Make the body well-formed: balance the stack by construction is
        // unnecessary for encode/decode equality (encode skips max_stack
        // validation only when the dataflow succeeds; use a store-free
        // epilogue that terminates).
        insns.push(Insn::Return(None));
        let code = Code { insns: insns.clone(), handlers: vec![], max_locals: 8 };
        let pool = ConstPool::new();
        // Encoding may legitimately fail max-stack checking for unbalanced
        // bodies; only successful encodings must round-trip.
        if let Ok(attr) = code.encode(&pool) {
            let decoded = Code::decode(&attr).unwrap();
            prop_assert_eq!(decoded.insns, insns);
        }
    }

    /// MD5: any single-bit flip changes the digest.
    #[test]
    fn md5_bit_flip_changes_digest(
        mut data in proptest::collection::vec(any::<u8>(), 1..300),
        flip in any::<u16>(),
    ) {
        let d1 = dvm_repro::proxy::md5::md5(&data);
        let bit = flip as usize % (data.len() * 8);
        data[bit / 8] ^= 1 << (bit % 8);
        let d2 = dvm_repro::proxy::md5::md5(&data);
        prop_assert_ne!(d1, d2);
    }

    /// Signature verification accepts exactly the signed payload.
    #[test]
    fn signatures_verify_only_untampered(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        use dvm_repro::proxy::{SignatureCheck, Signer};
        let signer = Signer::new(b"prop-key");
        let signed = signer.attach(data.clone());
        let (check, payload) = signer.detach(&signed);
        prop_assert_eq!(check, SignatureCheck::Valid);
        prop_assert_eq!(payload.unwrap(), &data[..]);
    }
}

// ---- Builder-level round trip ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn built_classes_round_trip(
        class_name in "[a-z][a-z0-9]{0,10}(/[A-Z][a-zA-Z0-9]{0,10}){1,3}",
        field_names in proptest::collection::hash_set("[a-z][a-zA-Z0-9_]{0,12}", 0..8),
        method_names in proptest::collection::hash_set("[a-z][a-zA-Z0-9_]{0,12}", 0..8),
    ) {
        let mut b = ClassBuilder::new(&class_name);
        for f in &field_names {
            b = b.field(AccessFlags::PRIVATE, f, "I");
        }
        for m in &method_names {
            b = b.method(
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                m,
                "()I",
                CodeAttribute {
                    max_stack: 1,
                    max_locals: 0,
                    code: vec![0x03, 0xAC],
                    ..Default::default()
                },
            );
        }
        let mut cf = b.build();
        let bytes = cf.to_bytes().unwrap();
        let parsed = ClassFile::parse(&bytes).unwrap();
        prop_assert_eq!(parsed.name().unwrap(), class_name.as_str());
        prop_assert_eq!(parsed.fields.len(), field_names.len());
        prop_assert_eq!(parsed.methods.len(), method_names.len());
        // Serialize the parsed form again: byte-identical (canonical form).
        let mut parsed = parsed;
        let bytes2 = parsed.to_bytes().unwrap();
        prop_assert_eq!(bytes, bytes2);
    }
}

// ---- Policy XML ---------------------------------------------------------------

proptest! {
    /// Generated policy documents render and re-parse to the same model.
    #[test]
    fn policy_xml_round_trips(
        principals in proptest::collection::btree_map("[a-z]{1,8}", 1u32..1000, 1..5),
        permissions in proptest::collection::btree_map("[a-z]{1,8}\\.[a-z]{1,8}", 1u32..1000, 1..5),
    ) {
        use dvm_repro::security::Policy;
        let mut doc = String::from("<policy>\n");
        for (name, sid) in &principals {
            doc.push_str(&format!("  <principal name=\"{name}\" sid=\"{sid}\"/>\n"));
        }
        for (name, id) in &permissions {
            doc.push_str(&format!("  <permission name=\"{name}\" id=\"{id}\"/>\n"));
        }
        // Grant every principal every permission.
        for p in principals.keys() {
            for q in permissions.keys() {
                doc.push_str(&format!("  <allow principal=\"{p}\" permission=\"{q}\"/>\n"));
            }
        }
        doc.push_str("</policy>");
        let policy = Policy::parse(&doc).unwrap();
        prop_assert_eq!(policy.principals.len(), principals.len());
        prop_assert_eq!(policy.permissions.len(), permissions.len());
        for (p, sid) in &principals {
            let s = policy.principals[p.as_str()];
            prop_assert_eq!(s.0, *sid);
            for q in permissions.keys() {
                prop_assert!(policy.allows(s, policy.permissions[q.as_str()]));
            }
        }
    }

    /// Arbitrary text never panics the XML parser.
    #[test]
    fn xml_parser_never_panics(text in "\\PC{0,300}") {
        let _ = dvm_repro::security::xml::parse(&text);
    }
}
