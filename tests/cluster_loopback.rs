//! End-to-end tests for dvm-cluster: real sockets, ring-routed fetches,
//! mid-run shard failure with client failover, typed-overload failover,
//! and peer cache-fill over the wire.

use std::sync::Barrier;
use std::time::Duration;

use dvm_repro::cluster::{ClusterClientConfig, ClusterOptions, HashRing, HealthConfig};
use dvm_repro::core::{CostModel, Organization, ServiceConfig};
use dvm_repro::net::{FaultPlan, Hello, NetClassProvider, NetConfig, ServerConfig};
use dvm_repro::proxy::{ServedFrom, Signer};
use dvm_repro::security::Policy;
use dvm_repro::workload::{corpus, Applet};

fn org_over(applets: &[Applet]) -> Organization {
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    Organization::new(
        &classes,
        Policy::parse(dvm_repro::security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap()
}

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

fn org_signer() -> Option<Signer> {
    Some(Signer::new(b"dvm-org-key"))
}

/// The smallest `n` corpus applets (cheap to execute in a debug build).
fn small_applets(seed: u64, n: usize) -> Vec<Applet> {
    let mut applets = corpus(seed);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(n);
    applets
}

/// Fast-failing client tuning so a dead shard costs milliseconds, not
/// the default connect timeout.
fn fast_config() -> ClusterClientConfig {
    ClusterClientConfig {
        net: NetConfig {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            ..NetConfig::default()
        },
        health: HealthConfig {
            failure_threshold: 2,
            quarantine: Duration::from_millis(200),
        },
        rounds: 3,
        round_backoff: Duration::from_millis(10),
        ..ClusterClientConfig::default()
    }
}

/// The acceptance scenario: three shards serve a fleet of clients; one
/// shard is killed mid-run (on a barrier, so "mid" is deterministic) and
/// every client still completes every applet with verified signatures —
/// zero failed clients.
#[test]
fn killing_one_of_three_shards_mid_run_loses_no_client() {
    let applets = small_applets(11, 4);
    let org = org_over(&applets);
    let mut cluster = org
        .serve_cluster_with(
            3,
            ClusterOptions {
                seed: 7,
                // Transient drops on top of the hard kill: failover and
                // same-shard retry coexist.
                server: ServerConfig {
                    fault: Some(FaultPlan::drop_every_nth(17)),
                    ..ServerConfig::default()
                },
                ..ClusterOptions::default()
            },
        )
        .unwrap();

    const CLIENTS: usize = 4;
    // Clients run one applet, rendezvous, the main thread kills shard 1,
    // then they run the rest against the degraded cluster.
    let barrier = Barrier::new(CLIENTS + 1);
    let mut clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            org.cluster_client_with(&cluster, &format!("user{i}"), "applets", fast_config())
                .unwrap()
        })
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .drain(..)
            .enumerate()
            .map(|(i, mut client)| {
                let applets = &applets;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut completions = Vec::new();
                    let first = client
                        .run_main(&applets[i % applets.len()].main_class)
                        .unwrap();
                    completions.push(first.completion);
                    barrier.wait();
                    for a in applets {
                        let report = client.run_main(&a.main_class).unwrap();
                        assert!(!report.transfers.is_empty(), "client {i} fetched nothing");
                        completions.push(report.completion);
                    }
                    completions
                })
            })
            .collect();

        barrier.wait();
        let dead = cluster.kill_shard(1).expect("shard 1 was alive");
        assert!(dead.requests > 0, "shard 1 never served before the kill");
        assert!(!cluster.is_alive(1));

        for (i, h) in handles.into_iter().enumerate() {
            let completions = h.join().unwrap_or_else(|_| panic!("client {i} panicked"));
            assert_eq!(completions.len(), 1 + applets.len());
            for c in completions {
                assert!(
                    matches!(c, dvm_repro::jvm::Completion::Normal(_)),
                    "client {i}: {c:?}"
                );
            }
        }
    });

    // Signing was on and every load verified (a bad signature fails the
    // class load, which would have failed run_main). The survivors did
    // real work after the kill.
    let s0 = cluster.shard_stats(0).unwrap();
    let s2 = cluster.shard_stats(2).unwrap();
    assert!(s0.requests + s2.requests > 0);

    // A brand-new client must also come up against the degraded cluster,
    // even when its preferred audit shard is the dead one.
    for user in ["late0", "late1", "late2"] {
        let mut late = org
            .cluster_client_with(&cluster, user, "applets", fast_config())
            .unwrap();
        let report = late.run_main(&applets[0].main_class).unwrap();
        assert!(matches!(
            report.completion,
            dvm_repro::jvm::Completion::Normal(_)
        ));
    }
    cluster.shutdown();
}

/// A shard at its connection limit answers with a typed `Overloaded`
/// rejection, and the cluster client fails over to the next replica
/// instead of retrying the full backoff schedule against the busy shard.
#[test]
fn typed_overload_fails_over_to_the_next_shard() {
    let applets = small_applets(23, 2);
    let org = org_over(&applets);
    let cluster = org
        .serve_cluster_with(
            2,
            ClusterOptions {
                seed: 3,
                // One connection per shard, and no peer links competing
                // for it.
                server: ServerConfig {
                    max_connections: 1,
                    ..ServerConfig::default()
                },
                peer_fill: false,
                ..ClusterOptions::default()
            },
        )
        .unwrap();

    let url = format!("class://{}", applets[0].main_class);
    let home = cluster.ring().home(&url).unwrap();

    // A direct connection occupies the home shard's only slot.
    let mut squatter = NetClassProvider::new(
        cluster.addrs()[home as usize],
        hello("squatter"),
        org_signer(),
        NetConfig::default(),
    )
    .unwrap();
    squatter.fetch(&url).unwrap(); // connected and idle, holding the permit

    let mut provider = dvm_repro::cluster::ClusterClassProvider::new(
        cluster.addrs().to_vec(),
        cluster.ring().clone(),
        hello("walker"),
        org_signer(),
        fast_config(),
    );
    let (bytes, transfer) = provider.fetch(&url).unwrap();
    assert!(!bytes.is_empty());
    // Served, but not by the home shard: the overload rejection moved
    // the fetch to the replica, which had to rewrite it itself.
    assert_eq!(transfer.served_from, ServedFrom::Rewritten);
    let stats = provider.stats();
    assert!(stats.failovers >= 1, "no failover recorded: {stats:?}");
    assert_eq!(stats.requests, 1);

    let home_stats = cluster.shard_stats(home as usize).unwrap();
    assert!(
        home_stats.overload_rejects >= 1,
        "home shard never rejected: {home_stats:?}"
    );
    cluster.shutdown();
}

/// Peer cache-fill over the wire: a shard that misses locally fetches
/// the home shard's cached rewrite (`PEER_GET`) and serves it as
/// `ServedFrom::Peer` without paying the rewrite; a shard that rewrites
/// a foreign class pushes it home (`PEER_PUT`), where it lands on the
/// disk tier.
#[test]
fn peer_cache_fill_crosses_the_wire_in_both_directions() {
    let applets = small_applets(37, 2);
    let org = org_over(&applets);
    let cluster = org
        .serve_cluster_with(
            2,
            ClusterOptions {
                seed: 5,
                ..ClusterOptions::default()
            },
        )
        .unwrap();

    let url = format!("class://{}", applets[0].main_class);
    let home = cluster.ring().home(&url).unwrap() as usize;
    let other = 1 - home;

    // Warm the home shard (a plain rewrite there).
    let mut at_home = NetClassProvider::new(
        cluster.addrs()[home],
        hello("warmer"),
        org_signer(),
        NetConfig::default(),
    )
    .unwrap();
    let (home_bytes, t) = at_home.fetch(&url).unwrap();
    assert_eq!(t.served_from, ServedFrom::Rewritten);

    // Fetch the same URL at the *other* shard: local miss, PEER_GET hit.
    let mut at_other = NetClassProvider::new(
        cluster.addrs()[other],
        hello("strayed"),
        org_signer(),
        NetConfig::default(),
    )
    .unwrap();
    let (peer_bytes, t) = at_other.fetch(&url).unwrap();
    assert_eq!(t.served_from, ServedFrom::Peer, "expected a peer fill");
    assert_eq!(t.processing_ns, 0, "a peer fill pays no rewrite");
    assert_eq!(peer_bytes, home_bytes, "peer fill changed the payload");
    assert_eq!(cluster.proxy(other).stats().peer_fills, 1);
    assert_eq!(cluster.proxy(other).stats().rewrites, 0);
    let home_server = cluster.shard_stats(home).unwrap();
    assert!(home_server.peer_gets >= 1 && home_server.peer_hits >= 1);

    // Now the reverse: a URL homed on the *other* shard, first fetched
    // at `home` — which rewrites it and offers it home with PEER_PUT.
    let foreign = applets[1]
        .classes
        .iter()
        .map(|c| format!("class://{}", c.name().unwrap()))
        .find(|u| cluster.ring().home(u).unwrap() as usize == other);
    if let Some(foreign_url) = foreign {
        let (bytes, t) = at_home.fetch(&foreign_url).unwrap();
        assert_eq!(t.served_from, ServedFrom::Rewritten);
        assert!(cluster.proxy(home).stats().peer_offers >= 1);
        // The offer landed on the other shard's disk tier: a client
        // asking there is served from cache, not rewritten.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while cluster.shard_stats(other).unwrap().peer_puts == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(cluster.shard_stats(other).unwrap().peer_puts >= 1);
        let (offered, t) = at_other.fetch(&foreign_url).unwrap();
        assert_eq!(t.served_from, ServedFrom::DiskCache, "offer not cached");
        assert_eq!(offered, bytes);
        assert_eq!(cluster.proxy(other).stats().rewrites, 0);
    }
    cluster.shutdown();
}

/// The cluster path is the same machine as the single-server path:
/// identical completions and transfer manifests for the same applet.
#[test]
fn cluster_client_matches_single_server_client() {
    let applets = small_applets(73, 1);
    let org = org_over(&applets);
    let server = org.serve("127.0.0.1:0").unwrap();
    let cluster = org.serve_cluster(3).unwrap();

    let mut single = org
        .remote_client(server.addr(), "alice", "applets")
        .unwrap();
    let single_report = single.run_main(&applets[0].main_class).unwrap();

    let mut clustered = org.cluster_client(&cluster, "bob", "applets").unwrap();
    let cluster_report = clustered.run_main(&applets[0].main_class).unwrap();

    assert_eq!(
        format!("{:?}", single_report.completion),
        format!("{:?}", cluster_report.completion)
    );
    let manifest = |r: &dvm_repro::core::RunReport| {
        let mut v: Vec<(String, usize)> = r
            .transfers
            .iter()
            .map(|t| (t.class.clone(), t.bytes))
            .collect();
        v.sort();
        v
    };
    assert_eq!(manifest(&single_report), manifest(&cluster_report));

    // The client's ring replica and the cluster's agree on every class.
    let replica = HashRing::with_shards(3, cluster.ring().vnodes(), cluster.ring().seed());
    for t in &cluster_report.transfers {
        let url = format!("class://{}", t.class);
        assert_eq!(replica.home(&url), cluster.ring().home(&url));
    }

    server.shutdown();
    cluster.shutdown();
}
