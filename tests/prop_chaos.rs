//! Property-based negative-path tests for the chaos fault grammar
//! (`dvm_chaos::schedule`): arbitrary byte soup never panics the
//! parser, any schedule the parser *does* accept survives a
//! `Display → parse` round-trip, and structurally-generated schedules
//! round-trip exactly — so a failing chaos run can always print the
//! schedule string needed to replay it.

use proptest::prelude::*;

use dvm_repro::chaos::{ChaosFault, ChaosRule, ChaosSchedule, Dir, Trigger};

fn arb_fault() -> impl Strategy<Value = ChaosFault> {
    prop_oneof![
        Just(ChaosFault::Reset),
        Just(ChaosFault::HalfClose),
        Just(ChaosFault::Corrupt),
        any::<u64>().prop_map(ChaosFault::Stall),
        any::<u64>().prop_map(ChaosFault::Delay),
        any::<u32>().prop_map(|n| ChaosFault::Truncate(n as usize)),
        (1u64..u64::MAX).prop_map(ChaosFault::Throttle),
    ]
}

fn arb_trigger() -> impl Strategy<Value = Trigger> {
    prop_oneof![
        Just(Trigger::Always),
        (1u64..u64::MAX).prop_map(Trigger::EveryNth),
        (1u64..u64::MAX).prop_map(Trigger::Once),
        // A draw in [0, 1]: the grammar rejects anything outside.
        any::<u32>().prop_map(|v| Trigger::Prob(f64::from(v) / f64::from(u32::MAX))),
    ]
}

fn arb_rule() -> impl Strategy<Value = ChaosRule> {
    (
        arb_fault(),
        arb_trigger(),
        prop_oneof![Just(Dir::ToServer), Just(Dir::ToClient), Just(Dir::Both)],
    )
        .prop_map(|(fault, trigger, dir)| ChaosRule {
            fault,
            trigger,
            dir,
        })
}

proptest! {
    /// The parser is total: any string — control characters, stray `@`
    /// and `:` separators, Latin-1 soup — yields `Ok` or a typed
    /// `ParseError`, never a panic. And anything it accepts must print
    /// back to a string it accepts *identically*, so every reachable
    /// schedule value is replayable from its own `Display` output.
    #[test]
    fn hostile_schedule_text_never_panics(text in "[ -~\\n\\t¡-ÿ]{0,80}") {
        if let Ok(schedule) = ChaosSchedule::parse(&text) {
            let printed = schedule.to_string();
            let reparsed = ChaosSchedule::parse(&printed);
            prop_assert_eq!(
                reparsed,
                Ok(schedule),
                "accepted schedule did not survive Display → parse: {:?}",
                printed
            );
        }
    }

    /// Near-miss tokens built from grammar fragments: gluing valid-ish
    /// pieces together must also never panic (this walks the parser's
    /// error paths much more densely than uniform soup does).
    #[test]
    fn grammar_fragment_soup_never_panics(
        dir in "[<>]{0,2}",
        name in prop_oneof![
            Just("reset".to_owned()), Just("halfclose".to_owned()),
            Just("corrupt".to_owned()), Just("stall".to_owned()),
            Just("delay".to_owned()), Just("trunc".to_owned()),
            Just("throttle".to_owned()), "[a-z]{0,9}".prop_map(|s| s),
        ],
        arg in "(:[0-9]{0,21}(ms)?)?",
        trig in "(@[pn]?(once)?-?[0-9.]{0,12})?",
    ) {
        let token = format!("{dir}{name}{arg}{trig}");
        if let Ok(schedule) = ChaosSchedule::parse(&token) {
            prop_assert_eq!(
                ChaosSchedule::parse(&schedule.to_string()),
                Ok(schedule)
            );
        }
    }

    /// Structurally-generated schedules round-trip exactly through the
    /// textual grammar: `parse(schedule.to_string()) == schedule` for
    /// every rule list the builder API can produce, including extreme
    /// argument values (u64::MAX stalls, probability 0 and 1).
    #[test]
    fn display_then_parse_is_identity(rules in proptest::collection::vec(arb_rule(), 0..8)) {
        let schedule = ChaosSchedule { rules };
        let printed = schedule.to_string();
        let reparsed = ChaosSchedule::parse(&printed)
            .unwrap_or_else(|e| panic!("printed schedule {printed:?} rejected: {e}"));
        prop_assert_eq!(reparsed, schedule);
    }

    /// Parse errors carry the offending token verbatim, so the operator
    /// can find it in a long schedule string: the reported token is
    /// always one of the whitespace-separated input tokens.
    #[test]
    fn parse_errors_name_an_input_token(text in "[ -~¡-ÿ]{0,60}") {
        if let Err(e) = ChaosSchedule::parse(&text) {
            prop_assert!(
                text.split_whitespace().any(|t| t == e.token),
                "error token {:?} not found in input {:?}", e.token, text
            );
        }
    }
}
