//! Property-based tests for the `dvm-watch` time-series arithmetic and
//! the `dvm-telemetry` event journal: counter-delta rates survive
//! counter resets without going negative, windowed histogram quantiles
//! agree with a sorted reference to within one log-linear bucket, and
//! journal sequence numbers stay strictly increasing — with cursor
//! tails that never drop or duplicate — under concurrent writers.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use dvm_repro::telemetry::metrics::{bucket_lower, bucket_upper};
use dvm_repro::telemetry::{EventJournal, JournalKind, Registry};
use dvm_repro::watch::Sampler;

const SEC: u64 = 1_000_000_000;

proptest! {
    /// Each element of `values` is the counter's *absolute* value at one
    /// tick. Downward jumps model process restarts (the registry is
    /// rebuilt from zero); the sampler must clamp the delta to the new
    /// value, never wrap, and every derived rate must be finite and
    /// non-negative.
    #[test]
    fn counter_rates_never_go_negative_across_restarts(
        values in proptest::collection::vec(any::<u32>(), 1..40)
    ) {
        let mut s = Sampler::new(64);
        s.tick(0, Registry::new().snapshot());
        let mut now = 0u64;
        let mut prev = 0u64;
        for &v in &values {
            let reg = Registry::new();
            reg.counter("c").add(u64::from(v));
            now += SEC;
            s.tick(now, reg.snapshot());
            let p = *s.counter_points("c").last().unwrap();
            let expected = if u64::from(v) >= prev {
                u64::from(v) - prev
            } else {
                u64::from(v) // restart: the whole new count is the delta
            };
            prop_assert_eq!(p.delta, expected);
            prop_assert!(p.rate().is_finite() && p.rate() >= 0.0);
            prev = u64::from(v);
        }
        let windowed = s.window_rate("c", now.max(1), now);
        prop_assert!(windowed.is_finite() && windowed >= 0.0);
    }

    /// A windowed quantile (merged from per-tick histogram deltas) must
    /// land in the same log-linear bucket as the exact quantile of the
    /// sorted reference — i.e. within the histogram's 1/16 relative
    /// resolution.
    #[test]
    fn windowed_quantiles_agree_with_the_sorted_reference(
        values in proptest::collection::vec(1u64..1_000_000_000, 1..200),
        pct in 1u32..99,
    ) {
        let q = f64::from(pct) / 100.0;
        let mut s = Sampler::new(64);
        let reg = Registry::new();
        let h = reg.histogram("lat");
        s.tick(0, reg.snapshot());
        let mut now = 0u64;
        for chunk in values.chunks(37) {
            for &v in chunk {
                h.record(v);
            }
            now += SEC;
            s.tick(now, reg.snapshot());
        }
        let got = s.window_quantile("lat", q, now, now);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let reference = sorted[rank - 1];
        let bucket = (0..)
            .find(|&i| bucket_upper(i) > reference)
            .expect("every u64 lands in a bucket");
        prop_assert!(
            got >= bucket_lower(bucket) && got < bucket_upper(bucket),
            "windowed q{} = {} outside reference bucket [{}, {}) around {}",
            q, got, bucket_lower(bucket), bucket_upper(bucket), reference
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Concurrent writers each observe their own sequence numbers in
    /// strictly increasing order, the union is exactly `1..=total`
    /// (nothing skipped, nothing reused), and a full journal read
    /// returns them sorted.
    #[test]
    fn journal_seqs_strictly_increase_under_concurrent_writers(
        writers in 2usize..5,
        per_writer in 1usize..50,
    ) {
        let journal = Arc::new(EventJournal::new(4096));
        let mut seq_lists: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..writers)
                .map(|w| {
                    let journal = journal.clone();
                    scope.spawn(move || {
                        (0..per_writer)
                            .map(|i| {
                                journal.record(
                                    (w * per_writer + i) as u64,
                                    JournalKind::Note { text: format!("w{w}e{i}") },
                                )
                            })
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            for h in handles {
                seq_lists.push(h.join().unwrap());
            }
        });

        for seqs in &seq_lists {
            for pair in seqs.windows(2) {
                prop_assert!(pair[0] < pair[1], "writer saw seqs out of order: {seqs:?}");
            }
        }
        let total = writers * per_writer;
        let mut all: Vec<u64> = seq_lists.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (1..=total as u64).collect::<Vec<u64>>());

        let read: Vec<u64> = journal.events_after(0, total + 10).iter().map(|e| e.seq).collect();
        prop_assert_eq!(read, (1..=total as u64).collect::<Vec<u64>>());
    }

    /// A cursor tail running *while* writers are still recording never
    /// drops or duplicates an event: paging with `events_after` until
    /// the writers finish reconstructs exactly `1..=total`.
    #[test]
    fn cursor_tail_never_drops_or_duplicates_under_concurrent_writers(
        writers in 2usize..5,
        per_writer in 1usize..50,
        page in 1usize..7,
    ) {
        let journal = Arc::new(EventJournal::new(4096));
        let total = (writers * per_writer) as u64;
        let mut collected: Vec<u64> = Vec::new();
        std::thread::scope(|scope| {
            for w in 0..writers {
                let journal = journal.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        journal.record(
                            (w * per_writer + i) as u64,
                            JournalKind::Note { text: format!("w{w}e{i}") },
                        );
                    }
                });
            }
            // The tail races the writers; it must only ever see new,
            // in-order events past its cursor.
            let mut cursor = 0u64;
            while collected.len() < total as usize {
                let batch = journal.events_after(cursor, page);
                for e in &batch {
                    assert!(e.seq > cursor, "tail went backwards: {} after {cursor}", e.seq);
                    cursor = e.seq;
                    collected.push(e.seq);
                }
                std::hint::spin_loop();
            }
        });
        prop_assert_eq!(collected, (1..=total).collect::<Vec<u64>>());
    }
}

// ---- Exposition (expo) properties ------------------------------------------

proptest! {
    /// `parse ∘ render` is lossless for the samples that matter: every
    /// counter and gauge registered under an arbitrary (hostile) name
    /// comes back under its sanitized name with its exact value, every
    /// rate sample round-trips bit-for-bit, and the parser accepts the
    /// whole exposition. Values stay under 2^32 so `u64 → f64 → u64`
    /// is exact.
    #[test]
    fn exposition_parse_inverts_render(
        node in "[ -~\\n¡-ÿ]{0,12}",
        counters in proptest::collection::vec(("[ -~]{1,18}", any::<u32>()), 0..6),
        gauges in proptest::collection::vec(("[ -~]{1,18}", any::<i32>()), 0..6),
        hist in proptest::collection::vec(1u64..1_000_000, 0..20),
        rates in proptest::collection::vec(("[ -~]{0,18}", any::<u32>(), 0u32..1000), 0..4),
    ) {
        use dvm_repro::watch::expo;

        let reg = Registry::new();
        // The registry keys by raw name: repeated counter names accumulate
        // and a re-set gauge keeps its last value. Model both so the
        // round-trip assertion compares against what was actually stored.
        let mut counter_model: BTreeMap<&str, u64> = BTreeMap::new();
        for (name, v) in &counters {
            reg.counter(name).add(u64::from(*v));
            *counter_model.entry(name).or_default() += u64::from(*v);
        }
        let mut gauge_model: BTreeMap<&str, i64> = BTreeMap::new();
        for (name, v) in &gauges {
            reg.gauge(name).set(i64::from(*v));
            gauge_model.insert(name, i64::from(*v));
        }
        if !hist.is_empty() {
            let h = reg.histogram("lat.ns");
            for v in &hist {
                h.record(*v);
            }
        }
        let rates: Vec<(String, f64)> = rates
            .into_iter()
            .map(|(n, whole, frac)| (n, f64::from(whole) + f64::from(frac) / 1000.0))
            .collect();

        let text = expo::render(&node, &reg.snapshot(), &rates, &[]);
        let samples = expo::parse(&text).unwrap();

        let has = |name: &str, v: f64| samples.iter().any(|(n, _, sv)| n == name && *sv == v);
        for (name, v) in &counter_model {
            prop_assert!(
                has(&expo::sanitize(name), *v as f64),
                "counter {name:?} lost in round-trip"
            );
        }
        for (name, v) in &gauge_model {
            prop_assert!(
                has(&expo::sanitize(name), *v as f64),
                "gauge {name:?} lost in round-trip"
            );
        }
        if !hist.is_empty() {
            prop_assert!(has("dvm_lat_ns_count", hist.len() as f64));
            prop_assert!(has("dvm_lat_ns_sum", hist.iter().sum::<u64>() as f64));
        }
        for (_, rate) in &rates {
            prop_assert!(
                samples.iter().any(|(n, _, v)| n == "dvm_rate_per_sec" && v == rate),
                "rate {rate} lost in round-trip"
            );
        }
        // Every sample line the renderer emitted parsed back out.
        let rendered_samples = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .count();
        prop_assert_eq!(samples.len(), rendered_samples);
    }

    /// Hostile scrape text never panics the parser: any byte soup is a
    /// clean `Ok` or a typed `Err`.
    #[test]
    fn hostile_scrape_text_never_panics(text in "[ -~\\n\\t¡-ÿ]{0,300}") {
        let _ = dvm_repro::watch::expo::parse(&text);
    }

    /// Sanitized names are always legal Prometheus identifiers, so a
    /// hostile registry name cannot corrupt the exposition grammar.
    #[test]
    fn sanitize_always_yields_legal_names(name in "[ -~\\n¡-ÿ]{0,40}") {
        let s = dvm_repro::watch::expo::sanitize(&name);
        prop_assert!(s.starts_with("dvm_"));
        prop_assert!(s
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphanumeric() || c == '_' || (c == ':' && i > 0)));
    }
}
