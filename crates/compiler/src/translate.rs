//! Bytecode → IR translation.
//!
//! Stack slots are mapped to registers by depth (`s0`, `s1`, ...); a
//! dataflow pass first computes the operand-stack *shape* (which slots
//! hold wide values) at every instruction, then a second pass emits IR.
//! The code arriving here has passed verification, so shape merges are
//! required to agree.

use dvm_bytecode::insn::{ArithOp, ICond, Insn, Kind, LogicOp, ShiftOp};
use dvm_bytecode::Code;
use dvm_classfile::descriptor::MethodDescriptor;
use dvm_classfile::pool::{ConstPool, Constant};

use crate::error::{CompileError, Result};
use crate::ir::{BinOp, Cond, IrBody, IrConst, IrInsn, Reg};

/// Stack-slot tags: a wide value occupies a base slot plus a tail slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tag {
    /// A one-slot value.
    Single,
    /// Base slot of a wide value.
    WideBase,
    /// Tail slot of a wide value.
    WideTail,
}

type Shape = Vec<Tag>;

fn cond_of(c: ICond) -> Cond {
    match c {
        ICond::Eq => Cond::Eq,
        ICond::Ne => Cond::Ne,
        ICond::Lt => Cond::Lt,
        ICond::Ge => Cond::Ge,
        ICond::Gt => Cond::Gt,
        ICond::Le => Cond::Le,
    }
}

struct Xlate<'a> {
    pool: &'a ConstPool,
    ops: Vec<IrInsn>,
    emit: bool,
}

impl Xlate<'_> {
    fn push(&mut self, op: IrInsn) {
        if self.emit {
            self.ops.push(op);
        }
    }

    fn pop_value(&self, shape: &mut Shape, at: usize) -> Result<(Reg, bool)> {
        match shape.pop() {
            Some(Tag::Single) => Ok((Reg::Stack(shape.len() as u16), false)),
            Some(Tag::WideTail) => match shape.pop() {
                Some(Tag::WideBase) => Ok((Reg::Stack(shape.len() as u16), true)),
                _ => Err(CompileError::BadStack {
                    at,
                    reason: "broken wide pair".into(),
                }),
            },
            _ => Err(CompileError::BadStack {
                at,
                reason: "stack underflow".into(),
            }),
        }
    }

    fn push_value(&self, shape: &mut Shape, wide: bool) -> Reg {
        let r = Reg::Stack(shape.len() as u16);
        if wide {
            shape.push(Tag::WideBase);
            shape.push(Tag::WideTail);
        } else {
            shape.push(Tag::Single);
        }
        r
    }

    fn pop_n_values(&self, shape: &mut Shape, n: usize, at: usize) -> Result<Vec<Reg>> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.pop_value(shape, at)?.0);
        }
        v.reverse();
        Ok(v)
    }

    /// Translates one instruction; mutates `shape` to the exit shape.
    #[allow(clippy::too_many_lines)]
    fn transfer(&mut self, at: usize, insn: &Insn, shape: &mut Shape) -> Result<()> {
        match insn {
            Insn::Nop => {}
            Insn::AConstNull => {
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Const {
                    dst,
                    value: IrConst::Null,
                });
            }
            Insn::IConst(v) => {
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Const {
                    dst,
                    value: IrConst::Int(*v as i64),
                });
            }
            Insn::LConst(v) => {
                let dst = self.push_value(shape, true);
                self.push(IrInsn::Const {
                    dst,
                    value: IrConst::Int(*v),
                });
            }
            Insn::FConst(v) => {
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Const {
                    dst,
                    value: IrConst::Float(*v as f64),
                });
            }
            Insn::DConst(v) => {
                let dst = self.push_value(shape, true);
                self.push(IrInsn::Const {
                    dst,
                    value: IrConst::Float(*v),
                });
            }
            Insn::Ldc(idx) => {
                let value = match self.pool.get(*idx)? {
                    Constant::Integer(v) => IrConst::Int(*v as i64),
                    Constant::Float(v) => IrConst::Float(*v as f64),
                    Constant::String { .. } => IrConst::Str(*idx),
                    other => {
                        return Err(CompileError::BadStack {
                            at,
                            reason: format!("ldc of {}", other.kind()),
                        })
                    }
                };
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Const { dst, value });
            }
            Insn::Ldc2(idx) => {
                let value = match self.pool.get(*idx)? {
                    Constant::Long(v) => IrConst::Int(*v),
                    Constant::Double(v) => IrConst::Float(*v),
                    other => {
                        return Err(CompileError::BadStack {
                            at,
                            reason: format!("ldc2 of {}", other.kind()),
                        })
                    }
                };
                let dst = self.push_value(shape, true);
                self.push(IrInsn::Const { dst, value });
            }
            Insn::Load(kind, slot) => {
                let wide = matches!(kind, Kind::Long | Kind::Double);
                let dst = self.push_value(shape, wide);
                self.push(IrInsn::Move {
                    dst,
                    src: Reg::Local(*slot),
                });
            }
            Insn::Store(kind, slot) => {
                let _ = kind;
                let (src, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Move {
                    dst: Reg::Local(*slot),
                    src,
                });
            }
            Insn::ArrayLoad(k) => {
                let (index, _) = self.pop_value(shape, at)?;
                let (arr, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, k.width() == 2);
                self.push(IrInsn::Mem {
                    what: format!("aload.{k:?}"),
                    reads: vec![arr, index],
                    writes: Some(dst),
                });
            }
            Insn::ArrayStore(k) => {
                let (value, _) = self.pop_value(shape, at)?;
                let (index, _) = self.pop_value(shape, at)?;
                let (arr, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Mem {
                    what: format!("astore.{k:?}"),
                    reads: vec![arr, index, value],
                    writes: None,
                });
            }
            Insn::Pop => {
                self.pop_value(shape, at)?;
            }
            Insn::Pop2 => {
                let (_, wide) = self.pop_value(shape, at)?;
                if !wide {
                    self.pop_value(shape, at)?;
                }
            }
            Insn::Dup => {
                let top = Reg::Stack(shape.len() as u16 - 1);
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Move { dst, src: top });
            }
            Insn::DupX1 | Insn::DupX2 | Insn::Dup2 | Insn::Dup2X1 | Insn::Dup2X2 => {
                self.dup_form(at, insn, shape)?;
            }
            Insn::Swap => {
                let a = Reg::Stack(shape.len() as u16 - 1);
                let b = Reg::Stack(shape.len() as u16 - 2);
                let t = Reg::Stack(shape.len() as u16);
                self.push(IrInsn::Move { dst: t, src: a });
                self.push(IrInsn::Move { dst: a, src: b });
                self.push(IrInsn::Move { dst: b, src: t });
            }
            Insn::Arith(_, op) => {
                if *op == ArithOp::Neg {
                    let (src, wide) = self.pop_value(shape, at)?;
                    let dst = self.push_value(shape, wide);
                    self.push(IrInsn::Neg { dst, src });
                } else {
                    let (rhs, _) = self.pop_value(shape, at)?;
                    let (lhs, wide) = self.pop_value(shape, at)?;
                    let dst = self.push_value(shape, wide);
                    let bop = match op {
                        ArithOp::Add => BinOp::Add,
                        ArithOp::Sub => BinOp::Sub,
                        ArithOp::Mul => BinOp::Mul,
                        ArithOp::Div => BinOp::Div,
                        ArithOp::Rem => BinOp::Rem,
                        ArithOp::Neg => unreachable!(),
                    };
                    self.push(IrInsn::Bin {
                        op: bop,
                        dst,
                        lhs,
                        rhs,
                    });
                }
            }
            Insn::Shift(_, op) => {
                let (rhs, _) = self.pop_value(shape, at)?;
                let (lhs, wide) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, wide);
                let bop = match op {
                    ShiftOp::Shl => BinOp::Shl,
                    ShiftOp::Shr => BinOp::Shr,
                    ShiftOp::Ushr => BinOp::Ushr,
                };
                self.push(IrInsn::Bin {
                    op: bop,
                    dst,
                    lhs,
                    rhs,
                });
            }
            Insn::Logic(_, op) => {
                let (rhs, _) = self.pop_value(shape, at)?;
                let (lhs, wide) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, wide);
                let bop = match op {
                    LogicOp::And => BinOp::And,
                    LogicOp::Or => BinOp::Or,
                    LogicOp::Xor => BinOp::Xor,
                };
                self.push(IrInsn::Bin {
                    op: bop,
                    dst,
                    lhs,
                    rhs,
                });
            }
            Insn::IInc(slot, delta) => {
                // l<n> += delta, via a scratch stack register.
                let tmp = Reg::Stack(shape.len() as u16);
                self.push(IrInsn::Const {
                    dst: tmp,
                    value: IrConst::Int(*delta as i64),
                });
                self.push(IrInsn::Bin {
                    op: BinOp::Add,
                    dst: Reg::Local(*slot),
                    lhs: Reg::Local(*slot),
                    rhs: tmp,
                });
            }
            Insn::Convert(_, to) => {
                let (src, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, to.width() == 2);
                self.push(IrInsn::Convert { dst, src });
            }
            Insn::LCmp | Insn::FCmp(_) | Insn::DCmp(_) => {
                let (rhs, _) = self.pop_value(shape, at)?;
                let (lhs, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Bin {
                    op: BinOp::Cmp,
                    dst,
                    lhs,
                    rhs,
                });
            }
            Insn::If(c, t) => {
                let (lhs, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Branch {
                    cond: cond_of(*c),
                    lhs,
                    rhs: None,
                    target: *t,
                });
            }
            Insn::IfICmp(c, t) => {
                let (rhs, _) = self.pop_value(shape, at)?;
                let (lhs, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Branch {
                    cond: cond_of(*c),
                    lhs,
                    rhs: Some(rhs),
                    target: *t,
                });
            }
            Insn::IfACmp(eq, t) => {
                let (rhs, _) = self.pop_value(shape, at)?;
                let (lhs, _) = self.pop_value(shape, at)?;
                let cond = if *eq { Cond::Eq } else { Cond::Ne };
                self.push(IrInsn::Branch {
                    cond,
                    lhs,
                    rhs: Some(rhs),
                    target: *t,
                });
            }
            Insn::IfNull(t) => {
                let (lhs, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Branch {
                    cond: Cond::Eq,
                    lhs,
                    rhs: None,
                    target: *t,
                });
            }
            Insn::IfNonNull(t) => {
                let (lhs, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Branch {
                    cond: Cond::Ne,
                    lhs,
                    rhs: None,
                    target: *t,
                });
            }
            Insn::Goto(t) => self.push(IrInsn::Jump { target: *t }),
            Insn::Jsr(_) | Insn::Ret(_) => {
                return Err(CompileError::Unsupported("jsr/ret subroutines".into()));
            }
            Insn::TableSwitch {
                default,
                low,
                targets,
            } => {
                let (on, _) = self.pop_value(shape, at)?;
                let arms = targets
                    .iter()
                    .enumerate()
                    .map(|(k, t)| (low + k as i32, *t))
                    .collect();
                self.push(IrInsn::Switch {
                    on,
                    arms,
                    default: *default,
                });
            }
            Insn::LookupSwitch { default, pairs } => {
                let (on, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Switch {
                    on,
                    arms: pairs.clone(),
                    default: *default,
                });
            }
            Insn::Return(kind) => {
                let r = match kind {
                    Some(_) => Some(self.pop_value(shape, at)?.0),
                    None => None,
                };
                self.push(IrInsn::Return(r));
            }
            Insn::GetStatic(idx) => {
                let (c, n, d) = self.pool.get_member_ref(*idx)?;
                let wide = matches!(d.as_bytes().first(), Some(b'J' | b'D'));
                let what = format!("getstatic {c}.{n}");
                let dst = self.push_value(shape, wide);
                self.push(IrInsn::Mem {
                    what,
                    reads: vec![],
                    writes: Some(dst),
                });
            }
            Insn::PutStatic(idx) => {
                let (c, n, _) = self.pool.get_member_ref(*idx)?;
                let what = format!("putstatic {c}.{n}");
                let (v, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Mem {
                    what,
                    reads: vec![v],
                    writes: None,
                });
            }
            Insn::GetField(idx) => {
                let (c, n, d) = self.pool.get_member_ref(*idx)?;
                let wide = matches!(d.as_bytes().first(), Some(b'J' | b'D'));
                let what = format!("getfield {c}.{n}");
                let (obj, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, wide);
                self.push(IrInsn::Mem {
                    what,
                    reads: vec![obj],
                    writes: Some(dst),
                });
            }
            Insn::PutField(idx) => {
                let (c, n, _) = self.pool.get_member_ref(*idx)?;
                let what = format!("putfield {c}.{n}");
                let (v, _) = self.pop_value(shape, at)?;
                let (obj, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Mem {
                    what,
                    reads: vec![obj, v],
                    writes: None,
                });
            }
            Insn::InvokeVirtual(idx) | Insn::InvokeSpecial(idx) | Insn::InvokeInterface(idx) => {
                self.call(at, *idx, shape, true)?;
            }
            Insn::InvokeStatic(idx) => {
                self.call(at, *idx, shape, false)?;
            }
            Insn::New(idx) => {
                let name = self.pool.get_class_name(*idx)?;
                let what = format!("new {name}");
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Mem {
                    what,
                    reads: vec![],
                    writes: Some(dst),
                });
            }
            Insn::NewArray(k) => {
                let (len, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Mem {
                    what: format!("newarray {k:?}"),
                    reads: vec![len],
                    writes: Some(dst),
                });
            }
            Insn::ANewArray(idx) => {
                let name = self.pool.get_class_name(*idx)?.to_owned();
                let (len, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Mem {
                    what: format!("anewarray {name}"),
                    reads: vec![len],
                    writes: Some(dst),
                });
            }
            Insn::ArrayLength => {
                let (arr, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Mem {
                    what: "arraylength".into(),
                    reads: vec![arr],
                    writes: Some(dst),
                });
            }
            Insn::AThrow => {
                let (exc, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Throw(exc));
            }
            Insn::CheckCast(idx) => {
                let name = self.pool.get_class_name(*idx)?.to_owned();
                let top = Reg::Stack(shape.len() as u16 - 1);
                self.push(IrInsn::Mem {
                    what: format!("checkcast {name}"),
                    reads: vec![top],
                    writes: None,
                });
            }
            Insn::InstanceOf(idx) => {
                let name = self.pool.get_class_name(*idx)?.to_owned();
                let (obj, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Mem {
                    what: format!("instanceof {name}"),
                    reads: vec![obj],
                    writes: Some(dst),
                });
            }
            Insn::MonitorEnter | Insn::MonitorExit => {
                let (obj, _) = self.pop_value(shape, at)?;
                self.push(IrInsn::Mem {
                    what: "monitor".into(),
                    reads: vec![obj],
                    writes: None,
                });
            }
            Insn::MultiANewArray(idx, dims) => {
                let name = self.pool.get_class_name(*idx)?.to_owned();
                let lens = self.pop_n_values(shape, *dims as usize, at)?;
                let dst = self.push_value(shape, false);
                self.push(IrInsn::Mem {
                    what: format!("multianewarray {name}"),
                    reads: lens,
                    writes: Some(dst),
                });
            }
        }
        Ok(())
    }

    fn dup_form(&mut self, at: usize, insn: &Insn, shape: &mut Shape) -> Result<()> {
        // Pop the blocks, then re-push with moves mirroring the
        // interpreter's semantics. The moves write the final slot layout
        // bottom-up using a scratch area above the stack.
        let top_slots: u16 = match insn {
            Insn::DupX1 | Insn::DupX2 => 1,
            _ => 2,
        };
        let mut block = Vec::new();
        let mut slots = 0;
        while slots < top_slots {
            let (r, wide) = self.pop_value(shape, at)?;
            slots += if wide { 2 } else { 1 };
            block.push((r, wide));
        }
        let mut skipped = Vec::new();
        match insn {
            Insn::Dup2 => {}
            Insn::DupX1 | Insn::Dup2X1 => {
                skipped.push(self.pop_value(shape, at)?);
            }
            Insn::DupX2 | Insn::Dup2X2 => {
                let (r, wide) = self.pop_value(shape, at)?;
                skipped.push((r, wide));
                if !wide {
                    skipped.push(self.pop_value(shape, at)?);
                }
            }
            _ => unreachable!(),
        }
        // Stage originals into scratch registers above everything.
        let scratch_base = (shape.len()
            + block
                .iter()
                .map(|(_, w)| if *w { 2 } else { 1 })
                .sum::<usize>()
                * 2
            + skipped
                .iter()
                .map(|(_, w)| if *w { 2 } else { 1 })
                .sum::<usize>()) as u16
            + 4;
        let mut staged = Vec::new();
        for (i, (r, w)) in block.iter().chain(skipped.iter()).enumerate() {
            let s = Reg::Stack(scratch_base + i as u16 * 2);
            self.push(IrInsn::Move { dst: s, src: *r });
            staged.push((s, *w));
        }
        let (staged_block, staged_skipped) = staged.split_at(block.len());
        // Final layout bottom-up: block copy, skipped, block.
        let emit_group = |group: &[(Reg, bool)], shape: &mut Shape, this: &mut Self| {
            for (src, wide) in group.iter().rev() {
                let dst = this.push_value(shape, *wide);
                this.push(IrInsn::Move { dst, src: *src });
            }
        };
        emit_group(staged_block, shape, self);
        emit_group(staged_skipped, shape, self);
        emit_group(staged_block, shape, self);
        Ok(())
    }

    fn call(&mut self, at: usize, idx: u16, shape: &mut Shape, has_receiver: bool) -> Result<()> {
        let (c, n, d) = self.pool.get_member_ref(idx)?;
        let callee = format!("{c}.{n}:{d}");
        let desc = MethodDescriptor::parse(d)?;
        let mut args = Vec::new();
        for _ in 0..desc.params.len() {
            args.push(self.pop_value(shape, at)?.0);
        }
        if has_receiver {
            args.push(self.pop_value(shape, at)?.0);
        }
        args.reverse();
        let dst = desc
            .ret
            .as_ref()
            .map(|rt| self.push_value(shape, rt.slot_width() == 2));
        self.push(IrInsn::Call { callee, args, dst });
        Ok(())
    }
}

/// Translates a decoded method body to IR.
pub fn translate(code: &Code, pool: &ConstPool, name: &str) -> Result<IrBody> {
    let n = code.insns.len();
    // Pass 1: entry shapes by dataflow.
    let mut shapes: Vec<Option<Shape>> = vec![None; n];
    let mut work = vec![0usize];
    shapes[0] = Some(Vec::new());
    for h in &code.handlers {
        shapes[h.handler] = Some(vec![Tag::Single]);
        work.push(h.handler);
    }
    let mut probe = Xlate {
        pool,
        ops: Vec::new(),
        emit: false,
    };
    while let Some(i) = work.pop() {
        let Some(entry) = shapes[i].clone() else {
            continue;
        };
        let insn = &code.insns[i];
        let mut shape = entry;
        probe.transfer(i, insn, &mut shape)?;
        let mut succ = insn.branch_targets();
        if insn.can_fall_through() {
            succ.push(i + 1);
        }
        for s in succ {
            if s >= n {
                return Err(CompileError::BadStack {
                    at: i,
                    reason: format!("successor {s} out of range"),
                });
            }
            match &shapes[s] {
                None => {
                    shapes[s] = Some(shape.clone());
                    work.push(s);
                }
                Some(existing) => {
                    if existing != &shape {
                        return Err(CompileError::BadStack {
                            at: s,
                            reason: "stack shape mismatch at merge".into(),
                        });
                    }
                }
            }
        }
    }

    // Pass 2: emit IR, recording where each bytecode instruction begins.
    let mut xl = Xlate {
        pool,
        ops: Vec::new(),
        emit: true,
    };
    let mut ir_start = vec![usize::MAX; n + 1];
    for (i, insn) in code.insns.iter().enumerate() {
        ir_start[i] = xl.ops.len();
        let Some(entry) = shapes[i].clone() else {
            // Unreachable bytecode: skip (dead handlers etc.).
            continue;
        };
        let mut shape = entry;
        xl.transfer(i, insn, &mut shape)?;
        // A bytecode instruction that emitted nothing (nop/pop) still needs
        // an IR slot if something branches to it; pad with a structural
        // no-op move only when required later — use Jump-to-next instead:
        // simpler: allow empty and resolve targets to the next emitted op.
    }
    ir_start[n] = xl.ops.len();
    // Fix forward: a bytecode index whose translation is empty maps to the
    // next non-empty start.
    let mut resolved = ir_start.clone();
    for i in (0..n).rev() {
        if resolved[i] == usize::MAX || ir_start[i] == ir_start[i + 1] {
            resolved[i] = resolved[i + 1];
        }
    }
    let mut ops = xl.ops;
    for op in &mut ops {
        op.map_targets(|bc_target| resolved[bc_target]);
    }
    Ok(IrBody {
        insns: ops,
        name: name.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::asm::Asm;
    use dvm_bytecode::insn::ICond;

    #[test]
    fn straight_line_arithmetic() {
        let pool = ConstPool::new();
        let mut a = Asm::new(2);
        a.iload(0).iload(1).iadd().ret_val(Kind::Int);
        let code = a.finish().unwrap();
        let ir = translate(&code, &pool, "t.add:(II)I").unwrap();
        assert_eq!(ir.insns.len(), 4);
        assert!(matches!(ir.insns[2], IrInsn::Bin { op: BinOp::Add, .. }));
        assert!(matches!(ir.insns[3], IrInsn::Return(Some(_))));
    }

    #[test]
    fn loop_translates_with_correct_targets() {
        let pool = ConstPool::new();
        let mut a = Asm::new(2);
        let top = a.new_label();
        let done = a.new_label();
        a.iconst(0).istore(1);
        a.place(top);
        a.iload(1).iconst(10).if_icmp(ICond::Ge, done);
        a.iinc(1, 1).goto(top);
        a.place(done);
        a.ret();
        let code = a.finish().unwrap();
        let ir = translate(&code, &pool, "t.spin:()V").unwrap();
        // Find the backward jump and check it targets the loop head's IR
        // index (the iload after the istore).
        let jump_targets: Vec<usize> = ir
            .insns
            .iter()
            .filter_map(|op| match op {
                IrInsn::Jump { target } => Some(*target),
                _ => None,
            })
            .collect();
        assert_eq!(jump_targets.len(), 1);
        assert_eq!(jump_targets[0], 2); // const, move, [loop head]
        let branches: Vec<&IrInsn> = ir
            .insns
            .iter()
            .filter(|op| matches!(op, IrInsn::Branch { .. }))
            .collect();
        assert_eq!(branches.len(), 1);
    }

    #[test]
    fn calls_collect_arguments() {
        let mut pool = ConstPool::new();
        let m = pool.methodref("F", "f", "(IJ)D").unwrap();
        let mut a = Asm::new(4);
        a.iload(0).lload(1);
        a.invokestatic(m);
        a.raw(Insn::Pop2);
        a.ret();
        let code = a.finish().unwrap();
        let ir = translate(&code, &pool, "t.c:()V").unwrap();
        let call = ir
            .insns
            .iter()
            .find_map(|op| match op {
                IrInsn::Call { callee, args, dst } => {
                    Some((callee.clone(), args.len(), dst.is_some()))
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(call.0, "F.f:(IJ)D");
        assert_eq!(call.1, 2);
        assert!(call.2);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        // Branch target reached with different depths (unverified code).
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![
                Insn::IConst(1),
                Insn::If(ICond::Eq, 3),
                Insn::IConst(7),
                Insn::Return(None),
            ],
            handlers: vec![],
            max_locals: 0,
        };
        assert!(translate(&code, &pool, "t.bad:()V").is_err());
    }

    use dvm_bytecode::insn::Kind;
    use dvm_bytecode::Insn;
}
