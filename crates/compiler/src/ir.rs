//! The register-based intermediate representation.
//!
//! The network compiler translates stack bytecode into this IR, optimizes
//! it, and then lowers it to a client's native format. Registers are
//! named after their origin: `l<n>` for local-variable slots and `s<d>`
//! for operand-stack depths — a standard stack-to-register mapping that
//! needs no SSA construction.

use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// A local-variable slot.
    Local(u16),
    /// An operand-stack depth.
    Stack(u16),
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Local(n) => write!(f, "l{n}"),
            Reg::Stack(d) => write!(f, "s{d}"),
        }
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IrConst {
    /// Integer (int/long unified at IR level).
    Int(i64),
    /// Floating point (float/double unified).
    Float(f64),
    /// The null reference.
    Null,
    /// A string-pool reference (index into the class pool).
    Str(u16),
}

/// Binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Logical shift right.
    Ushr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Three-way compare (lcmp/fcmpX/dcmpX).
    Cmp,
}

/// Branch conditions against zero or between two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Greater or equal.
    Ge,
    /// Greater than.
    Gt,
    /// Less or equal.
    Le,
}

/// One IR instruction. `usize` targets are IR instruction indices.
#[derive(Debug, Clone, PartialEq)]
pub enum IrInsn {
    /// `dst <- constant`.
    Const {
        /// Destination register.
        dst: Reg,
        /// The constant.
        value: IrConst,
    },
    /// `dst <- src`.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst <- lhs op rhs`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst <- -src` (negation).
    Neg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst <- convert(src)` (numeric conversion; kinds erased at IR
    /// level, retained as a cost marker).
    Convert {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Conditional branch comparing `lhs` to `rhs`.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        lhs: Reg,
        /// Right operand (`None` compares with zero/null).
        rhs: Option<Reg>,
        /// Target IR index.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target IR index.
        target: usize,
    },
    /// Multi-way dispatch (from tableswitch/lookupswitch).
    Switch {
        /// Scrutinee register.
        on: Reg,
        /// `(key, target)` arms.
        arms: Vec<(i32, usize)>,
        /// Default target.
        default: usize,
    },
    /// Call a method; `args` are argument registers, `dst` receives the
    /// result.
    Call {
        /// Symbolic callee `class.name:descriptor`.
        callee: String,
        /// Argument registers (receiver first for instance calls).
        args: Vec<Reg>,
        /// Result register, if the callee returns a value.
        dst: Option<Reg>,
    },
    /// Memory access: field load/store, array element, allocation — kept
    /// symbolic (the experiments need compilation structure and cost, not
    /// executable native code).
    Mem {
        /// Operation label, e.g. `getfield Foo.x`, `newarray int`.
        what: String,
        /// Registers read.
        reads: Vec<Reg>,
        /// Register written, if any.
        writes: Option<Reg>,
    },
    /// Return, optionally with a value.
    Return(Option<Reg>),
    /// Throw the exception in the register.
    Throw(Reg),
}

impl IrInsn {
    /// Registers this instruction reads.
    pub fn reads(&self) -> Vec<Reg> {
        match self {
            IrInsn::Const { .. } => vec![],
            IrInsn::Move { src, .. } | IrInsn::Neg { src, .. } | IrInsn::Convert { src, .. } => {
                vec![*src]
            }
            IrInsn::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            IrInsn::Branch { lhs, rhs, .. } => {
                let mut v = vec![*lhs];
                if let Some(r) = rhs {
                    v.push(*r);
                }
                v
            }
            IrInsn::Jump { .. } => vec![],
            IrInsn::Switch { on, .. } => vec![*on],
            IrInsn::Call { args, .. } => args.clone(),
            IrInsn::Mem { reads, .. } => reads.clone(),
            IrInsn::Return(r) => r.iter().copied().collect(),
            IrInsn::Throw(r) => vec![*r],
        }
    }

    /// Register this instruction writes, if any.
    pub fn writes(&self) -> Option<Reg> {
        match self {
            IrInsn::Const { dst, .. }
            | IrInsn::Move { dst, .. }
            | IrInsn::Bin { dst, .. }
            | IrInsn::Neg { dst, .. }
            | IrInsn::Convert { dst, .. } => Some(*dst),
            IrInsn::Call { dst, .. } => *dst,
            IrInsn::Mem { writes, .. } => *writes,
            _ => None,
        }
    }

    /// Returns `true` for instructions with side effects beyond their
    /// destination register (calls, memory, control flow).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            IrInsn::Call { .. }
                | IrInsn::Mem { .. }
                | IrInsn::Branch { .. }
                | IrInsn::Jump { .. }
                | IrInsn::Switch { .. }
                | IrInsn::Return(_)
                | IrInsn::Throw(_)
        )
    }

    /// Explicit control-flow targets.
    pub fn targets(&self) -> Vec<usize> {
        match self {
            IrInsn::Branch { target, .. } | IrInsn::Jump { target } => vec![*target],
            IrInsn::Switch { arms, default, .. } => {
                let mut v: Vec<usize> = arms.iter().map(|(_, t)| *t).collect();
                v.push(*default);
                v
            }
            _ => vec![],
        }
    }

    /// Rewrites control-flow targets through `f`.
    pub fn map_targets(&mut self, mut f: impl FnMut(usize) -> usize) {
        match self {
            IrInsn::Branch { target, .. } | IrInsn::Jump { target } => *target = f(*target),
            IrInsn::Switch { arms, default, .. } => {
                for (_, t) in arms {
                    *t = f(*t);
                }
                *default = f(*default);
            }
            _ => {}
        }
    }

    /// Returns `true` when control can continue to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            IrInsn::Jump { .. } | IrInsn::Switch { .. } | IrInsn::Return(_) | IrInsn::Throw(_)
        )
    }
}

/// A method's IR body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IrBody {
    /// Instructions.
    pub insns: Vec<IrInsn>,
    /// Method identity `class.name:descriptor`.
    pub name: String,
}

impl IrBody {
    /// Renders the body for diagnostics.
    pub fn render(&self) -> String {
        let mut out = format!("{}:\n", self.name);
        for (i, insn) in self.insns.iter().enumerate() {
            out.push_str(&format!("{i:5}: {insn:?}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_writes_and_targets() {
        let i = IrInsn::Bin {
            op: BinOp::Add,
            dst: Reg::Stack(0),
            lhs: Reg::Local(1),
            rhs: Reg::Stack(0),
        };
        assert_eq!(i.reads(), vec![Reg::Local(1), Reg::Stack(0)]);
        assert_eq!(i.writes(), Some(Reg::Stack(0)));
        assert!(!i.has_side_effects());

        let mut b = IrInsn::Branch {
            cond: Cond::Lt,
            lhs: Reg::Stack(0),
            rhs: None,
            target: 9,
        };
        assert_eq!(b.targets(), vec![9]);
        b.map_targets(|t| t + 1);
        assert_eq!(b.targets(), vec![10]);
        assert!(b.falls_through());
        assert!(!IrInsn::Return(None).falls_through());
    }
}
