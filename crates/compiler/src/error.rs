//! Compiler error type.

use std::fmt;

use dvm_bytecode::BytecodeError;
use dvm_classfile::ClassFileError;

/// Errors raised by translation or lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Operand-stack inconsistency (code should have been verified first).
    BadStack {
        /// Bytecode instruction index.
        at: usize,
        /// Explanation.
        reason: String,
    },
    /// A construct the compiler does not translate.
    Unsupported(String),
    /// Underlying class-file error.
    ClassFile(ClassFileError),
    /// Underlying bytecode error.
    Bytecode(BytecodeError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::BadStack { at, reason } => {
                write!(f, "stack inconsistency at instruction {at}: {reason}")
            }
            CompileError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            CompileError::ClassFile(e) => write!(f, "{e}"),
            CompileError::Bytecode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ClassFileError> for CompileError {
    fn from(e: ClassFileError) -> Self {
        CompileError::ClassFile(e)
    }
}

impl From<BytecodeError> for CompileError {
    fn from(e: BytecodeError) -> Self {
        CompileError::Bytecode(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, CompileError>;
