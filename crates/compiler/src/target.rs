//! Simulated native targets.
//!
//! The DVM ran on "x86 and DEC Alpha processors" (abstract of the paper).
//! We model both as cost/size profiles: lowering estimates the encoded
//! size and per-execution cycle count of each IR instruction for the
//! requested target. The experiments need the *structure* of ahead-of-time
//! compilation — per-target images, caching, amortization — not executable
//! machine code.

use crate::ir::{IrBody, IrInsn};

/// A compilation target named during the client handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// 32-bit x86: compact variable-length encoding, fewer registers
    /// (extra spill traffic).
    X86,
    /// DEC Alpha: fixed 4-byte instructions, generous register file.
    Alpha,
}

impl Target {
    /// Parses the handshake's native-format string.
    pub fn from_format(s: &str) -> Option<Target> {
        match s {
            "x86" => Some(Target::X86),
            "alpha" => Some(Target::Alpha),
            _ => None,
        }
    }

    /// The handshake string for this target.
    pub fn format_name(&self) -> &'static str {
        match self {
            Target::X86 => "x86",
            Target::Alpha => "alpha",
        }
    }
}

/// A lowered method image.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeMethod {
    /// Method identity `class.name:descriptor`.
    pub name: String,
    /// Target it was compiled for.
    pub target: Target,
    /// Estimated encoded size in bytes.
    pub code_size: u64,
    /// Estimated cycles for one straight-line execution of the body
    /// (loop-free approximation used for speedup accounting).
    pub cycles_estimate: u64,
    /// Number of native instructions emitted.
    pub native_insns: u64,
}

/// Per-IR-instruction lowering estimate for a target:
/// `(native_insns, bytes, cycles)`.
fn lower_cost(insn: &IrInsn, target: Target) -> (u64, u64, u64) {
    let (insns, cycles) = match insn {
        IrInsn::Const { .. } => (1, 1),
        IrInsn::Move { .. } => (1, 1),
        IrInsn::Bin { .. } => (1, 1),
        IrInsn::Neg { .. } => (1, 1),
        IrInsn::Convert { .. } => (1, 2),
        IrInsn::Branch { .. } => (2, 2),
        IrInsn::Jump { .. } => (1, 1),
        IrInsn::Switch { arms, .. } => (2 + arms.len() as u64, 4),
        IrInsn::Call { args, .. } => (2 + args.len() as u64, 6),
        IrInsn::Mem { .. } => (2, 3),
        IrInsn::Return(_) => (1, 2),
        IrInsn::Throw(_) => (3, 10),
    };
    match target {
        // x86: ~3 bytes/insn, plus occasional spill traffic from the small
        // register file (+25% instructions on register-heavy ops).
        Target::X86 => {
            let spill = insns / 4;
            ((insns + spill), (insns + spill) * 3, cycles + spill)
        }
        // Alpha: 4 bytes/insn, no modeled spills.
        Target::Alpha => (insns, insns * 4, cycles),
    }
}

/// Lowers an IR body to a native image for `target`.
pub fn lower(body: &IrBody, target: Target) -> NativeMethod {
    let mut native_insns = 0;
    let mut code_size = 0;
    let mut cycles = 0;
    for insn in &body.insns {
        let (i, b, c) = lower_cost(insn, target);
        native_insns += i;
        code_size += b;
        cycles += c;
    }
    NativeMethod {
        name: body.name.clone(),
        target,
        code_size,
        cycles_estimate: cycles,
        native_insns,
    }
}

/// Interpreter dispatch overhead per bytecode instruction, used to compute
/// the estimated speedup of compiled code.
pub const INTERP_DISPATCH_CYCLES: u64 = 8;

impl NativeMethod {
    /// Estimated speedup over interpreting a body of `bytecode_insns`
    /// instructions.
    pub fn estimated_speedup(&self, bytecode_insns: u64) -> f64 {
        if self.cycles_estimate == 0 {
            return 1.0;
        }
        let interpreted = bytecode_insns * (INTERP_DISPATCH_CYCLES + 2);
        interpreted as f64 / self.cycles_estimate as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, IrConst, Reg};

    fn sample() -> IrBody {
        IrBody {
            name: "t.f:()I".into(),
            insns: vec![
                IrInsn::Const {
                    dst: Reg::Stack(0),
                    value: IrConst::Int(2),
                },
                IrInsn::Const {
                    dst: Reg::Stack(1),
                    value: IrConst::Int(3),
                },
                IrInsn::Bin {
                    op: BinOp::Add,
                    dst: Reg::Stack(0),
                    lhs: Reg::Stack(0),
                    rhs: Reg::Stack(1),
                },
                IrInsn::Return(Some(Reg::Stack(0))),
            ],
        }
    }

    #[test]
    fn targets_differ_in_encoding() {
        let x86 = lower(&sample(), Target::X86);
        let alpha = lower(&sample(), Target::Alpha);
        assert_eq!(x86.target, Target::X86);
        assert_eq!(alpha.target, Target::Alpha);
        assert_ne!(x86.code_size, alpha.code_size);
        assert!(x86.native_insns >= alpha.native_insns);
    }

    #[test]
    fn speedup_is_reported_over_interpretation() {
        let m = lower(&sample(), Target::Alpha);
        let s = m.estimated_speedup(4);
        assert!(
            s > 1.0,
            "compiled code should beat the interpreter, got {s}"
        );
    }

    #[test]
    fn format_round_trip() {
        assert_eq!(Target::from_format("x86"), Some(Target::X86));
        assert_eq!(Target::from_format("alpha"), Some(Target::Alpha));
        assert_eq!(Target::from_format("sparc"), None);
        assert_eq!(Target::X86.format_name(), "x86");
    }
}
