//! The DVM's centralized network compiler (§3.4).
//!
//! Client-side JIT compilers work under time and memory pressure and
//! "typically do not perform aggressive optimizations"; the DVM moves
//! compilation into the network, where it is performed ahead of time per
//! client native format (learned from the monitoring handshake) and
//! amortized across the organization via an image cache.
//!
//! Pipeline: decode bytecode → [`translate`] to a register IR →
//! [`opt::optimize`] (constant folding, copy propagation, dead-code
//! elimination) → [`target::lower`] to a simulated x86 or Alpha image.

pub mod error;
pub mod exec_service;
pub mod ir;
pub mod opt;
pub mod service;
pub mod target;
pub mod translate;

pub use error::{CompileError, Result};
pub use exec_service::{ExecCompiler, ExecCompilerStats, IrPackage, IR_COMPILE_CYCLES_PER_INSN};
pub use ir::{BinOp, Cond, IrBody, IrConst, IrInsn, Reg};
pub use opt::{optimize, OptStats};
pub use service::{ClassImage, CompilerStats, NetworkCompiler};
pub use target::{lower, NativeMethod, Target};
pub use translate::translate as translate_method;
