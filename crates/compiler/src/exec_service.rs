//! Proxy-side compilation service for the optimizing execution tier.
//!
//! Where [`crate::service::NetworkCompiler`] models the paper's §3.4
//! per-platform native compiler, this service feeds the *portable*
//! register-IR tier (`dvm-exec`): it parses a served class, lowers and
//! optimizes every method, and returns the wire-encoded IR package the
//! client VM installs next to the class. Results are cached per rewrite
//! signature — the MD5 the proxy already computes over the signed served
//! payload — so one compilation is amortized across every client in the
//! organization that fetches the same rewrite.

use std::collections::HashMap;
use std::sync::Arc;

use dvm_classfile::ClassFile;
use dvm_exec::{compile_class, encode, PassStats};

use crate::error::{CompileError, Result};

/// Simulated cycles charged per emitted IR instruction. The pass
/// pipeline is cheaper than full native lowering (no register allocation
/// or scheduling), so this sits well below
/// [`crate::service::COMPILE_CYCLES_PER_INSN`].
pub const IR_COMPILE_CYCLES_PER_INSN: u64 = 600;

/// A compiled IR package, ready to serve alongside its class.
#[derive(Debug, Clone)]
pub struct IrPackage {
    /// Class internal name.
    pub class: String,
    /// Rewrite signature (MD5 hex of the signed served payload) the
    /// package is keyed under.
    pub signature: String,
    /// Wire-encoded IR (`dvm_exec::encode` format).
    pub bytes: Vec<u8>,
    /// Methods lowered onto the optimizing tier.
    pub methods_compiled: usize,
    /// Methods left to the interpreter (native, abstract, or declined).
    pub methods_skipped: usize,
    /// Aggregate pass-pipeline work.
    pub passes: PassStats,
    /// Simulated cycles the compilation cost (charged to the proxy).
    pub compile_cycles: u64,
}

/// Statistics for the IR compilation service.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecCompilerStats {
    /// Signatures compiled (cache misses).
    pub compilations: u64,
    /// Requests served from the signature cache.
    pub cache_hits: u64,
    /// Total simulated compile cycles spent.
    pub cycles_spent: u64,
    /// Methods lowered across all compilations.
    pub methods_compiled: u64,
    /// Methods declined across all compilations.
    pub methods_skipped: u64,
}

/// The proxy-resident IR compiler with its per-signature cache.
#[derive(Debug, Default)]
pub struct ExecCompiler {
    cache: HashMap<String, Arc<IrPackage>>,
    /// Statistics.
    pub stats: ExecCompilerStats,
}

impl ExecCompiler {
    /// Creates an empty service.
    pub fn new() -> ExecCompiler {
        ExecCompiler::default()
    }

    /// Compiles the class in `class_bytes` under rewrite signature
    /// `signature`, serving repeats from the cache.
    pub fn compile(&mut self, signature: &str, class_bytes: &[u8]) -> Result<Arc<IrPackage>> {
        if let Some(pkg) = self.cache.get(signature) {
            self.stats.cache_hits += 1;
            return Ok(pkg.clone());
        }
        let cf = ClassFile::parse(class_bytes)?;
        let (ir, cs) = compile_class(&cf)
            .map_err(|e| CompileError::Unsupported(format!("IR lowering failed: {e}")))?;
        let ir_insns: usize = ir.methods.iter().map(|f| f.insns.len()).sum();
        let compile_cycles = ir_insns as u64 * IR_COMPILE_CYCLES_PER_INSN;
        let pkg = Arc::new(IrPackage {
            class: ir.class.clone(),
            signature: signature.to_owned(),
            bytes: encode(&ir),
            methods_compiled: cs.lowered,
            methods_skipped: cs.skipped,
            passes: cs.passes,
            compile_cycles,
        });
        self.stats.compilations += 1;
        self.stats.cycles_spent += compile_cycles;
        self.stats.methods_compiled += cs.lowered as u64;
        self.stats.methods_skipped += cs.skipped as u64;
        self.cache.insert(signature.to_owned(), pkg.clone());
        Ok(pkg)
    }

    /// Looks up a package without compiling.
    pub fn get(&self, signature: &str) -> Option<Arc<IrPackage>> {
        self.cache.get(signature).cloned()
    }

    /// Seeds the cache with a package recovered from the persistent tier
    /// (warm restart): no compile cycles are charged.
    pub fn seed(&mut self, pkg: IrPackage) {
        self.cache
            .entry(pkg.signature.clone())
            .or_insert_with(|| Arc::new(pkg));
    }

    /// Number of cached packages.
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::asm::Asm;
    use dvm_bytecode::insn::Kind;
    use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, MemberInfo};
    use dvm_exec::decode;

    fn sample_bytes() -> Vec<u8> {
        let mut cf = ClassBuilder::new("t/Calc").build();
        let mut a = Asm::new(2);
        a.iconst(2)
            .iconst(3)
            .iadd()
            .iload(0)
            .iadd()
            .ret_val(Kind::Int);
        let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("f").unwrap();
        let d = cf.pool.utf8("(I)I").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(attr)],
        });
        cf.to_bytes().unwrap()
    }

    #[test]
    fn compiles_encodes_and_caches_by_signature() {
        let mut svc = ExecCompiler::new();
        let bytes = sample_bytes();
        let pkg = svc.compile("sig-1", &bytes).unwrap();
        assert_eq!(pkg.class, "t/Calc");
        assert_eq!(pkg.methods_compiled, 1);
        assert!(pkg.compile_cycles > 0);
        assert!(pkg.passes.folded >= 1, "2+3 should fold");

        // The wire bytes round-trip into installable IR.
        let ir = decode(&pkg.bytes).unwrap();
        assert_eq!(ir.class, "t/Calc");
        assert_eq!(ir.methods.len(), 1);

        // Same signature: amortized; different signature: recompiled.
        let again = svc.compile("sig-1", &bytes).unwrap();
        assert_eq!(again.signature, "sig-1");
        assert_eq!(svc.stats.compilations, 1);
        assert_eq!(svc.stats.cache_hits, 1);
        let _ = svc.compile("sig-2", &bytes).unwrap();
        assert_eq!(svc.stats.compilations, 2);
        assert_eq!(svc.cache_size(), 2);
    }

    #[test]
    fn seeded_packages_serve_without_compiling() {
        let mut svc = ExecCompiler::new();
        let bytes = sample_bytes();
        let pkg = svc.compile("warm", &bytes).unwrap();
        let recovered = (*pkg).clone();

        let mut restarted = ExecCompiler::new();
        restarted.seed(recovered);
        assert_eq!(restarted.cache_size(), 1);
        let served = restarted.compile("warm", &bytes).unwrap();
        assert_eq!(served.bytes, pkg.bytes);
        assert_eq!(restarted.stats.compilations, 0);
        assert_eq!(restarted.stats.cache_hits, 1);
    }

    #[test]
    fn malformed_classes_error_instead_of_panicking() {
        let mut svc = ExecCompiler::new();
        assert!(svc.compile("bad", &[0xde, 0xad, 0xbe, 0xef]).is_err());
        assert_eq!(svc.cache_size(), 0);
    }
}
