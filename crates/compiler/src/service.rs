//! The centralized network compiler service.
//!
//! §3.4: "A compiler within the network can perform the translation for
//! that platform ahead of time and thus amortize its startup costs over
//! larger amounts of code. Resource investments in the compiler then
//! benefit all clients in an organization." The service compiles whole
//! classes per target, caches the images, and reports amortization
//! statistics.

use std::collections::HashMap;

use dvm_bytecode::Code;
use dvm_classfile::ClassFile;

use crate::error::Result;
use crate::opt::{optimize, OptStats};
use crate::target::{lower, NativeMethod, Target};
use crate::translate::translate;

/// A compiled class: one native image per method.
#[derive(Debug, Clone)]
pub struct ClassImage {
    /// Class internal name.
    pub class: String,
    /// Target compiled for.
    pub target: Target,
    /// Lowered methods.
    pub methods: Vec<NativeMethod>,
    /// Aggregate optimization statistics.
    pub opt_stats: OptStats,
    /// Simulated cycles the compilation itself cost (charged to the
    /// server).
    pub compile_cycles: u64,
}

impl ClassImage {
    /// Total native code size.
    pub fn total_size(&self) -> u64 {
        self.methods.iter().map(|m| m.code_size).sum()
    }
}

/// Compiler service statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompilerStats {
    /// Classes compiled (cache misses).
    pub compilations: u64,
    /// Requests served from the image cache (the amortization benefit).
    pub cache_hits: u64,
    /// Total simulated compile cycles spent.
    pub cycles_spent: u64,
}

/// Simulated compile cost per bytecode instruction (aggressive server-side
/// optimization is ~10× the cost of a client JIT's quick pass).
pub const COMPILE_CYCLES_PER_INSN: u64 = 2_000;

/// The network compiler.
#[derive(Debug, Default)]
pub struct NetworkCompiler {
    cache: HashMap<(String, Target), ClassImage>,
    /// Statistics.
    pub stats: CompilerStats,
}

impl NetworkCompiler {
    /// Creates an empty compiler service.
    pub fn new() -> NetworkCompiler {
        NetworkCompiler::default()
    }

    /// Compiles `cf` for `target`, serving repeats from the cache.
    pub fn compile(&mut self, cf: &ClassFile, target: Target) -> Result<ClassImage> {
        let class = cf.name()?.to_owned();
        if let Some(img) = self.cache.get(&(class.clone(), target)) {
            self.stats.cache_hits += 1;
            return Ok(img.clone());
        }
        let mut methods = Vec::new();
        let mut opt_total = OptStats::default();
        let mut compile_cycles = 0u64;
        for m in &cf.methods {
            let Some(attr) = m.code() else { continue };
            let mname = m.name(&cf.pool)?;
            let mdesc = m.descriptor(&cf.pool)?;
            let code = Code::decode(attr)?;
            compile_cycles += code.insns.len() as u64 * COMPILE_CYCLES_PER_INSN;
            let mut ir = translate(&code, &cf.pool, &format!("{class}.{mname}:{mdesc}"))?;
            let s = optimize(&mut ir);
            opt_total.folded += s.folded;
            opt_total.copies_propagated += s.copies_propagated;
            opt_total.dead_removed += s.dead_removed;
            methods.push(lower(&ir, target));
        }
        let img = ClassImage {
            class: class.clone(),
            target,
            methods,
            opt_stats: opt_total,
            compile_cycles,
        };
        self.stats.compilations += 1;
        self.stats.cycles_spent += compile_cycles;
        self.cache.insert((class, target), img.clone());
        Ok(img)
    }

    /// Number of cached images.
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::asm::Asm;
    use dvm_bytecode::insn::Kind;
    use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, MemberInfo};

    fn sample_class() -> ClassFile {
        let mut cf = ClassBuilder::new("t/Calc").build();
        let mut a = Asm::new(2);
        a.iconst(2)
            .iconst(3)
            .iadd()
            .iload(0)
            .iadd()
            .ret_val(Kind::Int);
        let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("f").unwrap();
        let d = cf.pool.utf8("(I)I").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(attr)],
        });
        cf
    }

    #[test]
    fn compiles_and_caches_per_target() {
        let mut nc = NetworkCompiler::new();
        let cf = sample_class();
        let img1 = nc.compile(&cf, Target::X86).unwrap();
        assert_eq!(img1.methods.len(), 1);
        assert!(img1.opt_stats.folded >= 1, "2+3 should fold");
        assert!(img1.compile_cycles > 0);

        // Second client, same target: amortized.
        let _ = nc.compile(&cf, Target::X86).unwrap();
        assert_eq!(nc.stats.compilations, 1);
        assert_eq!(nc.stats.cache_hits, 1);

        // Different target: new image.
        let img2 = nc.compile(&cf, Target::Alpha).unwrap();
        assert_eq!(nc.stats.compilations, 2);
        assert_ne!(img1.total_size(), img2.total_size());
        assert_eq!(nc.cache_size(), 2);
    }
}
