//! IR optimizations: constant folding, copy propagation, and dead-code
//! elimination.
//!
//! The paper's motivation (§3.4): client-side JIT compilers cannot afford
//! aggressive optimization, but a centralized compiler amortizes its cost
//! across the whole organization. These passes are deliberately performed
//! at the *server*.

use std::collections::HashMap;

use crate::ir::{BinOp, IrBody, IrConst, IrInsn, Reg};

/// Statistics from an optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Binary operations folded to constants.
    pub folded: u64,
    /// Moves bypassed by copy propagation.
    pub copies_propagated: u64,
    /// Dead instructions removed.
    pub dead_removed: u64,
}

/// Runs the full pipeline to a fixpoint (bounded).
pub fn optimize(body: &mut IrBody) -> OptStats {
    let mut total = OptStats::default();
    for _ in 0..8 {
        let s1 = fold_constants(body);
        let s2 = propagate_copies(body);
        let s3 = eliminate_dead(body);
        total.folded += s1.folded;
        total.copies_propagated += s2.copies_propagated;
        total.dead_removed += s3.dead_removed;
        if s1.folded + s2.copies_propagated + s3.dead_removed == 0 {
            break;
        }
    }
    total
}

/// Block-local constant folding: `Bin` of two known constants becomes a
/// `Const`.
pub fn fold_constants(body: &mut IrBody) -> OptStats {
    let mut stats = OptStats::default();
    let leaders = block_leaders(body);
    let mut known: HashMap<Reg, IrConst> = HashMap::new();
    for i in 0..body.insns.len() {
        if leaders.contains(&i) {
            known.clear();
        }
        let replacement = match &body.insns[i] {
            IrInsn::Bin { op, dst, lhs, rhs } => match (known.get(lhs), known.get(rhs)) {
                (Some(IrConst::Int(a)), Some(IrConst::Int(b))) => {
                    fold_int(*op, *a, *b).map(|v| IrInsn::Const {
                        dst: *dst,
                        value: IrConst::Int(v),
                    })
                }
                _ => None,
            },
            IrInsn::Neg { dst, src } => match known.get(src) {
                Some(IrConst::Int(v)) => Some(IrInsn::Const {
                    dst: *dst,
                    value: IrConst::Int(v.wrapping_neg()),
                }),
                _ => None,
            },
            _ => None,
        };
        if let Some(r) = replacement {
            body.insns[i] = r;
            stats.folded += 1;
        }
        // Update the known-constants map.
        match &body.insns[i] {
            IrInsn::Const { dst, value } => {
                known.insert(*dst, *value);
            }
            other => {
                if let Some(w) = other.writes() {
                    known.remove(&w);
                }
            }
        }
    }
    stats
}

fn fold_int(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None; // must trap at run time
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::Ushr => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Cmp => (a.cmp(&b) as i8) as i64,
    })
}

/// Block-local copy propagation: uses of `dst` after `Move{dst, src}` read
/// `src` directly while neither is overwritten.
pub fn propagate_copies(body: &mut IrBody) -> OptStats {
    let mut stats = OptStats::default();
    let leaders = block_leaders(body);
    let mut copy_of: HashMap<Reg, Reg> = HashMap::new();
    for i in 0..body.insns.len() {
        if leaders.contains(&i) {
            copy_of.clear();
        }
        // Rewrite reads.
        let mut rewritten = false;
        let insn = &mut body.insns[i];
        rewrite_reads(insn, |r| {
            if let Some(&src) = copy_of.get(&r) {
                rewritten = true;
                src
            } else {
                r
            }
        });
        if rewritten {
            stats.copies_propagated += 1;
        }
        // Update the copy map.
        match &body.insns[i] {
            IrInsn::Move { dst, src } if dst != src => {
                // Invalidate mappings through dst, then record.
                copy_of.retain(|_, v| v != dst);
                copy_of.remove(dst);
                copy_of.insert(*dst, *src);
            }
            other => {
                if let Some(w) = other.writes() {
                    copy_of.retain(|_, v| *v != w);
                    copy_of.remove(&w);
                }
            }
        }
    }
    stats
}

fn rewrite_reads(insn: &mut IrInsn, mut f: impl FnMut(Reg) -> Reg) {
    match insn {
        IrInsn::Move { src, .. } | IrInsn::Neg { src, .. } | IrInsn::Convert { src, .. } => {
            *src = f(*src);
        }
        IrInsn::Bin { lhs, rhs, .. } => {
            *lhs = f(*lhs);
            *rhs = f(*rhs);
        }
        IrInsn::Branch { lhs, rhs, .. } => {
            *lhs = f(*lhs);
            if let Some(r) = rhs {
                *r = f(*r);
            }
        }
        IrInsn::Switch { on, .. } => *on = f(*on),
        IrInsn::Call { args, .. } => {
            for a in args {
                *a = f(*a);
            }
        }
        IrInsn::Mem { reads, .. } => {
            for r in reads {
                *r = f(*r);
            }
        }
        IrInsn::Return(Some(r)) | IrInsn::Throw(r) => *r = f(*r),
        _ => {}
    }
}

/// Removes side-effect-free instructions whose destination is never read
/// before being overwritten (a simple liveness sweep over stack registers).
pub fn eliminate_dead(body: &mut IrBody) -> OptStats {
    let mut stats = OptStats::default();
    // Conservative global liveness: a register is live if *any* later (or
    // branch-reachable) instruction reads it. We approximate with a
    // whole-body read set, which is sound (never removes a read value) and
    // effective for fold/propagation residue.
    let mut read_anywhere: HashMap<Reg, u64> = HashMap::new();
    for insn in &body.insns {
        for r in insn.reads() {
            *read_anywhere.entry(r).or_insert(0) += 1;
        }
    }
    let before = body.insns.len();
    let mut kept = Vec::with_capacity(before);
    let mut index_map = vec![0usize; before + 1];
    for (i, insn) in body.insns.iter().enumerate() {
        index_map[i] = kept.len();
        let removable = !insn.has_side_effects()
            && insn
                .writes()
                .map(|w| !read_anywhere.contains_key(&w))
                .unwrap_or(false);
        if removable {
            stats.dead_removed += 1;
        } else {
            kept.push(insn.clone());
        }
    }
    index_map[before] = kept.len();
    for insn in &mut kept {
        insn.map_targets(|t| index_map[t.min(before)]);
    }
    body.insns = kept;
    stats
}

/// Instruction indices that start a basic block (branch targets and
/// fall-ins after terminators).
fn block_leaders(body: &IrBody) -> std::collections::HashSet<usize> {
    let mut leaders = std::collections::HashSet::new();
    leaders.insert(0);
    for (i, insn) in body.insns.iter().enumerate() {
        for t in insn.targets() {
            leaders.insert(t);
        }
        if !insn.falls_through() || !insn.targets().is_empty() {
            leaders.insert(i + 1);
        }
    }
    leaders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Cond;

    fn body(insns: Vec<IrInsn>) -> IrBody {
        IrBody {
            insns,
            name: "t".into(),
        }
    }

    #[test]
    fn folds_constant_addition() {
        let mut b = body(vec![
            IrInsn::Const {
                dst: Reg::Stack(0),
                value: IrConst::Int(2),
            },
            IrInsn::Const {
                dst: Reg::Stack(1),
                value: IrConst::Int(3),
            },
            IrInsn::Bin {
                op: BinOp::Add,
                dst: Reg::Stack(0),
                lhs: Reg::Stack(0),
                rhs: Reg::Stack(1),
            },
            IrInsn::Return(Some(Reg::Stack(0))),
        ]);
        let stats = optimize(&mut b);
        assert_eq!(stats.folded, 1);
        assert!(b.insns.iter().any(|i| matches!(
            i,
            IrInsn::Const {
                value: IrConst::Int(5),
                ..
            }
        )));
        // The dead source constant is swept.
        assert!(stats.dead_removed >= 1);
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let mut b = body(vec![
            IrInsn::Const {
                dst: Reg::Stack(0),
                value: IrConst::Int(1),
            },
            IrInsn::Const {
                dst: Reg::Stack(1),
                value: IrConst::Int(0),
            },
            IrInsn::Bin {
                op: BinOp::Div,
                dst: Reg::Stack(0),
                lhs: Reg::Stack(0),
                rhs: Reg::Stack(1),
            },
            IrInsn::Return(Some(Reg::Stack(0))),
        ]);
        let stats = fold_constants(&mut b);
        assert_eq!(stats.folded, 0);
    }

    #[test]
    fn copy_propagation_bypasses_moves() {
        let mut b = body(vec![
            IrInsn::Move {
                dst: Reg::Stack(0),
                src: Reg::Local(1),
            },
            IrInsn::Bin {
                op: BinOp::Add,
                dst: Reg::Stack(0),
                lhs: Reg::Stack(0),
                rhs: Reg::Stack(0),
            },
            IrInsn::Return(Some(Reg::Stack(0))),
        ]);
        let stats = propagate_copies(&mut b);
        assert_eq!(stats.copies_propagated, 1);
        match &b.insns[1] {
            IrInsn::Bin { lhs, rhs, .. } => {
                assert_eq!(*lhs, Reg::Local(1));
                assert_eq!(*rhs, Reg::Local(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn folding_stops_at_block_boundaries() {
        // The constant in block 0 must not fold into block 1 (reached from
        // elsewhere too).
        let mut b = body(vec![
            IrInsn::Const {
                dst: Reg::Stack(0),
                value: IrConst::Int(2),
            },
            IrInsn::Branch {
                cond: Cond::Eq,
                lhs: Reg::Local(0),
                rhs: None,
                target: 3,
            },
            IrInsn::Const {
                dst: Reg::Stack(0),
                value: IrConst::Int(9),
            },
            IrInsn::Const {
                dst: Reg::Stack(1),
                value: IrConst::Int(1),
            },
            IrInsn::Bin {
                op: BinOp::Add,
                dst: Reg::Stack(0),
                lhs: Reg::Stack(0),
                rhs: Reg::Stack(1),
            },
            IrInsn::Return(Some(Reg::Stack(0))),
        ]);
        let stats = fold_constants(&mut b);
        // s0 is not a known constant at index 4 (merge point at 3).
        assert_eq!(stats.folded, 0);
    }

    #[test]
    fn dead_code_removal_fixes_targets() {
        let mut b = body(vec![
            IrInsn::Const {
                dst: Reg::Stack(5),
                value: IrConst::Int(1),
            }, // dead
            IrInsn::Jump { target: 2 },
            IrInsn::Return(None),
        ]);
        let stats = eliminate_dead(&mut b);
        assert_eq!(stats.dead_removed, 1);
        assert_eq!(b.insns.len(), 2);
        assert_eq!(b.insns[0], IrInsn::Jump { target: 1 });
    }
}
