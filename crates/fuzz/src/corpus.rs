//! The shared `.hex` corpus format.
//!
//! Every hostile-input corpus in the repository (`tests/corpus/`,
//! `tests/corpus/store/`, `tests/corpus/exec/`, `tests/corpus/classfile/`)
//! uses one file shape, and this module is its single implementation —
//! the property tests replay through it and the fuzzer seeds from and
//! writes findings through it:
//!
//! ```text
//! # free-form comment lines describing the entry
//! # expect: reject                  ← store-style annotation
//! 00 00 00 0E   # inline comments after hex are fine
//! 06 00 00
//! ```
//!
//! `#` starts a comment to end of line; everything else must be hex
//! digits (whitespace ignored, case-insensitive). Annotations are
//! comment lines of the form `# expect…: value` — e.g. `# expect:
//! reject`, `# expect-live: 3` — and carry the entry's machine-checked
//! expectation so a loader does not need per-directory parsing code.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One corpus entry: its file name, raw text, decoded bytes, and
/// parsed annotations.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File name, e.g. `hello-bad-utf8.hex`.
    pub name: String,
    /// Absolute path the entry was loaded from.
    pub path: PathBuf,
    /// Decoded payload bytes.
    pub bytes: Vec<u8>,
    /// `(key, value)` pairs from `# key: value` annotation lines.
    pub annotations: Vec<(String, String)>,
}

impl CorpusEntry {
    /// Looks up an annotation by key (`expect`, `expect-live`, …).
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Decodes the hex payload of one corpus file: `#` comments stripped,
/// whitespace ignored. Errors on non-hex characters or an odd digit
/// count.
pub fn parse_hex(text: &str) -> Result<Vec<u8>, String> {
    let mut nibbles: Vec<u8> = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("");
        for c in line.chars() {
            if c.is_whitespace() {
                continue;
            }
            let d = c
                .to_digit(16)
                .ok_or_else(|| format!("non-hex character {c:?}"))?;
            nibbles.push(d as u8);
        }
    }
    if !nibbles.len().is_multiple_of(2) {
        return Err(format!("odd number of hex digits ({})", nibbles.len()));
    }
    Ok(nibbles.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

/// Extracts `# key: value` annotation lines. Only comment lines whose
/// key starts with `expect` are annotations; ordinary prose comments
/// (which may well contain colons) are left alone.
pub fn parse_annotations(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(comment) = line.trim().strip_prefix('#') else {
            continue;
        };
        let Some((key, value)) = comment.split_once(':') else {
            continue;
        };
        let key = key.trim();
        if key.starts_with("expect") && !key.contains(' ') {
            out.push((key.to_owned(), value.trim().to_owned()));
        }
    }
    out
}

/// Loads every `*.hex` entry in `dir`, sorted by file name. Panics on
/// unreadable files or malformed hex — a corrupt corpus is a repo bug,
/// not an input condition.
pub fn load_dir(dir: impl AsRef<Path>) -> Vec<CorpusEntry> {
    let dir = dir.as_ref();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "hex"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("corpus entry {name}: {e}"));
            let bytes = parse_hex(&text).unwrap_or_else(|e| panic!("corpus entry {name}: {e}"));
            let annotations = parse_annotations(&text);
            CorpusEntry {
                name,
                path,
                bytes,
                annotations,
            }
        })
        .collect()
}

/// Formats `bytes` as a 16-per-line hex dump.
pub fn format_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 3 + 8);
    for row in bytes.chunks(16) {
        let mut line = String::with_capacity(48);
        for b in row {
            let _ = write!(line, "{b:02X} ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Renders one complete corpus entry: note lines as comments, then
/// annotations, then the hex dump. `note` may span multiple lines.
pub fn render_entry(note: &str, annotations: &[(&str, &str)], bytes: &[u8]) -> String {
    let mut out = String::new();
    for line in note.lines() {
        if line.is_empty() {
            out.push_str("#\n");
        } else {
            let _ = writeln!(out, "# {line}");
        }
    }
    for (k, v) in annotations {
        let _ = writeln!(out, "# {k}: {v}");
    }
    out.push_str(&format_hex(bytes));
    out
}

/// Writes a corpus entry to `dir/name` (creating `dir` if needed).
pub fn write_entry(
    dir: impl AsRef<Path>,
    name: &str,
    note: &str,
    annotations: &[(&str, &str)],
    bytes: &[u8],
) -> PathBuf {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()));
    let path = dir.join(name);
    std::fs::write(&path, render_entry(note, annotations, bytes))
        .unwrap_or_else(|e| panic!("corpus entry {name}: {e}"));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_through_render_and_parse() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        let text = render_entry(
            "all byte values\nsecond line",
            &[("expect", "reject"), ("expect-live", "3")],
            &bytes,
        );
        assert_eq!(parse_hex(&text).unwrap(), bytes);
        let notes = parse_annotations(&text);
        assert_eq!(
            notes,
            vec![
                ("expect".to_owned(), "reject".to_owned()),
                ("expect-live".to_owned(), "3".to_owned()),
            ]
        );
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let text = "# note: this prose colon is not an annotation\n00 01\n  0A0b # tail\n";
        assert_eq!(parse_hex(text).unwrap(), vec![0x00, 0x01, 0x0A, 0x0B]);
        assert!(parse_annotations(text).is_empty());
    }

    #[test]
    fn bad_hex_is_an_error_not_a_panic() {
        assert!(parse_hex("0x zz").is_err());
        assert!(parse_hex("ABC").is_err());
    }

    #[test]
    fn write_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("dvm-fuzz-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_entry(
            &dir,
            "b-second.hex",
            "note",
            &[("expect", "reject")],
            &[1, 2],
        );
        write_entry(&dir, "a-first.hex", "note", &[], &[3]);
        let entries = load_dir(&dir);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a-first.hex");
        assert_eq!(entries[0].bytes, vec![3]);
        assert_eq!(entries[1].annotation("expect"), Some("reject"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
