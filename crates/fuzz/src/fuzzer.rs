//! The coverage-guided driver.
//!
//! One [`Fuzzer`] owns one target's search state: the live corpus, the
//! set of coverage features ever seen, the unique crashes found so
//! far, and the deterministic RNG stream. Each iteration picks a
//! corpus entry, mutates it, runs the target under `catch_unwind`, and
//! then either
//!
//! * **admits** the input to the corpus (it produced a coverage
//!   feature never seen before),
//! * **records a crash** (the target panicked — deduplicated by the
//!   coverage signature of the crashing execution, then minimized by
//!   chunk-deletion and truncation while the panic persists), or
//! * discards it.
//!
//! Every crash is replayable from its `FUZZ REPLAY:` line, which
//! carries the exact input bytes in hex — no corpus state needed.

use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::cov;
use crate::mutate::Mutator;
use crate::rng::FuzzRng;

/// Tuning knobs for one fuzzing session.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; the whole session is a pure function of it.
    pub seed: u64,
    /// Upper bound on mutated input length.
    pub max_len: usize,
    /// Stop collecting new unique crashes past this many.
    pub max_crashes: usize,
    /// Execution budget for minimizing each crash input.
    pub minimize_budget: u32,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0xD7F0_55ED,
            max_len: 4096,
            max_crashes: 16,
            minimize_budget: 2000,
        }
    }
}

/// One unique crash finding.
#[derive(Debug, Clone)]
pub struct Crash {
    /// The minimized reproducer.
    pub input: Vec<u8>,
    /// The original mutated input that first hit the crash.
    pub original: Vec<u8>,
    /// The panic payload, when it was a string.
    pub message: String,
    /// Coverage signature of the crashing execution (dedup key).
    pub signature: u64,
}

impl Crash {
    /// The replay line printed for every finding: paste the hex back
    /// through `repro_fuzz --target <t> --replay <hex>` to reproduce.
    pub fn replay_line(&self, target: &str) -> String {
        format!(
            "FUZZ REPLAY: target={target} sig={:016x} input={}",
            self.signature,
            compact_hex(&self.input)
        )
    }
}

/// Outcome of one [`Fuzzer::run`] session.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Target executions performed (including seeding and
    /// minimization).
    pub execs: u64,
    /// Wall-clock spent inside [`Fuzzer::run`].
    pub elapsed: Duration,
    /// Coverage features contributed by the seed corpus alone.
    pub seed_features: usize,
    /// Total features seen by the end of the session.
    pub total_features: usize,
    /// Distinct probe edges seen by the end of the session.
    pub total_edges: usize,
    /// Live corpus size after admission.
    pub corpus_len: usize,
    /// Unique crashes found (deduplicated, minimized).
    pub crashes: Vec<Crash>,
}

impl FuzzReport {
    /// Features discovered beyond the seed corpus.
    pub fn new_features(&self) -> usize {
        self.total_features - self.seed_features
    }

    /// Executions per second over the session.
    pub fn execs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.execs as f64 / secs
        } else {
            0.0
        }
    }
}

/// The per-target driver. See the module docs for the loop shape.
pub struct Fuzzer {
    cfg: FuzzConfig,
    rng: FuzzRng,
    mutator: Mutator,
    corpus: Vec<Vec<u8>>,
    seen: HashSet<u32>,
    seed_features: usize,
    crashes: Vec<Crash>,
    crash_sigs: HashSet<u64>,
    execs: u64,
    scratch: Vec<u32>,
}

/// What one execution of the target did.
struct ExecOutcome {
    /// Panic message when the target panicked.
    panicked: Option<String>,
    /// Coverage features of this execution (empty when probes are
    /// compiled out).
    features: Vec<u32>,
    /// Whether any feature was new to the session.
    novel: bool,
}

impl Fuzzer {
    /// Creates a driver with the given config and mutation engine.
    /// Clears the whole coverage map: stale counts from earlier
    /// sessions would otherwise mask their edges from this one. One
    /// driver at a time owns the global map — run targets
    /// sequentially, on the driver's thread.
    pub fn new(cfg: FuzzConfig, mutator: Mutator) -> Fuzzer {
        cov::reset_all();
        let rng = FuzzRng::new(cfg.seed);
        Fuzzer {
            cfg,
            rng,
            mutator,
            corpus: Vec::new(),
            seen: HashSet::new(),
            seed_features: 0,
            crashes: Vec::new(),
            crash_sigs: HashSet::new(),
            execs: 0,
            scratch: Vec::new(),
        }
    }

    /// The live corpus (seeds plus admitted mutants).
    pub fn corpus(&self) -> &[Vec<u8>] {
        &self.corpus
    }

    /// Unique crashes found so far.
    pub fn crashes(&self) -> &[Crash] {
        &self.crashes
    }

    /// Runs `target` once on `input`, recording coverage and catching
    /// panics. The caller-installed silent panic hook (see
    /// [`Fuzzer::run`]) keeps expected panics quiet.
    fn execute(&mut self, target: &mut dyn FnMut(&[u8]), input: &[u8]) -> ExecOutcome {
        self.execs += 1;
        cov::reset();
        let result = panic::catch_unwind(AssertUnwindSafe(|| target(input)));
        cov::collect_features(&mut self.scratch);
        let novel = self.scratch.iter().any(|f| !self.seen.contains(f));
        let panicked = match result {
            Ok(()) => None,
            Err(payload) => Some(panic_message(payload)),
        };
        ExecOutcome {
            panicked,
            features: self.scratch.clone(),
            novel,
        }
    }

    fn absorb_features(&mut self, features: &[u32]) {
        for &f in features {
            self.seen.insert(f);
        }
    }

    /// Seeds the corpus with one initial input: executes it, unions its
    /// coverage, and always keeps it (seeds are the trusted starting
    /// population even when they add no distinct feature). A seed that
    /// panics is recorded as a crash, exactly like a found input.
    pub fn add_seed(&mut self, target: &mut dyn FnMut(&[u8]), bytes: Vec<u8>) {
        let outcome = self.execute(target, &bytes);
        let features = outcome.features.clone();
        self.absorb_features(&features);
        if let Some(message) = outcome.panicked {
            self.record_crash(target, bytes.clone(), message, &features);
        }
        self.corpus.push(bytes);
        self.seed_features = self.seen.len();
    }

    /// The main loop: `iters` mutate-execute-triage rounds. Installs a
    /// silent panic hook for the duration (expected panics are data,
    /// not console noise) and restores the previous hook before
    /// returning.
    pub fn run(&mut self, target: &mut dyn FnMut(&[u8]), iters: u64) -> FuzzReport {
        let started = Instant::now();
        let prev_hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));

        for _ in 0..iters {
            let mut input = if self.corpus.is_empty() {
                Vec::new()
            } else if self.corpus.len() > 4 && self.rng.one_in(2) {
                // Recency bias: the newest admissions are the frontier
                // of the search, so mutate them half the time.
                let tail = self.corpus.len() - 1 - self.rng.below(4);
                self.corpus[tail].clone()
            } else {
                self.corpus[self.rng.below(self.corpus.len())].clone()
            };
            let max_len = self.cfg.max_len;
            // Split the corpus borrow from the rng borrow via a local
            // clone-free pick: mutate draws splice partners directly.
            let m = std::mem::take(&mut self.mutator);
            m.mutate(&mut self.rng, &mut input, &self.corpus, max_len);
            self.mutator = m;

            let outcome = self.execute(target, &input);
            let features = outcome.features.clone();
            match outcome.panicked {
                Some(message) => {
                    self.absorb_features(&features);
                    if self.crashes.len() < self.cfg.max_crashes {
                        self.record_crash(target, input, message, &features);
                    }
                }
                None => {
                    if outcome.novel {
                        self.absorb_features(&features);
                        self.corpus.push(input);
                    }
                }
            }
        }

        panic::set_hook(prev_hook);
        self.report(started.elapsed())
    }

    fn report(&self, elapsed: Duration) -> FuzzReport {
        FuzzReport {
            execs: self.execs,
            elapsed,
            seed_features: self.seed_features,
            total_features: self.seen.len(),
            total_edges: self
                .seen
                .iter()
                .map(|f| f / 8)
                .collect::<HashSet<u32>>()
                .len(),
            corpus_len: self.corpus.len(),
            crashes: self.crashes.clone(),
        }
    }

    /// Deduplicates by coverage signature, minimizes, and stores one
    /// crash. With probes compiled out the signature degrades to a hash
    /// of the panic message.
    fn record_crash(
        &mut self,
        target: &mut dyn FnMut(&[u8]),
        input: Vec<u8>,
        message: String,
        features: &[u32],
    ) {
        let signature = crash_signature(features, &message);
        if !self.crash_sigs.insert(signature) {
            return;
        }
        let minimized = self.minimize(target, input.clone());
        self.crashes.push(Crash {
            input: minimized,
            original: input,
            message,
            signature,
        });
    }

    /// Shrinks a crashing input: repeated chunk deletions (halving
    /// chunk sizes), then tail truncation, then byte simplification,
    /// keeping any candidate that still panics. Bounded by
    /// `minimize_budget` executions.
    fn minimize(&mut self, target: &mut dyn FnMut(&[u8]), mut input: Vec<u8>) -> Vec<u8> {
        let mut budget = self.cfg.minimize_budget;
        let mut crashes_with = |this: &mut Self, candidate: &[u8], budget: &mut u32| -> bool {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            this.execute(target, candidate).panicked.is_some()
        };

        // Chunk deletion, coarse to fine.
        let mut chunk = (input.len() / 2).max(1);
        while chunk >= 1 && budget > 0 {
            let mut at = 0;
            while at < input.len() && budget > 0 {
                let end = (at + chunk).min(input.len());
                let mut candidate = input.clone();
                candidate.drain(at..end);
                if crashes_with(self, &candidate, &mut budget) {
                    input = candidate;
                } else {
                    at = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Byte simplification: prefer zeros (readable corpus entries).
        let mut i = 0;
        while i < input.len() && budget > 0 {
            if input[i] != 0 {
                let mut candidate = input.clone();
                candidate[i] = 0;
                if crashes_with(self, &candidate, &mut budget) {
                    input = candidate;
                }
            }
            i += 1;
        }
        input
    }

    /// Corpus minimization: re-runs entries smallest-first and keeps
    /// only those that contribute a feature not covered by an earlier
    /// kept entry. A no-op (keeps everything) when probes are compiled
    /// out, since without coverage every entry looks redundant.
    pub fn minimize_corpus(&mut self, target: &mut dyn FnMut(&[u8])) {
        if !cov::enabled() {
            return;
        }
        let mut entries = std::mem::take(&mut self.corpus);
        entries.sort_by_key(|e| e.len());
        let mut kept: Vec<Vec<u8>> = Vec::new();
        let mut covered: HashSet<u32> = HashSet::new();
        let prev_hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        for entry in entries {
            let outcome = self.execute(target, &entry);
            if outcome.panicked.is_some() {
                continue;
            }
            if kept.is_empty() || outcome.features.iter().any(|f| !covered.contains(f)) {
                covered.extend(outcome.features.iter().copied());
                kept.push(entry);
            }
        }
        panic::set_hook(prev_hook);
        self.corpus = kept;
    }
}

/// FNV-1a over the sorted feature set (and the message, which is all
/// we have when probes are off): the crash dedup key.
fn crash_signature(features: &[u32], message: &str) -> u64 {
    let mut sorted: Vec<u32> = features.to_vec();
    sorted.sort_unstable();
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |b: u8| {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for f in &sorted {
        for b in f.to_le_bytes() {
            eat(b);
        }
    }
    if sorted.is_empty() {
        for b in message.bytes() {
            eat(b);
        }
    }
    hash
}

/// Extracts a printable message from a panic payload. Takes the boxed
/// payload by value: `&Box<dyn Any>` would itself coerce to `&dyn Any`
/// with the *box* as the concrete type and every downcast would miss.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<&str>() {
        Ok(s) => (*s).to_owned(),
        Err(other) => match other.downcast::<String>() {
            Ok(s) => *s,
            Err(_) => "<non-string panic payload>".to_owned(),
        },
    }
}

/// One-line hex (no spaces) for replay lines.
pub fn compact_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Parses a compact replay hex string back to bytes.
pub fn parse_compact_hex(text: &str) -> Result<Vec<u8>, String> {
    crate::corpus::parse_hex(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy parser with a staged bug: panics on inputs starting
    /// "BUG!". Probes (when compiled in) give the search a gradient.
    fn toy(data: &[u8]) {
        crate::cov!("toy.enter");
        if data.first() == Some(&b'B') {
            crate::cov!("toy.b");
            if data.get(1) == Some(&b'U') {
                crate::cov!("toy.u");
                if data.get(2) == Some(&b'G') {
                    crate::cov!("toy.g");
                    if data.get(3) == Some(&b'!') {
                        panic!("toy bug reached");
                    }
                }
            }
        }
    }

    fn config(seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            max_len: 64,
            max_crashes: 4,
            minimize_budget: 800,
        }
    }

    #[test]
    fn finds_a_dictionary_guarded_bug_and_minimizes_it() {
        let _guard = crate::cov::test_lock();
        // The dictionary carries the magic token, so the bug is
        // findable with or without compiled-in probes.
        let mutator = Mutator::new(vec![b"BUG!".to_vec()]);
        let mut fuzzer = Fuzzer::new(config(0xFEED), mutator);
        let mut target = toy;
        fuzzer.add_seed(&mut target, b"hello world".to_vec());
        let report = fuzzer.run(&mut target, 30_000);
        assert!(
            !report.crashes.is_empty(),
            "the dictionary should steer onto BUG! within the budget"
        );
        let crash = &report.crashes[0];
        assert!(crash.input.starts_with(b"BUG!"));
        assert!(
            crash.input.len() <= 8,
            "minimization should shrink to (nearly) the 4-byte trigger, got {} bytes",
            crash.input.len()
        );
        assert_eq!(crash.message, "toy bug reached");
        assert!(crash
            .replay_line("toy")
            .starts_with("FUZZ REPLAY: target=toy"));
    }

    #[test]
    #[cfg_attr(not(feature = "probes"), ignore = "needs --features probes")]
    fn coverage_guides_the_search_without_a_dictionary() {
        let _guard = crate::cov::test_lock();
        // No dictionary: only the edge gradient B → BU → BUG → BUG!
        // makes this reachable in a small budget.
        let mutator = Mutator::new(vec![]);
        let mut cfg = config(0xC0FFEE);
        cfg.max_len = 16;
        let mut fuzzer = Fuzzer::new(cfg, mutator);
        let mut target = toy;
        fuzzer.add_seed(&mut target, b"A".to_vec());
        let report = fuzzer.run(&mut target, 300_000);
        assert!(
            !report.crashes.is_empty(),
            "edge coverage should walk the prefix ladder to the bug"
        );
        assert!(report.new_features() > 0);
        assert!(report.corpus_len > 1, "intermediate prefixes get admitted");
    }

    #[test]
    fn same_seed_reproduces_the_same_session() {
        let _guard = crate::cov::test_lock();
        let run = |seed| {
            let mut fuzzer = Fuzzer::new(config(seed), Mutator::new(vec![b"BUG!".to_vec()]));
            let mut target = toy;
            fuzzer.add_seed(&mut target, b"seed".to_vec());
            let report = fuzzer.run(&mut target, 5_000);
            (
                report.execs,
                report.corpus_len,
                report.crashes.len(),
                report.crashes.first().map(|c| c.input.clone()),
            )
        };
        assert_eq!(run(123), run(123));
    }

    #[test]
    #[cfg_attr(not(feature = "probes"), ignore = "needs --features probes")]
    fn corpus_minimization_keeps_coverage() {
        let _guard = crate::cov::test_lock();
        let mutator = Mutator::new(vec![]);
        let mut fuzzer = Fuzzer::new(config(5), mutator);
        let mut target = toy;
        for seed in [&b"A"[..], b"B", b"BU", b"BUG", b"xyzzy", b"BU__"] {
            fuzzer.add_seed(&mut target, seed.to_vec());
        }
        let before_edges = {
            let report = fuzzer.report(Duration::ZERO);
            report.total_edges
        };
        fuzzer.minimize_corpus(&mut target);
        assert!(fuzzer.corpus().len() <= 6);
        // Re-run every kept entry: the union must still cover the same
        // edges the seeds did.
        cov::reset();
        let mut all = HashSet::new();
        for entry in fuzzer.corpus().to_vec() {
            cov::reset();
            toy(&entry);
            let mut f = Vec::new();
            cov::collect_features(&mut f);
            all.extend(f.into_iter().map(|x| x / 8));
        }
        assert!(all.len() >= before_edges.min(4) - 1);
    }

    #[test]
    fn crash_signatures_dedupe() {
        let a = crash_signature(&[1, 2, 3], "m");
        let b = crash_signature(&[3, 2, 1], "m");
        assert_eq!(a, b, "order-insensitive");
        assert_ne!(a, crash_signature(&[1, 2], "m"));
        assert_ne!(
            crash_signature(&[], "one message"),
            crash_signature(&[], "another message")
        );
    }

    #[test]
    fn compact_hex_round_trips() {
        let bytes = vec![0u8, 1, 0xAB, 0xFF];
        assert_eq!(parse_compact_hex(&compact_hex(&bytes)).unwrap(), bytes);
    }
}
