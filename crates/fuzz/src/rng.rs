//! The fuzzer's deterministic generator: SplitMix64, the same family
//! the chaos harness and the proptest shim use. Every mutation the
//! engine makes is a pure function of the master seed, which is what
//! lets a `FUZZ REPLAY:` line reproduce a finding exactly.

/// A seeded SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a stream from `seed`.
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `1/n`.
    pub fn one_in(&mut self, n: usize) -> bool {
        self.below(n) == 0
    }

    /// A random byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FuzzRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = FuzzRng::new(7);
        for n in 1..40 {
            for _ in 0..50 {
                assert!(rng.below(n) < n);
            }
        }
    }
}
