//! A from-scratch coverage-guided fuzzer in the spirit of libFuzzer,
//! built for the five untrusted-input surfaces of the DVM proxy: the
//! classfile parser, the bytecode verifier, the wire-frame decoder, the
//! DVMX exec-package decoder, and store segment recovery.
//!
//! The paper's proxy is the trust boundary of the whole system — it
//! parses and instruments code on behalf of every client — so a panic
//! in any decoder is a fleet-wide availability bug. This crate turns
//! the hand-curated hostile-bytes corpora under `tests/corpus/` into
//! the starting population of a mutation-based search guided by
//! hand-planted edge-coverage probes:
//!
//! * [`cov`] — the probe side: a [`cov!`] macro that target crates
//!   plant at decode branches, recording edges (probe-pair transitions)
//!   into a fixed global map. Feature-gated: without the `probes`
//!   feature every probe compiles to an empty inlined function.
//! * [`rng`] — a tiny deterministic SplitMix64 generator; every run is
//!   a pure function of its seed.
//! * [`mutate`] — the seeded mutation engine: bit/byte flips, chunk
//!   insert/delete/duplicate, corpus splices, length-field havoc, and
//!   dictionary tokens harvested from frame tags and magic bytes.
//! * [`corpus`] — the shared `.hex` corpus format: `#` comments,
//!   store-style `# expect…:` annotations, load/store helpers used by
//!   the fuzzer and by the property-test corpus replays alike.
//! * [`fuzzer`] — the driver: corpus admission on new coverage
//!   features, periodic corpus minimization, crash deduplication by
//!   coverage signature, and input minimization, with every finding
//!   replayable from a printed `FUZZ REPLAY:` line.
//!
//! The binary lives in `dvm-bench` (`repro_fuzz`), which owns the
//! per-target harnesses; this crate deliberately depends on nothing so
//! the probe macro can be used from every layer of the workspace.

pub mod corpus;
pub mod cov;
pub mod fuzzer;
pub mod mutate;
pub mod rng;

pub use corpus::CorpusEntry;
pub use fuzzer::{Crash, FuzzConfig, FuzzReport, Fuzzer};
pub use mutate::Mutator;
pub use rng::FuzzRng;
