//! Hand-planted edge-coverage probes.
//!
//! Target crates mark interesting control-flow points with
//! [`cov!`](crate::cov!)`("crate.site")`. Each probe id is hashed to a
//! slot at **compile time** (a `const` FNV-1a), and at runtime a hit
//! records the *edge* `prev ⊕ slot` into a fixed 64 Ki map of
//! saturating 8-bit counters — the libFuzzer trick that distinguishes
//! *paths between probes*, not just probes, so a parser that reaches
//! the same error site through a new route still counts as progress.
//!
//! Everything here is gated on the `probes` cargo feature. Without it
//! [`hit`] is an empty `#[inline(always)]` function and the planted
//! probes cost literally nothing; with it a hit is one thread-local
//! read, one XOR, and one relaxed atomic bump. The map is global and
//! shared across threads (coverage is a heuristic — racy increments
//! are acceptable), while the `prev` half of the edge pair is
//! thread-local so concurrent targets do not scramble each other's
//! transitions.

#[cfg(feature = "probes")]
use std::sync::atomic::{AtomicU8, Ordering};

/// log2 of the coverage map size.
pub const MAP_BITS: u32 = 16;

/// Number of edge slots in the coverage map.
pub const MAP_SIZE: usize = 1 << MAP_BITS;

/// Compile-time FNV-1a of a probe id, folded into the map domain.
/// `const` so every `cov!` call site bakes its slot into the binary.
pub const fn slot(id: &str) -> u16 {
    let bytes = id.as_bytes();
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    // Fold the high bits in so short ids spread over the whole map.
    ((hash >> 48) ^ (hash >> 32) ^ (hash >> 16) ^ hash) as u16
}

/// Records a hit on one planted probe. Call through the
/// [`cov!`](crate::cov!) macro, which computes the slot at compile
/// time.
#[inline(always)]
pub fn hit(slot: u16) {
    #[cfg(feature = "probes")]
    record(slot);
    #[cfg(not(feature = "probes"))]
    let _ = slot;
}

/// Whether probe recording is compiled in.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "probes")
}

/// Marks one edge-coverage probe. The id is any short stable string,
/// conventionally `crate.site`:
///
/// ```
/// dvm_fuzz::cov!("frame.decode.hello");
/// ```
///
/// Expands to a compile-time slot computation plus a call to
/// [`cov::hit`](crate::cov::hit) — an empty inlined function unless
/// `dvm-fuzz/probes` is enabled.
#[macro_export]
macro_rules! cov {
    ($id:expr) => {{
        const __COV_SLOT: u16 = $crate::cov::slot($id);
        $crate::cov::hit(__COV_SLOT);
    }};
}

#[cfg(feature = "probes")]
mod map {
    use super::*;
    use std::cell::{Cell, RefCell};

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU8 = AtomicU8::new(0);
    pub(super) static MAP: [AtomicU8; MAP_SIZE] = [ZERO; MAP_SIZE];

    thread_local! {
        pub(super) static PREV: Cell<u16> = const { Cell::new(0) };
        /// Edges this thread drove from 0 → 1 since the last reset:
        /// makes reset/collect proportional to edges *hit*, not to the
        /// map size (the driver resets once per execution, so a
        /// full-map sweep would dominate small parses).
        pub(super) static TOUCHED: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }
}

#[cfg(feature = "probes")]
#[inline]
fn record(slot: u16) {
    map::PREV.with(|prev| {
        let edge = (prev.get() ^ slot) as usize & (MAP_SIZE - 1);
        // Saturating bump; a lost race under-counts, which coverage
        // bucketing tolerates.
        let c = map::MAP[edge].load(Ordering::Relaxed);
        if c == 0 {
            map::TOUCHED.with(|t| t.borrow_mut().push(edge as u32));
        }
        if c < u8::MAX {
            map::MAP[edge].store(c + 1, Ordering::Relaxed);
        }
        // Shift so A→B and B→A land in different slots.
        prev.set(slot >> 1);
    });
}

/// Zeroes every edge this thread has touched plus its edge state, so
/// the next target execution is measured in isolation. (Coverage is
/// accounted per driver thread: a target must run on the thread that
/// resets and collects.)
pub fn reset() {
    #[cfg(feature = "probes")]
    {
        map::TOUCHED.with(|t| {
            for edge in t.borrow_mut().drain(..) {
                map::MAP[edge as usize].store(0, Ordering::Relaxed);
            }
        });
        map::PREV.with(|prev| prev.set(0));
    }
}

/// Zeroes the *entire* map, this thread's touch log, and its edge
/// state. [`reset`] only clears edges this thread touched, so counts
/// left behind by other threads (or by probes hit outside a session)
/// would stay nonzero forever and mask those edges from the touch log.
/// Call once at session start; [`Fuzzer::new`](crate::Fuzzer::new)
/// does.
pub fn reset_all() {
    #[cfg(feature = "probes")]
    {
        for c in map::MAP.iter() {
            if c.load(Ordering::Relaxed) != 0 {
                c.store(0, Ordering::Relaxed);
            }
        }
        map::TOUCHED.with(|t| t.borrow_mut().clear());
        map::PREV.with(|prev| prev.set(0));
    }
}

/// Number of distinct edges with at least one hit since the last
/// [`reset`]. Zero when probes are compiled out.
pub fn edges_hit() -> usize {
    #[cfg(feature = "probes")]
    {
        map::TOUCHED.with(|t| t.borrow().len())
    }
    #[cfg(not(feature = "probes"))]
    0
}

/// libFuzzer-style hit-count bucketing: collapses raw counts into 8
/// coarse classes so loops do not generate unbounded "new" features.
#[inline]
pub fn bucket(count: u8) -> u32 {
    match count {
        0 => unreachable!("bucket of a zero count"),
        1 => 0,
        2 => 1,
        3 => 2,
        4..=7 => 3,
        8..=15 => 4,
        16..=31 => 5,
        32..=127 => 6,
        _ => 7,
    }
}

/// Collects the features of the current map state into `out` (cleared
/// first): one `u32` per hit edge, `edge * 8 + bucket(count)`. The
/// driver unions these into its seen-set to decide corpus admission.
pub fn collect_features(out: &mut Vec<u32>) {
    out.clear();
    #[cfg(feature = "probes")]
    map::TOUCHED.with(|t| {
        for &edge in t.borrow().iter() {
            let count = map::MAP[edge as usize].load(Ordering::Relaxed);
            if count != 0 {
                out.push(edge * 8 + bucket(count));
            }
        }
    });
}

/// Serializes this crate's own tests: the map is one global resource,
/// so tests that record or assert coverage must not interleave.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_stable_and_spread() {
        assert_eq!(slot("frame.decode"), slot("frame.decode"));
        let ids = [
            "a",
            "b",
            "frame.hello",
            "frame.bye",
            "pool.utf8",
            "store.rec",
        ];
        let mut slots: Vec<u16> = ids.iter().map(|i| slot(i)).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), ids.len(), "tiny id set should not collide");
    }

    #[test]
    fn bucketing_is_monotone_and_coarse() {
        let mut last = 0;
        for c in 1..=255u8 {
            let b = bucket(c);
            assert!(b >= last);
            assert!(b <= 7);
            last = b;
        }
    }

    #[test]
    #[cfg_attr(not(feature = "probes"), ignore = "needs --features probes")]
    fn probes_record_edges_when_enabled() {
        let _guard = test_lock();
        reset_all();
        cov!("cov.test.a");
        cov!("cov.test.b");
        cov!("cov.test.a");
        let hits = edges_hit();
        assert!(hits >= 2, "expected at least 2 edges, saw {hits}");
        let mut features = Vec::new();
        collect_features(&mut features);
        assert_eq!(features.len(), hits);
        reset();
        assert_eq!(edges_hit(), 0);
    }

    #[test]
    fn disabled_probes_are_inert() {
        if enabled() {
            return;
        }
        cov!("cov.test.inert");
        assert_eq!(edges_hit(), 0);
        let mut f = vec![1, 2, 3];
        collect_features(&mut f);
        assert!(f.is_empty());
    }
}
