//! The seeded mutation engine.
//!
//! Structure-blind havoc in the libFuzzer tradition, tuned for the
//! length-prefixed binary grammars this workspace parses: alongside
//! bit/byte flips, chunk surgery, and corpus splices there is a
//! dedicated *length-field havoc* pass that overwrites an aligned
//! u16/u32 with boundary values (0, 1, `0xFFFF`, `0x7FFFFFFF`, the
//! input's own length ± 1, …) in both endiannesses — exactly the
//! corruption class that turns a declared length into an overrun — and
//! a dictionary pass that stamps harvested tokens (frame tags, magic
//! bytes like `DVMX`, `0xCAFEBABE`, `DVMSTOR1`) into the input so the
//! search does not have to rediscover 8-byte constants by luck.

use crate::rng::FuzzRng;

/// Boundary integers the length-field havoc pass writes.
const INTERESTING: &[u64] = &[
    0,
    1,
    2,
    0x7F,
    0x80,
    0xFF,
    0x100,
    0x7FFF,
    0x8000,
    0xFFFF,
    0x1_0000,
    0x00FF_FFFF,
    0x7FFF_FFFF,
    0xFFFF_FFF0,
    0xFFFF_FFFF,
];

/// The mutation engine: a dictionary plus pure functions of the
/// caller's [`FuzzRng`] stream.
#[derive(Debug, Clone, Default)]
pub struct Mutator {
    /// Tokens stamped into inputs by the dictionary pass.
    pub dict: Vec<Vec<u8>>,
}

impl Mutator {
    /// Creates an engine with the given dictionary (may be empty).
    pub fn new(dict: Vec<Vec<u8>>) -> Mutator {
        Mutator { dict }
    }

    /// Applies 1–4 stacked mutations to `input`, drawing every choice
    /// from `rng`. `splice_pool` supplies crossover partners (the live
    /// corpus); `max_len` bounds growth.
    pub fn mutate(
        &self,
        rng: &mut FuzzRng,
        input: &mut Vec<u8>,
        splice_pool: &[Vec<u8>],
        max_len: usize,
    ) {
        // Favor single mutations: a good one-byte step toward new
        // coverage survives admission only if a second stacked round
        // does not wreck it.
        let rounds = if rng.one_in(2) { 1 } else { 1 + rng.below(4) };
        for _ in 0..rounds {
            self.mutate_once(rng, input, splice_pool, max_len);
        }
        if input.len() > max_len {
            input.truncate(max_len);
        }
    }

    fn mutate_once(
        &self,
        rng: &mut FuzzRng,
        input: &mut Vec<u8>,
        splice_pool: &[Vec<u8>],
        max_len: usize,
    ) {
        // Empty inputs can only grow.
        if input.is_empty() {
            let n = 1 + rng.below(8);
            for _ in 0..n {
                input.push(rng.byte());
            }
            return;
        }
        match rng.below(10) {
            // Flip one bit.
            0 => {
                let i = rng.below(input.len());
                input[i] ^= 1 << rng.below(8);
            }
            // Overwrite one byte.
            1 => {
                let i = rng.below(input.len());
                input[i] = rng.byte();
            }
            // Insert a short random run.
            2 => {
                let at = rng.below(input.len() + 1);
                let n = 1 + rng.below(8);
                for k in 0..n {
                    if input.len() < max_len {
                        input.insert(at + k, rng.byte());
                    }
                }
            }
            // Delete a chunk.
            3 => {
                let at = rng.below(input.len());
                let n = 1 + rng.below((input.len() - at).min(16));
                input.drain(at..at + n);
            }
            // Duplicate a chunk in place.
            4 => {
                let at = rng.below(input.len());
                let n = 1 + rng.below((input.len() - at).min(16));
                let chunk: Vec<u8> = input[at..at + n].to_vec();
                let to = rng.below(input.len() + 1);
                for (k, b) in chunk.into_iter().enumerate() {
                    if input.len() < max_len {
                        input.insert(to + k, b);
                    }
                }
            }
            // Splice: keep a prefix of ours, append a suffix of theirs.
            5 => {
                if let Some(other) = pick(rng, splice_pool) {
                    if !other.is_empty() {
                        let keep = rng.below(input.len() + 1);
                        let from = rng.below(other.len());
                        input.truncate(keep);
                        input.extend_from_slice(&other[from..]);
                        return;
                    }
                }
                // No partner: fall back to a byte overwrite.
                let i = rng.below(input.len());
                input[i] = rng.byte();
            }
            // Length-field havoc: stamp a boundary u16/u32, BE or LE.
            6 => {
                let value = INTERESTING[rng.below(INTERESTING.len())];
                let width = if rng.one_in(2) { 2 } else { 4 };
                let i = rng.below(input.len());
                let bytes = if rng.one_in(2) {
                    (value as u32).to_be_bytes()
                } else {
                    (value as u32).to_le_bytes()
                };
                for (k, b) in bytes[4 - width..].iter().enumerate() {
                    if i + k < input.len() {
                        input[i + k] = *b;
                    } else if input.len() < max_len {
                        input.push(*b);
                    }
                }
            }
            // Havoc the input's own length field, off by a little.
            7 => {
                let delta = [0i64, 1, -1, 16, -16][rng.below(5)];
                let claimed = (input.len() as i64 + delta).max(0) as u32;
                let i = rng.below(input.len());
                let bytes = claimed.to_be_bytes();
                for (k, b) in bytes.iter().enumerate() {
                    if i + k < input.len() {
                        input[i + k] = *b;
                    }
                }
            }
            // Dictionary token: insert or overwrite.
            8 => {
                if let Some(token) = pick(rng, &self.dict) {
                    let token = token.clone();
                    if rng.one_in(2) {
                        let at = rng.below(input.len() + 1);
                        for (k, b) in token.into_iter().enumerate() {
                            if input.len() < max_len {
                                input.insert(at + k, b);
                            }
                        }
                    } else {
                        let at = rng.below(input.len());
                        for (k, b) in token.into_iter().enumerate() {
                            if at + k < input.len() {
                                input[at + k] = b;
                            }
                        }
                    }
                } else {
                    let i = rng.below(input.len());
                    input[i] ^= 1 << rng.below(8);
                }
            }
            // Truncate.
            _ => {
                let keep = rng.below(input.len());
                input.truncate(keep);
            }
        }
    }
}

fn pick<'a>(rng: &mut FuzzRng, pool: &'a [Vec<u8>]) -> Option<&'a Vec<u8>> {
    if pool.is_empty() {
        None
    } else {
        Some(&pool[rng.below(pool.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let m = Mutator::new(vec![b"DVMX".to_vec()]);
        let pool = vec![vec![9u8; 12]];
        let mut a = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut b = a.clone();
        let mut ra = FuzzRng::new(77);
        let mut rb = FuzzRng::new(77);
        for _ in 0..50 {
            m.mutate(&mut ra, &mut a, &pool, 256);
            m.mutate(&mut rb, &mut b, &pool, 256);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mutation_respects_max_len_and_changes_inputs() {
        let m = Mutator::new(vec![]);
        let mut rng = FuzzRng::new(3);
        let original = vec![0u8; 32];
        let mut changed = 0;
        for _ in 0..100 {
            let mut input = original.clone();
            m.mutate(&mut rng, &mut input, &[], 64);
            assert!(input.len() <= 64);
            if input != original {
                changed += 1;
            }
        }
        assert!(changed > 90, "mutations almost always change the input");
    }

    #[test]
    fn empty_inputs_grow() {
        let m = Mutator::new(vec![]);
        let mut rng = FuzzRng::new(11);
        let mut input = Vec::new();
        m.mutate(&mut rng, &mut input, &[], 64);
        assert!(!input.is_empty());
    }
}
