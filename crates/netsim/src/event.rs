//! A generic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::SimTime;

/// A time-ordered event queue over an arbitrary payload type.
///
/// Events scheduled for the same instant dequeue in insertion order, which
/// keeps multi-client simulations deterministic.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    payloads: Vec<Option<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue::default()
    }

    /// Schedules `payload` at time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let idx = self.payloads.len();
        self.payloads.push(Some(payload));
        self.heap.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let Reverse((at, _, idx)) = self.heap.pop()?;
        let payload = self.payloads[idx]
            .take()
            .expect("event payload consumed twice");
        Some((at, payload))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_dequeue_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), "c");
        q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(3), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(3), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
