//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// As nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

/// A monotonically advancing simulated clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// The current time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `delta`.
    pub fn advance(&mut self, delta: SimTime) {
        self.now += delta;
    }

    /// Advances the clock to `t` if `t` is in the future.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// Converts CPU cycle counts to simulated time for a given clock rate.
#[derive(Debug, Clone, Copy)]
pub struct CycleModel {
    /// Clock rate in Hz.
    pub hz: u64,
}

impl CycleModel {
    /// The paper's client machines: 200 MHz PentiumPro.
    pub const PENTIUM_PRO_200: CycleModel = CycleModel { hz: 200_000_000 };

    /// Converts a cycle count to time.
    pub fn time_for(&self, cycles: u64) -> SimTime {
        // cycles / hz seconds, computed in u128 to avoid overflow.
        SimTime(((cycles as u128 * 1_000_000_000) / self.hz as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(2), SimTime(2_000_000));
        assert_eq!(SimTime::from_secs(1).as_millis_f64(), 1000.0);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        c.advance(SimTime::from_millis(5));
        c.advance_to(SimTime::from_millis(3)); // in the past: ignored
        assert_eq!(c.now(), SimTime::from_millis(5));
        c.advance_to(SimTime::from_millis(9));
        assert_eq!(c.now(), SimTime::from_millis(9));
    }

    #[test]
    fn cycle_model_200mhz() {
        let m = CycleModel::PENTIUM_PRO_200;
        // 200 cycles at 200 MHz = 1 µs.
        assert_eq!(m.time_for(200), SimTime::from_micros(1));
        // 1M cycles = 5 ms.
        assert_eq!(m.time_for(1_000_000), SimTime::from_millis(5));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_millis(2198).to_string(), "2.198 s");
        assert_eq!(SimTime::from_micros(265).to_string(), "265.000 µs");
    }
}
