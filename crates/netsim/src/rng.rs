//! A small deterministic random-number generator.
//!
//! The simulator keeps its own splitmix64-based generator rather than
//! depending on `rand`, so link models embed no external seeding behavior
//! and every experiment replays identically.

/// A seeded pseudo-random generator (splitmix64 core).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
    spare_gaussian: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            spare_gaussian: None,
        }
    }

    /// Derives an independent substream: a generator whose output is a
    /// pure function of `(seed, stream)` and decorrelated from both this
    /// generator and every other stream index. The chaos harness uses
    /// this to give each link, connection, and client its own replayable
    /// stream from one experiment seed without sharing mutable state.
    pub fn derive(seed: u64, stream: u64) -> SimRng {
        // One splitmix64 step over the stream index separates streams
        // whose indices differ in few bits before they are mixed in.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::new(seed ^ (z ^ (z >> 31)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Standard normal via Box–Muller (with caching of the spare value).
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        loop {
            let u1 = self.next_f64();
            let u2 = self.next_f64();
            if u1 <= f64::EPSILON {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare_gaussian = Some(r * theta.sin());
            return r * theta.cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_replay_and_decorrelate() {
        let take = |seed, stream| -> Vec<u64> {
            let mut r = SimRng::derive(seed, stream);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(take(7, 0), take(7, 0), "same (seed, stream) must replay");
        assert_ne!(take(7, 0), take(7, 1), "streams must differ");
        assert_ne!(take(7, 1), take(7, 2), "adjacent streams must differ");
        assert_ne!(take(7, 0), take(8, 0), "seeds must differ");
    }

    #[test]
    fn uniform_is_in_range() {
        let mut r = SimRng::new(2);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
