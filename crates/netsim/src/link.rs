//! Link models.

use crate::clock::SimTime;
use crate::rng::SimRng;

/// A point-to-point link characterized by bandwidth and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way latency.
    pub latency: SimTime,
}

impl Link {
    /// Creates a link.
    pub fn new(bandwidth_bps: u64, latency: SimTime) -> Link {
        Link {
            bandwidth_bps,
            latency,
        }
    }

    /// Time to move `bytes` across the link as the only flow.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.latency + self.serialization_time(bytes)
    }

    /// Time to move `bytes` when `flows` concurrent transfers share the
    /// link fairly.
    pub fn shared_transfer_time(&self, bytes: u64, flows: u64) -> SimTime {
        let flows = flows.max(1);
        let per_flow = (self.bandwidth_bps / flows).max(1);
        self.latency + SimTime(((bytes as u128 * 8 * 1_000_000_000) / per_flow as u128) as u64)
    }

    /// Pure serialization delay for `bytes`.
    pub fn serialization_time(&self, bytes: u64) -> SimTime {
        SimTime(((bytes as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128) as u64)
    }
}

/// The measured wide-area path of §4.1.2: applet fetch latency with mean
/// 2198 ms and standard deviation 3752 ms. Modeled as a log-normal
/// distribution (heavy-tailed, strictly positive) calibrated to those two
/// moments, sampled deterministically from a seeded generator.
#[derive(Debug, Clone)]
pub struct InternetPath {
    mu: f64,
    sigma: f64,
    rng: SimRng,
}

impl InternetPath {
    /// Mean latency the paper reports, in milliseconds.
    pub const PAPER_MEAN_MS: f64 = 2198.0;
    /// Standard deviation the paper reports, in milliseconds.
    pub const PAPER_SD_MS: f64 = 3752.0;

    /// Creates a path calibrated to the paper's measurements.
    pub fn paper_calibrated(seed: u64) -> InternetPath {
        InternetPath::with_moments(Self::PAPER_MEAN_MS, Self::PAPER_SD_MS, seed)
    }

    /// Creates a path with the given latency mean and standard deviation
    /// (milliseconds).
    pub fn with_moments(mean_ms: f64, sd_ms: f64, seed: u64) -> InternetPath {
        // Log-normal: if X ~ LN(mu, sigma), E[X] = exp(mu + sigma^2/2),
        // Var[X] = (exp(sigma^2) - 1) exp(2mu + sigma^2).
        let cv2 = (sd_ms / mean_ms).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean_ms.ln() - sigma2 / 2.0;
        InternetPath {
            mu,
            sigma: sigma2.sqrt(),
            rng: SimRng::new(seed),
        }
    }

    /// Samples one fetch latency.
    pub fn sample_latency(&mut self) -> SimTime {
        let z = self.rng.next_gaussian();
        let ms = (self.mu + self.sigma * z).exp();
        SimTime::from_nanos((ms * 1e6) as u64)
    }
}

/// Standard link presets used across the experiments.
pub mod presets {
    use super::Link;
    use crate::clock::SimTime;

    /// The paper's LAN: 10 Mb/s Ethernet.
    pub fn ethernet_10mbps() -> Link {
        Link::new(10_000_000, SimTime::from_micros(500))
    }

    /// The paper's backbone: 100 Mb/s.
    pub fn backbone_100mbps() -> Link {
        Link::new(100_000_000, SimTime::from_micros(200))
    }

    /// §5's slow wireless link: 28.8 Kb/s.
    pub fn wireless_28_8kbps() -> Link {
        Link::new(28_800, SimTime::from_millis(100))
    }

    /// An arbitrary-bandwidth link for the Figure 11/12 sweeps
    /// (`bytes_per_sec` is the x-axis of those figures).
    pub fn sweep_link(bytes_per_sec: u64) -> Link {
        Link::new(bytes_per_sec * 8, SimTime::from_millis(50))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_linearly() {
        let l = presets::ethernet_10mbps();
        // 10 Mb/s = 1.25 MB/s, so 1.25 MB takes 1 s + latency.
        let t = l.transfer_time(1_250_000);
        assert_eq!(t, SimTime::from_secs(1) + l.latency);
    }

    #[test]
    fn fair_sharing_divides_bandwidth() {
        let l = presets::ethernet_10mbps();
        let alone = l.shared_transfer_time(125_000, 1);
        let crowded = l.shared_transfer_time(125_000, 10);
        let alone_ser = alone.saturating_sub(l.latency);
        let crowded_ser = crowded.saturating_sub(l.latency);
        assert_eq!(crowded_ser.as_nanos(), alone_ser.as_nanos() * 10);
    }

    #[test]
    fn internet_path_matches_paper_moments() {
        let mut p = InternetPath::paper_calibrated(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| p.sample_latency().as_millis_f64()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        // Within 10% of the paper's measured moments.
        assert!(
            (mean - InternetPath::PAPER_MEAN_MS).abs() < 0.1 * InternetPath::PAPER_MEAN_MS,
            "mean {mean}"
        );
        assert!(
            (sd - InternetPath::PAPER_SD_MS).abs() < 0.2 * InternetPath::PAPER_SD_MS,
            "sd {sd}"
        );
    }

    #[test]
    fn internet_path_is_deterministic_per_seed() {
        let mut a = InternetPath::paper_calibrated(7);
        let mut b = InternetPath::paper_calibrated(7);
        for _ in 0..10 {
            assert_eq!(a.sample_latency(), b.sample_latency());
        }
    }
}
