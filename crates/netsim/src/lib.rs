//! A deterministic discrete-event network simulator.
//!
//! Every network-sensitive experiment in the reproduction (class-transfer
//! latency, proxy overhead, throughput scaling, low-bandwidth startup
//! times) computes time through this crate instead of wall clocks, so
//! results are machine-independent. Links are modeled by bandwidth and
//! latency; concurrent flows on a shared link split bandwidth fairly; the
//! wide-area Internet path is modeled by the latency distribution the
//! paper measured (mean 2198 ms, large variance).

pub mod clock;
pub mod event;
pub mod link;
pub mod rng;

pub use clock::{CycleModel, SimClock, SimTime};
pub use event::EventQueue;
pub use link::{presets, InternetPath, Link};
pub use rng::SimRng;
