//! `dvm-telemetry`: the DVM's observability substrate.
//!
//! The paper's monitoring service ships audit trails and execution
//! profiles from clients to a remote administration console (§4.4, §5);
//! this crate gives the *reproduction itself* the same property — every
//! layer of the proxy pipeline, the wire protocol, and the shard cluster
//! becomes observable from the outside while it runs:
//!
//! - [`metrics`] — a lock-cheap registry of named [`Counter`]s,
//!   [`Gauge`]s, and log-linear-bucket latency [`Histogram`]s. The hot
//!   path touches only relaxed atomics on pre-registered handles;
//!   snapshots quantize into p50/p90/p99 and merge across processes so a
//!   fleet of shards reports as one service.
//! - [`trace`] — distributed request tracing: a [`TraceId`]/[`SpanId`]
//!   context born at the client rides the wire protocol's frames, and
//!   every layer records [`Span`]s (client fetch → shard route →
//!   pipeline stages → origin fetch) into a fixed-size
//!   [`FlightRecorder`] ring buffer, dumpable on demand.
//! - [`report`] — [`StatsReport`], the serialized form a live server
//!   hands back over the wire's `STATS_REQUEST`/`STATS_RESPONSE` pair:
//!   one node's metrics snapshot plus its recent spans, in a pure-std
//!   binary encoding (the same length-prefixed style as the wire
//!   protocol, deliberately from scratch).
//!
//! - [`events`] — a bounded, sequenced [`EventJournal`] of typed
//!   cluster events (breaker transitions, ring epochs, migrations,
//!   compactions, alert transitions), tailable with a cursor and
//!   optionally spooled durably by a higher layer.
//!
//! The crate sits below every other DVM crate and depends on nothing but
//! `parking_lot`: proxy, net, cluster, and core all register into it
//! without it knowing any of them.

pub mod events;
pub mod metrics;
pub mod report;
pub mod trace;

pub use events::{EventJournal, JournalEvent, JournalKind, JournalSpool};
pub use metrics::{
    Counter, Gauge, GaugeMode, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use report::{ReportError, StatsReport};
pub use trace::{FlightRecorder, Span, SpanId, TraceContext, TraceId};

use std::sync::Arc;

/// One process's (or component's) telemetry plane: a metrics registry
/// plus a span flight recorder and an event journal, under a node name
/// that survives into serialized reports so fleet-wide dumps stay
/// attributable.
#[derive(Debug)]
pub struct Telemetry {
    node: String,
    registry: Registry,
    recorder: FlightRecorder,
    journal: Arc<EventJournal>,
}

impl Telemetry {
    /// Creates a telemetry plane named `node` (e.g. `"shard0"`,
    /// `"client:alice"`) with the default flight-recorder capacity.
    pub fn new(node: &str) -> Telemetry {
        Telemetry::with_capacity(node, trace::DEFAULT_RECORDER_CAPACITY)
    }

    /// Creates a telemetry plane retaining up to `spans` recent spans.
    pub fn with_capacity(node: &str, spans: usize) -> Telemetry {
        let recorder = FlightRecorder::new(spans);
        recorder.set_node(node);
        let journal = Arc::new(EventJournal::default());
        journal.set_node(node);
        Telemetry {
            node: node.to_owned(),
            registry: Registry::new(),
            recorder,
            journal,
        }
    }

    /// The node name stamped on this plane's reports.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The structured event journal. Shared (`Arc`) because recorders
    /// (breaker, store, membership) hold it independently of this plane.
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// Records a journal event stamped with the recorder's clock.
    pub fn record_event(&self, kind: JournalKind) -> u64 {
        self.journal.record(self.recorder.now_ns(), kind)
    }

    /// Snapshots this node's full observable state: metrics plus the
    /// retained span window (oldest first). This is what the stats plane
    /// serializes into a `STATS_RESPONSE`.
    pub fn report(&self) -> StatsReport {
        StatsReport {
            node: self.node.clone(),
            metrics: self.registry.snapshot(),
            spans: self.recorder.dump(),
            spans_dropped: self.recorder.dropped(),
        }
    }

    /// [`Telemetry::report`] without the span dump (metrics only), for
    /// callers that poll frequently and do not want span payloads.
    pub fn report_metrics_only(&self) -> StatsReport {
        StatsReport {
            node: self.node.clone(),
            metrics: self.registry.snapshot(),
            spans: Vec::new(),
            spans_dropped: self.recorder.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_the_wire_encoding() {
        let t = Telemetry::new("node-a");
        t.registry().counter("requests").add(3);
        t.registry().gauge("live").set(2);
        t.registry().histogram("lat_ns").record(1500);
        let trace = TraceId::generate();
        let span = SpanId::generate();
        t.recorder()
            .record_span(trace, span, SpanId::NONE, "client.fetch", 10, 250);
        let report = t.report();
        let bytes = report.encode();
        let back = StatsReport::decode(&bytes).unwrap();
        assert_eq!(back.node, "node-a");
        assert_eq!(back.metrics.counters["requests"], 3);
        assert_eq!(back.metrics.gauges["live"], 2);
        assert_eq!(back.metrics.histograms["lat_ns"].count, 1);
        assert_eq!(back.spans.len(), 1);
        assert_eq!(back.spans[0].name, "client.fetch");
        assert_eq!(back.spans[0].trace, trace);
    }
}
