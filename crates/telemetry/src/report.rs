//! `StatsReport`: the serialized payload of the stats plane.
//!
//! One node's observable state — its metrics snapshot plus its recent
//! spans — in a compact binary encoding (big-endian integers, `u16`- or
//! `u32`-length-prefixed strings and lists, a leading version byte).
//! This is what a `ProxyServer` stuffs into a `STATS_RESPONSE` frame and
//! what the fleet console decodes, merges, and renders. The encoding is
//! deliberately the same from-scratch style as the wire protocol's frame
//! grammar: no external serialization dependency, every decode
//! bounds-checked to the declared end.

use std::collections::BTreeMap;

use crate::metrics::{GaugeMode, HistogramSnapshot, MetricsSnapshot};
use crate::trace::{Span, SpanId, TraceId};

/// Encoding version byte (bump on incompatible layout changes).
/// Version 2 added a [`GaugeMode`] byte to every gauge entry.
const VERSION: u8 = 2;

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// Unknown version byte.
    Version(u8),
    /// Payload failed structural validation.
    Malformed(String),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Version(v) => write!(f, "unknown stats report version {v}"),
            ReportError::Malformed(d) => write!(f, "malformed stats report: {d}"),
        }
    }
}

impl std::error::Error for ReportError {}

fn malformed(d: &str) -> ReportError {
    ReportError::Malformed(d.to_owned())
}

// ---- encoding helpers (mirrors the wire protocol's style) -----------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.extend_from_slice(&s.as_bytes()[..len]);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ReportError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| malformed("truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ReportError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ReportError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ReportError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ReportError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ReportError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ReportError> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| malformed("invalid UTF-8"))
    }

    /// Bounds a declared element count by the bytes actually remaining
    /// (each element needs at least `min_bytes`), so a hostile length
    /// cannot force a huge allocation.
    fn count(&mut self, min_bytes: usize) -> Result<usize, ReportError> {
        let n = self.u32()? as usize;
        let cap = (self.buf.len() - self.pos) / min_bytes.max(1);
        if n > cap {
            return Err(malformed("element count exceeds payload"));
        }
        Ok(n)
    }
}

fn encode_histogram(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    put_u64(out, h.count);
    put_u64(out, h.sum);
    put_u64(out, h.min);
    put_u64(out, h.max);
    put_u32(out, h.buckets.len() as u32);
    for &(i, n) in &h.buckets {
        put_u32(out, i);
        put_u64(out, n);
    }
}

fn decode_histogram(c: &mut Cursor<'_>) -> Result<HistogramSnapshot, ReportError> {
    let count = c.u64()?;
    let sum = c.u64()?;
    let min = c.u64()?;
    let max = c.u64()?;
    let n = c.count(12)?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push((c.u32()?, c.u64()?));
    }
    Ok(HistogramSnapshot {
        count,
        sum,
        min,
        max,
        buckets,
    })
}

/// One node's serialized observable state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    /// The reporting node's name (e.g. `"shard1"`).
    pub node: String,
    /// Its metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Its retained span window, oldest first (empty when the requester
    /// asked for metrics only).
    pub spans: Vec<Span>,
    /// Spans evicted from the flight recorder before this dump.
    pub spans_dropped: u64,
}

impl StatsReport {
    /// Serializes the report.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.push(VERSION);
        put_str(&mut out, &self.node);
        put_u32(&mut out, self.metrics.counters.len() as u32);
        for (k, v) in &self.metrics.counters {
            put_str(&mut out, k);
            put_u64(&mut out, *v);
        }
        put_u32(&mut out, self.metrics.gauges.len() as u32);
        for (k, v) in &self.metrics.gauges {
            put_str(&mut out, k);
            put_i64(&mut out, *v);
            out.push(self.metrics.gauge_mode(k).as_u8());
        }
        put_u32(&mut out, self.metrics.histograms.len() as u32);
        for (k, h) in &self.metrics.histograms {
            put_str(&mut out, k);
            encode_histogram(&mut out, h);
        }
        put_u64(&mut out, self.spans_dropped);
        put_u32(&mut out, self.spans.len() as u32);
        for s in &self.spans {
            put_u64(&mut out, s.trace.0);
            put_u64(&mut out, s.id.0);
            put_u64(&mut out, s.parent.0);
            put_str(&mut out, &s.name);
            put_str(&mut out, &s.node);
            put_u64(&mut out, s.start_ns);
            put_u64(&mut out, s.duration_ns);
        }
        out
    }

    /// Decodes a report, validating structure to the declared end.
    pub fn decode(buf: &[u8]) -> Result<StatsReport, ReportError> {
        let mut c = Cursor { buf, pos: 0 };
        let version = c.u8()?;
        if version != VERSION {
            return Err(ReportError::Version(version));
        }
        let node = c.string()?;
        let mut counters = BTreeMap::new();
        for _ in 0..c.count(10)? {
            let k = c.string()?;
            counters.insert(k, c.u64()?);
        }
        let mut gauges = BTreeMap::new();
        let mut gauge_modes = BTreeMap::new();
        for _ in 0..c.count(11)? {
            let k = c.string()?;
            let v = c.i64()?;
            let mode = GaugeMode::from_u8(c.u8()?).ok_or_else(|| malformed("bad gauge mode"))?;
            if mode != GaugeMode::Sum {
                gauge_modes.insert(k.clone(), mode);
            }
            gauges.insert(k, v);
        }
        let mut histograms = BTreeMap::new();
        for _ in 0..c.count(38)? {
            let k = c.string()?;
            histograms.insert(k, decode_histogram(&mut c)?);
        }
        let spans_dropped = c.u64()?;
        let n_spans = c.count(44)?;
        let mut spans = Vec::with_capacity(n_spans);
        for _ in 0..n_spans {
            spans.push(Span {
                trace: TraceId(c.u64()?),
                id: SpanId(c.u64()?),
                parent: SpanId(c.u64()?),
                name: c.string()?,
                node: c.string()?,
                start_ns: c.u64()?,
                duration_ns: c.u64()?,
            });
        }
        if c.pos != buf.len() {
            return Err(malformed("trailing bytes"));
        }
        Ok(StatsReport {
            node,
            metrics: MetricsSnapshot {
                counters,
                gauges,
                gauge_modes,
                histograms,
            },
            spans,
            spans_dropped,
        })
    }

    /// Merges the metrics of many per-node reports into one fleet-wide
    /// snapshot (spans are per-node and are not merged).
    pub fn merge_metrics<'a>(
        reports: impl IntoIterator<Item = &'a StatsReport>,
    ) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for r in reports {
            merged.merge(&r.metrics);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsReport {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("a".into(), 1);
        metrics.counters.insert("b".into(), u64::MAX);
        metrics.gauges.insert("g".into(), -7);
        metrics.gauges.insert("peak".into(), 12);
        metrics.gauge_modes.insert("peak".into(), GaugeMode::Max);
        metrics.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                buckets: vec![(10, 1), (17, 1)],
            },
        );
        StatsReport {
            node: "shard0".into(),
            metrics,
            spans: vec![Span {
                trace: TraceId(9),
                id: SpanId(2),
                parent: SpanId::NONE,
                name: "client.fetch".into(),
                node: "client:alice".into(),
                start_ns: 5,
                duration_ns: 100,
            }],
            spans_dropped: 3,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let r = sample();
        assert_eq!(StatsReport::decode(&r.encode()).unwrap(), r);
        let empty = StatsReport::default();
        assert_eq!(StatsReport::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(StatsReport::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // Version + empty node + a counter count claiming 2^32-1 entries.
        let mut buf = vec![VERSION, 0, 0];
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(StatsReport::decode(&buf).is_err());
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = 99;
        assert_eq!(StatsReport::decode(&bytes), Err(ReportError::Version(99)));
    }

    #[test]
    fn merge_metrics_spans_nodes() {
        let a = sample();
        let mut b = sample();
        b.node = "shard1".into();
        let merged = StatsReport::merge_metrics([&a, &b]);
        assert_eq!(merged.counter("a"), 2);
        assert_eq!(merged.histograms["h"].count, 4);
    }
}
