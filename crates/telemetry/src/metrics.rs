//! The metrics registry: counters, gauges, and log-linear histograms.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path is atomics only.** Components call
//!    [`Registry::counter`] (et al.) once at wiring time and keep the
//!    `Arc` handle; recording is then a relaxed `fetch_add` — no locks,
//!    no allocation, no formatting. The registry's own maps are touched
//!    only at registration and snapshot time.
//! 2. **Histograms bound error, not range.** Latencies span seven orders
//!    of magnitude, so buckets are log-linear: 16 linear sub-buckets per
//!    power of two, giving ≤ 1/16 relative quantile error over the full
//!    `u64` range with a fixed 976-slot table (the same scheme HDR-style
//!    recorders use).
//! 3. **Snapshots merge.** A cluster is observable only if per-shard
//!    snapshots combine into one: counters add, gauges add, histograms
//!    add bucket-wise. Merging is associative and commutative (verified
//!    by property test), so any aggregation order yields the same fleet
//!    view.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// How a gauge combines across nodes when fleet snapshots merge.
///
/// Counters always add — more shards, more events. Gauges do not:
/// `net.server.live_connections` summed across shards is a real fleet
/// total, but `cluster.breaker.open_now` summed across *observers* of
/// the same breaker double-counts, and a config-value gauge summed is
/// nonsense. The registrant declares the semantics once; merging and
/// the wire encoding carry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GaugeMode {
    /// Values add (per-shard quantities: live connections, queue depth).
    #[default]
    Sum,
    /// The maximum wins (worst-case point-in-time values: breakers open,
    /// backlog high-water marks).
    Max,
    /// The most recently merged value wins (config echoes, epochs —
    /// values every node reports identically).
    Last,
}

impl GaugeMode {
    /// Stable wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            GaugeMode::Sum => 0,
            GaugeMode::Max => 1,
            GaugeMode::Last => 2,
        }
    }

    /// Parses a wire byte.
    pub fn from_u8(b: u8) -> Option<GaugeMode> {
        match b {
            0 => Some(GaugeMode::Sum),
            1 => Some(GaugeMode::Max),
            2 => Some(GaugeMode::Last),
            _ => None,
        }
    }
}

/// An instantaneous signed value (e.g. live connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (negative to decrement).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power of two: 2^4 = 16.
const SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << SUB_BITS;
const SUB_MASK: u64 = (SUB_COUNT - 1) as u64;

/// Total bucket count covering the full `u64` range: the linear range
/// `0..16` plus 60 octaves of 16 sub-buckets each.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_COUNT + SUB_COUNT;

/// Bucket index for a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    (((msb - SUB_BITS + 1) << SUB_BITS) + ((v >> shift) as u32 & SUB_MASK as u32)) as usize
}

/// Inclusive lower bound of bucket `i` (the smallest value that lands in
/// it). The exclusive upper bound is `bucket_lower(i + 1)`.
pub fn bucket_lower(i: usize) -> u64 {
    if i < SUB_COUNT {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32; // >= 1
    let sub = (i & (SUB_COUNT - 1)) as u64;
    (SUB_COUNT as u64 + sub) << (octave - 1)
}

/// Exclusive upper bound of bucket `i` (saturating at `u64::MAX`).
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_lower(i + 1)
}

/// A concurrent log-linear histogram over `u64` values (conventionally
/// nanoseconds). Recording is three relaxed atomic RMWs plus two
/// fetch-min/max; no locks anywhere.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the array element by element.
        let buckets: Box<[AtomicU64; BUCKETS]> =
            Box::new(std::array::from_fn(|_| AtomicU64::new(0)));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot for reporting (buckets are read while
    /// writers may be racing; totals can differ from the bucket sum by
    /// in-flight recordings, which reporting tolerates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time, mergeable view of a [`Histogram`]. Buckets are
/// sparse `(index, count)` pairs sorted by index.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Sparse non-empty buckets, sorted by bucket index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`): the midpoint of the
    /// bucket holding the `ceil(q·count)`-th smallest value, clamped to
    /// the observed `[min, max]`. Relative error is bounded by the
    /// bucket width — at most 1/16 of the value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // The extremes are tracked exactly; report them exactly.
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(i, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                let lo = bucket_lower(i as usize);
                let hi = bucket_upper(i as usize);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s recordings into this snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(i, n) in &other.buckets {
            let slot = merged.entry(i).or_insert(0);
            *slot = slot.saturating_add(n);
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// A named set of metrics. Handles are `Arc`s to the live atomics:
/// register once, record forever without re-entering the registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    gauge_modes: RwLock<BTreeMap<String, GaugeMode>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().get(name) {
        return m.clone();
    }
    map.write()
        .entry(name.to_owned())
        .or_insert_with(|| Arc::new(T::default()))
        .clone()
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use with the default
    /// [`GaugeMode::Sum`] merge semantics.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The gauge named `name` with explicit fleet-merge semantics.
    pub fn gauge_with_mode(&self, name: &str, mode: GaugeMode) -> Arc<Gauge> {
        if mode != GaugeMode::Sum {
            self.gauge_modes.write().insert(name.to_owned(), mode);
        }
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Snapshots every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauge_modes: self.gauge_modes.read().clone(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time view of a whole [`Registry`], mergeable across nodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Merge semantics for gauges that are not [`GaugeMode::Sum`]
    /// (absent means `Sum`, keeping the map sparse).
    pub gauge_modes: BTreeMap<String, GaugeMode>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge semantics for the gauge named `name`.
    pub fn gauge_mode(&self, name: &str) -> GaugeMode {
        self.gauge_modes.get(name).copied().unwrap_or_default()
    }

    /// Merges `other` into this snapshot: counters add, gauges combine
    /// per their declared [`GaugeMode`], histograms combine bucket-wise.
    /// Metrics present on only one side survive unchanged, so shards
    /// with disjoint instrumentation still aggregate.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.gauges {
            // Either side may carry the declaration (a freshly-started
            // shard can report a gauge the aggregate hasn't seen).
            let mode = self
                .gauge_modes
                .get(k)
                .or_else(|| other.gauge_modes.get(k))
                .copied()
                .unwrap_or_default();
            match self.gauges.entry(k.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(*v);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => match mode {
                    GaugeMode::Sum => {
                        let cur = *slot.get();
                        slot.insert(cur.saturating_add(*v));
                    }
                    GaugeMode::Max => {
                        let cur = *slot.get();
                        slot.insert(cur.max(*v));
                    }
                    GaugeMode::Last => {
                        slot.insert(*v);
                    }
                },
            }
        }
        for (k, m) in &other.gauge_modes {
            self.gauge_modes.entry(k.clone()).or_insert(*m);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_in_the_linear_range() {
        for v in 0..16u64 {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_upper(i), v + 1);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_contain_the_value() {
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..64 {
            for off in [0u64, 1, 7] {
                values.push((1u64 << exp).saturating_add(off));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
            assert!(i < BUCKETS);
            assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
            assert!(v < bucket_upper(i) || bucket_upper(i) == u64::MAX);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        // Log-linear with 16 sub-buckets: width / lower ≤ 1/16 for all
        // log-regime buckets (the quantile error bound).
        for i in 16..BUCKETS - 1 {
            let lo = bucket_lower(i);
            let width = bucket_upper(i) - lo;
            assert!(
                width as f64 / lo as f64 <= 1.0 / 16.0 + 1e-12,
                "bucket {i}: width {width} lower {lo}"
            );
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp_are_accurate() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let est = s.quantile(q);
            let err = est.abs_diff(exact);
            assert!(
                err as f64 <= exact as f64 / 16.0 + 1.0,
                "q{q}: est {est} exact {exact}"
            );
        }
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 10_000);
    }

    #[test]
    fn single_value_quantiles_collapse_to_it() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(77_777);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 77_777);
        assert_eq!(s.quantile(0.99), 77_777);
        assert_eq!(s.min, 77_777);
        assert_eq!(s.max, 77_777);
    }

    #[test]
    fn concurrent_counter_increments_from_8_threads_lose_nothing() {
        let reg = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                // Half the threads race the registration path too.
                let c = reg.counter("hits");
                let h = reg.histogram("lat");
                for i in 0..10_000u64 {
                    c.inc();
                    h.record(i % 977);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("hits").get(), 80_000);
        let s = reg.histogram("lat").snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 80_000);
    }

    #[test]
    fn merge_combines_counters_gauges_and_histograms() {
        let a = Registry::new();
        a.counter("c").add(2);
        a.gauge("g").set(5);
        a.histogram("h").record(10);
        let b = Registry::new();
        b.counter("c").add(3);
        b.counter("only_b").inc();
        b.gauge("g").set(-1);
        b.histogram("h").record(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("c"), 5);
        assert_eq!(m.counter("only_b"), 1);
        assert_eq!(m.gauge("g"), 4);
        let h = &m.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 1_000_000);
    }

    #[test]
    fn gauge_merge_modes_govern_fleet_aggregation() {
        // Three shards each report: a per-shard quantity (sum), a
        // point-in-time worst case (max), and an identical config echo
        // (last). Summing everything — the old behavior — was only
        // right for the first.
        let mut merged = MetricsSnapshot::default();
        for (live, open) in [(4i64, 0i64), (7, 1), (2, 1)] {
            let r = Registry::new();
            r.gauge("live_connections").set(live);
            r.gauge_with_mode("breaker.open_now", GaugeMode::Max)
                .set(open);
            r.gauge_with_mode("ring.vnodes", GaugeMode::Last).set(64);
            merged.merge(&r.snapshot());
        }
        assert_eq!(merged.gauge("live_connections"), 13);
        assert_eq!(merged.gauge("breaker.open_now"), 1);
        assert_eq!(merged.gauge("ring.vnodes"), 64);
        // The declaration itself survives the merge for re-aggregation.
        assert_eq!(merged.gauge_mode("breaker.open_now"), GaugeMode::Max);
        assert_eq!(merged.gauge_mode("live_connections"), GaugeMode::Sum);
    }
}
