//! The structured event journal: a bounded, sequenced ring of typed
//! cluster events.
//!
//! Metrics say *how much*; the journal says *what happened*. Breaker
//! transitions, ring epoch changes, migrations, store compactions, and
//! SLO alert transitions are each recorded as one [`JournalEvent`] with
//! a strictly increasing sequence number, so a remote console can tail
//! the cluster's history with a cursor (`events_after`) and never see a
//! gap it can't detect.
//!
//! The journal lives here — below every other DVM crate — for the same
//! reason the registry does: the store must be able to *record*
//! compaction events even though durable spooling of the journal is
//! implemented *on top of* the store (in `dvm-watch`). The
//! [`JournalSpool`] trait inverts that dependency: `dvm-watch` installs
//! a store-backed spool, and the journal forwards every event to it and
//! consults it for sequences that have already fallen off the in-memory
//! ring.

use std::collections::VecDeque;

use parking_lot::Mutex;

/// Default in-memory ring capacity.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// Alert lifecycle states, shared between the journal encoding and
/// `dvm-watch`'s state machine so transitions serialize stably.
pub const ALERT_OK: u8 = 0;
/// Fast window burning, slow window not yet.
pub const ALERT_WARNING: u8 = 1;
/// Both windows burning: page somebody.
pub const ALERT_FIRING: u8 = 2;
/// Was firing, burn has subsided; one evaluation later it returns to ok.
pub const ALERT_RESOLVED: u8 = 3;

/// What happened. Variants mirror the instrumentation sites that emit
/// them; every variant has a stable wire tag (see `encode_into`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalKind {
    /// A health-tracker circuit breaker changed state for `shard`
    /// (`state`: 0 = closed, 1 = open, 2 = probing).
    BreakerTransition { shard: u32, state: u8 },
    /// The consistent-hash ring advanced to `epoch`.
    RingEpoch { epoch: u64 },
    /// A cache migration toward `shard` began.
    MigrationBegun { shard: u32 },
    /// A cache migration toward `shard` finished after moving `entries`.
    MigrationCompleted { shard: u32, entries: u64 },
    /// The store rewrote its log, keeping `live` records and reclaiming
    /// `reclaimed` bytes.
    StoreCompaction { live: u64, reclaimed: u64 },
    /// An SLO alert for `objective` moved `from` → `to` (the `ALERT_*`
    /// constants).
    AlertTransition { objective: String, from: u8, to: u8 },
    /// Free-form operational note.
    Note { text: String },
}

impl JournalKind {
    /// Short stable label for rendering (console, exposition).
    pub fn label(&self) -> &'static str {
        match self {
            JournalKind::BreakerTransition { .. } => "breaker",
            JournalKind::RingEpoch { .. } => "ring-epoch",
            JournalKind::MigrationBegun { .. } => "migrate-begin",
            JournalKind::MigrationCompleted { .. } => "migrate-end",
            JournalKind::StoreCompaction { .. } => "compaction",
            JournalKind::AlertTransition { .. } => "alert",
            JournalKind::Note { .. } => "note",
        }
    }
}

/// One journal entry: a sequence number unique and strictly increasing
/// per node, the recorder's clock, the node name, and the typed kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Strictly increasing per-node sequence number (starts at 1).
    pub seq: u64,
    /// Recorder timestamp, nanoseconds on the node's monotonic clock.
    pub at_ns: u64,
    /// Node that recorded the event.
    pub node: String,
    /// What happened.
    pub kind: JournalKind,
}

/// Durable continuation of the in-memory ring, installed by a higher
/// layer (`dvm-watch` backs it with `dvm-store`). `append` is called
/// for every recorded event while the journal's lock is *not* held;
/// `events_after` serves cursors older than the ring's tail.
pub trait JournalSpool: Send + Sync {
    /// Persists one event.
    fn append(&self, event: &JournalEvent);
    /// Events with `seq > after`, oldest first, at most `max`.
    fn events_after(&self, after: u64, max: usize) -> Vec<JournalEvent>;
    /// Largest persisted sequence number (0 when empty).
    fn last_seq(&self) -> u64;
}

struct JournalInner {
    next_seq: u64,
    ring: VecDeque<JournalEvent>,
}

/// The bounded event ring. Recording takes one short mutex (the same
/// discipline as the span [`crate::FlightRecorder`]); eviction counts
/// into `dropped` so a reader can tell retention loss from silence.
pub struct EventJournal {
    node: Mutex<String>,
    capacity: usize,
    inner: Mutex<JournalInner>,
    dropped: std::sync::atomic::AtomicU64,
    spool: Mutex<Option<std::sync::Arc<dyn JournalSpool>>>,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("EventJournal")
            .field("next_seq", &inner.next_seq)
            .field("len", &inner.ring.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl EventJournal {
    /// Creates an empty journal retaining up to `capacity` events.
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal {
            node: Mutex::new(String::new()),
            capacity: capacity.max(1),
            inner: Mutex::new(JournalInner {
                next_seq: 1,
                ring: VecDeque::new(),
            }),
            dropped: std::sync::atomic::AtomicU64::new(0),
            spool: Mutex::new(None),
        }
    }

    /// Sets the node name stamped on subsequent events.
    pub fn set_node(&self, node: &str) {
        *self.node.lock() = node.to_owned();
    }

    /// Installs a durable spool. If the spool already holds events (a
    /// restarted node reopening its log), sequence numbering resumes
    /// *after* the largest persisted sequence so a tailing cursor sees
    /// no regression and no gap.
    pub fn set_spool(&self, spool: std::sync::Arc<dyn JournalSpool>) {
        let last = spool.last_seq();
        {
            let mut inner = self.inner.lock();
            if inner.next_seq <= last {
                inner.next_seq = last + 1;
            }
        }
        *self.spool.lock() = Some(spool);
    }

    /// Records one event at time `at_ns`, returning its sequence number.
    pub fn record(&self, at_ns: u64, kind: JournalKind) -> u64 {
        let node = self.node.lock().clone();
        let (event, evicted) = {
            let mut inner = self.inner.lock();
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let event = JournalEvent {
                seq,
                at_ns,
                node,
                kind,
            };
            inner.ring.push_back(event.clone());
            let evicted = if inner.ring.len() > self.capacity {
                inner.ring.pop_front();
                true
            } else {
                false
            };
            (event, evicted)
        };
        if evicted {
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        if let Some(spool) = self.spool.lock().clone() {
            spool.append(&event);
        }
        event.seq
    }

    /// Events evicted from the ring so far. A reader holding a cursor
    /// older than `oldest_seq` without a spool installed has lost data.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Sequence number the next event will receive.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Events with `seq > after`, oldest first, at most `max`. When the
    /// cursor predates the ring's oldest entry and a spool is installed,
    /// the missing prefix is read back from the spool, so a tail that
    /// spans a restart (or ring eviction) stays gap-free.
    pub fn events_after(&self, after: u64, max: usize) -> Vec<JournalEvent> {
        if max == 0 {
            return Vec::new();
        }
        let (mut out, ring_oldest) = {
            let inner = self.inner.lock();
            let oldest = inner.ring.front().map(|e| e.seq).unwrap_or(u64::MAX);
            let out: Vec<JournalEvent> = inner
                .ring
                .iter()
                .filter(|e| e.seq > after)
                .take(max)
                .cloned()
                .collect();
            (out, oldest)
        };
        if after + 1 < ring_oldest {
            if let Some(spool) = self.spool.lock().clone() {
                let mut prefix = spool.events_after(after, max);
                prefix.retain(|e| e.seq < ring_oldest);
                if !prefix.is_empty() {
                    prefix.extend(out);
                    prefix.truncate(max);
                    out = prefix;
                }
            }
        }
        out
    }

    /// The newest `max` events, oldest first (console rendering).
    pub fn tail(&self, max: usize) -> Vec<JournalEvent> {
        let inner = self.inner.lock();
        let skip = inner.ring.len().saturating_sub(max);
        inner.ring.iter().skip(skip).cloned().collect()
    }
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

// ---------------------------------------------------------------------
// Wire encoding for event batches (the payload of EVENTS_RESPONSE).
// Same length-prefixed pure-std style as `report.rs`: big-endian
// integers, u16-length strings, explicit bounds checks everywhere.
// ---------------------------------------------------------------------

/// Batch encoding version.
const BATCH_VERSION: u8 = 1;

/// Decoding failures for event batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Unknown batch version byte.
    Version(u8),
    /// Structurally invalid bytes.
    Malformed(&'static str),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Version(v) => write!(f, "unknown event batch version {v}"),
            JournalError::Malformed(what) => write!(f, "malformed event batch: {what}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.extend_from_slice(&bytes[..len]);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        if self.buf.len() - self.pos < n {
            return Err(JournalError::Malformed("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, JournalError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, JournalError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, JournalError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| JournalError::Malformed("bad utf-8"))
    }

    /// Guards a declared element count against the bytes that remain.
    fn count(&mut self, min_bytes: usize) -> Result<usize, JournalError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_bytes) > self.buf.len() - self.pos {
            return Err(JournalError::Malformed("count exceeds buffer"));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), JournalError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(JournalError::Malformed("trailing bytes"))
        }
    }
}

fn encode_event(out: &mut Vec<u8>, e: &JournalEvent) {
    put_u64(out, e.seq);
    put_u64(out, e.at_ns);
    put_str(out, &e.node);
    match &e.kind {
        JournalKind::BreakerTransition { shard, state } => {
            out.push(0);
            put_u32(out, *shard);
            out.push(*state);
        }
        JournalKind::RingEpoch { epoch } => {
            out.push(1);
            put_u64(out, *epoch);
        }
        JournalKind::MigrationBegun { shard } => {
            out.push(2);
            put_u32(out, *shard);
        }
        JournalKind::MigrationCompleted { shard, entries } => {
            out.push(3);
            put_u32(out, *shard);
            put_u64(out, *entries);
        }
        JournalKind::StoreCompaction { live, reclaimed } => {
            out.push(4);
            put_u64(out, *live);
            put_u64(out, *reclaimed);
        }
        JournalKind::AlertTransition {
            objective,
            from,
            to,
        } => {
            out.push(5);
            put_str(out, objective);
            out.push(*from);
            out.push(*to);
        }
        JournalKind::Note { text } => {
            out.push(6);
            put_str(out, text);
        }
    }
}

fn decode_event(c: &mut Cursor<'_>) -> Result<JournalEvent, JournalError> {
    let seq = c.u64()?;
    let at_ns = c.u64()?;
    let node = c.string()?;
    let kind = match c.u8()? {
        0 => {
            let shard = c.u32()?;
            let state = c.u8()?;
            if state > 2 {
                return Err(JournalError::Malformed("breaker state out of range"));
            }
            JournalKind::BreakerTransition { shard, state }
        }
        1 => JournalKind::RingEpoch { epoch: c.u64()? },
        2 => JournalKind::MigrationBegun { shard: c.u32()? },
        3 => JournalKind::MigrationCompleted {
            shard: c.u32()?,
            entries: c.u64()?,
        },
        4 => JournalKind::StoreCompaction {
            live: c.u64()?,
            reclaimed: c.u64()?,
        },
        5 => {
            let objective = c.string()?;
            let from = c.u8()?;
            let to = c.u8()?;
            if from > ALERT_RESOLVED || to > ALERT_RESOLVED {
                return Err(JournalError::Malformed("alert state out of range"));
            }
            JournalKind::AlertTransition {
                objective,
                from,
                to,
            }
        }
        6 => JournalKind::Note { text: c.string()? },
        _ => return Err(JournalError::Malformed("unknown event kind")),
    };
    Ok(JournalEvent {
        seq,
        at_ns,
        node,
        kind,
    })
}

/// Serializes a batch of events (the `EVENTS_RESPONSE` payload).
pub fn encode_events(events: &[JournalEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + events.len() * 32);
    out.push(BATCH_VERSION);
    put_u32(&mut out, events.len() as u32);
    for e in events {
        encode_event(&mut out, e);
    }
    out
}

/// Parses a batch of events, rejecting hostile counts, truncation, and
/// trailing garbage.
pub fn decode_events(bytes: &[u8]) -> Result<Vec<JournalEvent>, JournalError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    let version = c.u8()?;
    if version != BATCH_VERSION {
        return Err(JournalError::Version(version));
    }
    // Smallest event: seq(8) + at_ns(8) + node len(2) + tag(1) + one
    // more byte of kind payload.
    let n = c.count(19)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(decode_event(&mut c)?);
    }
    c.finish()?;
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_kinds() -> Vec<JournalKind> {
        vec![
            JournalKind::BreakerTransition { shard: 2, state: 1 },
            JournalKind::RingEpoch { epoch: 7 },
            JournalKind::MigrationBegun { shard: 3 },
            JournalKind::MigrationCompleted {
                shard: 3,
                entries: 41,
            },
            JournalKind::StoreCompaction {
                live: 100,
                reclaimed: 4096,
            },
            JournalKind::AlertTransition {
                objective: "error-ratio".into(),
                from: ALERT_OK,
                to: ALERT_FIRING,
            },
            JournalKind::Note {
                text: "operator note".into(),
            },
        ]
    }

    #[test]
    fn sequences_increase_and_batches_round_trip() {
        let j = EventJournal::new(64);
        j.set_node("shard0");
        let mut last = 0;
        for (i, kind) in sample_kinds().into_iter().enumerate() {
            let seq = j.record(i as u64 * 10, kind);
            assert!(seq > last);
            last = seq;
        }
        let events = j.events_after(0, 100);
        assert_eq!(events.len(), 7);
        let bytes = encode_events(&events);
        let back = decode_events(&bytes).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn cursor_tail_is_exact() {
        let j = EventJournal::new(64);
        for i in 0..10u64 {
            j.record(i, JournalKind::RingEpoch { epoch: i });
        }
        let first = j.events_after(0, 4);
        assert_eq!(
            first.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        let rest = j.events_after(first.last().unwrap().seq, 100);
        assert_eq!(
            rest.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (5..=10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn eviction_counts_dropped() {
        let j = EventJournal::new(4);
        for i in 0..10u64 {
            j.record(i, JournalKind::RingEpoch { epoch: i });
        }
        assert_eq!(j.dropped(), 6);
        let events = j.events_after(0, 100);
        assert_eq!(events.first().unwrap().seq, 7);
    }

    struct MemSpool(Mutex<Vec<JournalEvent>>);

    impl JournalSpool for MemSpool {
        fn append(&self, event: &JournalEvent) {
            self.0.lock().push(event.clone());
        }
        fn events_after(&self, after: u64, max: usize) -> Vec<JournalEvent> {
            self.0
                .lock()
                .iter()
                .filter(|e| e.seq > after)
                .take(max)
                .cloned()
                .collect()
        }
        fn last_seq(&self) -> u64 {
            self.0.lock().last().map(|e| e.seq).unwrap_or(0)
        }
    }

    #[test]
    fn spool_backfills_evicted_prefix_and_resumes_seq() {
        let spool = Arc::new(MemSpool(Mutex::new(Vec::new())));
        let j = EventJournal::new(3);
        j.set_spool(spool.clone());
        for i in 0..8u64 {
            j.record(i, JournalKind::RingEpoch { epoch: i });
        }
        // Ring holds 6..8; cursor 0 must still see 1..8 via the spool.
        let events = j.events_after(0, 100);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (1..=8).collect::<Vec<_>>()
        );
        // A "restarted" journal over the same spool continues numbering.
        let j2 = EventJournal::new(3);
        j2.set_spool(spool);
        let seq = j2.record(
            99,
            JournalKind::Note {
                text: "back".into(),
            },
        );
        assert_eq!(seq, 9);
        let resumed = j2.events_after(4, 100);
        assert_eq!(
            resumed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (5..=9).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hostile_batches_are_rejected() {
        assert!(decode_events(&[]).is_err());
        assert!(decode_events(&[9]).is_err()); // unknown version
                                               // Hostile count: claims 4 billion events in 8 bytes.
        let mut b = vec![BATCH_VERSION];
        b.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_events(&b).is_err());
        // Trailing garbage after a valid batch.
        let mut ok = encode_events(&[JournalEvent {
            seq: 1,
            at_ns: 2,
            node: "n".into(),
            kind: JournalKind::RingEpoch { epoch: 3 },
        }]);
        let valid = ok.clone();
        assert!(decode_events(&valid).is_ok());
        ok.push(0);
        assert!(decode_events(&ok).is_err());
        // Truncation at every cut is an error, never a panic.
        for cut in 0..valid.len() {
            assert!(decode_events(&valid[..cut]).is_err());
        }
    }
}
