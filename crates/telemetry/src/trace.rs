//! Distributed request tracing: ids, spans, and the flight recorder.
//!
//! A trace is born at the client (one [`TraceId`] per logical fetch),
//! carried across the wire in the frame protocol's optional trace field,
//! and materialized as [`Span`]s recorded wherever work happens — the
//! client's fetch, the cluster client's ring route, the shard's serve
//! loop, each proxy pipeline stage, the origin fetch. Every process
//! keeps its recent spans in a fixed-size [`FlightRecorder`] ring
//! buffer; the stats plane dumps them on demand and a reader joins the
//! per-node dumps on `TraceId` to reconstruct end-to-end request
//! anatomy.
//!
//! Span timestamps are nanoseconds on the recorder's own monotonic
//! clock ([`FlightRecorder::now_ns`]). Clocks are *not* synchronized
//! across processes — within one node spans nest exactly; across nodes
//! only durations and parent/child edges are meaningful. That is the
//! honest contract of real distributed tracing, reproduced here.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Default flight-recorder capacity, in spans.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// SplitMix64: the id mixer (also used by the cluster's hash ring).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Process-global id source: a counter mixed through SplitMix64, seeded
/// once from the wall clock so two processes on one host do not collide.
fn next_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static SEED: AtomicU64 = AtomicU64::new(0);
    let mut seed = SEED.load(Ordering::Relaxed);
    if seed == 0 {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        // A stack address contributes per-process entropy beyond clock
        // resolution; the race on first store is benign (either wins).
        let local = 0u8;
        seed = (t ^ ((&local as *const u8 as u64) << 16)) | 1;
        SEED.store(seed, Ordering::Relaxed);
    }
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    // Never produce the reserved 0.
    splitmix64(seed.wrapping_add(n)) | 1
}

/// Identifies one end-to-end request across every process it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Generates a fresh, non-zero trace id.
    pub fn generate() -> TraceId {
        TraceId(next_id())
    }
}

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The reserved "no parent" id (roots carry it as their parent).
    pub const NONE: SpanId = SpanId(0);

    /// Generates a fresh, non-zero span id.
    pub fn generate() -> SpanId {
        SpanId(next_id())
    }
}

/// The propagated context: which trace a request belongs to and which
/// span caused it. This is the payload of the wire protocol's optional
/// trace field; receivers parent their spans under `parent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The end-to-end request id.
    pub trace: TraceId,
    /// The span on the sending side that caused this request.
    pub parent: SpanId,
}

/// One completed unit of traced work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Causal parent ([`SpanId::NONE`] for roots).
    pub parent: SpanId,
    /// Operation name, e.g. `"proxy.stage.verify"`.
    pub name: String,
    /// Node that recorded the span (stamped by the recorder).
    pub node: String,
    /// Start, in nanoseconds on the recording node's monotonic clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
}

/// A fixed-size ring buffer of recent spans: always-on tracing whose
/// memory is bounded no matter how long the process runs. When full, the
/// oldest span is evicted and counted in [`FlightRecorder::dropped`].
#[derive(Debug)]
pub struct FlightRecorder {
    node: Mutex<String>,
    epoch: Instant,
    ring: Mutex<VecDeque<Span>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder retaining up to `capacity` spans.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            node: Mutex::new(String::new()),
            epoch: Instant::now(),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1 << 16))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Names the node stamped on recorded spans (set once at wiring).
    pub fn set_node(&self, node: &str) {
        *self.node.lock() = node.to_owned();
    }

    /// Nanoseconds since this recorder's epoch (monotonic). Span starts
    /// and the durations derived from them use this clock.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records a completed span with an explicit id (allocate the id
    /// first with [`SpanId::generate`] when children must reference it
    /// before the parent finishes).
    pub fn record_span(
        &self,
        trace: TraceId,
        id: SpanId,
        parent: SpanId,
        name: &str,
        start_ns: u64,
        duration_ns: u64,
    ) {
        let span = Span {
            trace,
            id,
            parent,
            name: name.to_owned(),
            node: self.node.lock().clone(),
            start_ns,
            duration_ns,
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// Convenience: records a span that started at `start_ns` and ends
    /// now, under a fresh id, returning that id.
    pub fn finish_span(&self, trace: TraceId, parent: SpanId, name: &str, start_ns: u64) -> SpanId {
        let id = SpanId::generate();
        let duration = self.now_ns().saturating_sub(start_ns);
        self.record_span(trace, id, parent, name, start_ns, duration);
        id
    }

    /// The retained window, oldest first.
    pub fn dump(&self) -> Vec<Span> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Retained spans belonging to `trace`, oldest first.
    pub fn for_trace(&self, trace: TraceId) -> Vec<Span> {
        self.ring
            .lock()
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// Spans evicted to the capacity bound since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Retained span count.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// The recorder's capacity, in spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = TraceId::generate().0;
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        let t = TraceId::generate();
        for i in 0..5u64 {
            rec.record_span(t, SpanId(i + 1), SpanId::NONE, &format!("s{i}"), i, 1);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let names: Vec<String> = rec.dump().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["s2", "s3", "s4"]);
    }

    #[test]
    fn for_trace_filters_and_preserves_order() {
        let rec = FlightRecorder::new(16);
        let a = TraceId::generate();
        let b = TraceId::generate();
        rec.record_span(a, SpanId(1), SpanId::NONE, "a1", 0, 1);
        rec.record_span(b, SpanId(2), SpanId::NONE, "b1", 1, 1);
        rec.record_span(a, SpanId(3), SpanId(1), "a2", 2, 1);
        let spans = rec.for_trace(a);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a1");
        assert_eq!(spans[1].name, "a2");
        assert_eq!(spans[1].parent, SpanId(1));
    }

    #[test]
    fn finish_span_measures_a_nonnegative_duration() {
        let rec = FlightRecorder::new(4);
        rec.set_node("n");
        let t0 = rec.now_ns();
        let t = TraceId::generate();
        let id = rec.finish_span(t, SpanId::NONE, "work", t0);
        let spans = rec.dump();
        assert_eq!(spans[0].id, id);
        assert_eq!(spans[0].node, "n");
        assert_eq!(spans[0].start_ns, t0);
    }
}
