//! The client side of the wire: `NetClassProvider` and `RemoteConsole`.
//!
//! `NetClassProvider` implements `dvm_jvm::ClassProvider` over a live
//! TCP connection to a [`crate::ProxyServer`], with connect/read
//! timeouts, bounded retries with exponential backoff, and signature
//! verification on receipt — so a `DvmClient` runs against an
//! in-process proxy or a socket with one constructor change.
//!
//! `RemoteConsole` is the audit side: a second connection streaming
//! `AUDIT_EVENT` frames to the console, fire-and-forget with a single
//! reconnect attempt, since audit delivery must never block execution.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dvm_jvm::ClassProvider;
use dvm_monitor::{AuditSink, AuditSpool, EventKind, SiteId};
use dvm_proxy::{ServedFrom, SignatureCheck, Signer};
use dvm_telemetry::events::decode_events;
use dvm_telemetry::{JournalEvent, SpanId, StatsReport, Telemetry, TraceContext, TraceId};

use crate::frame::{kind_to_u8, ErrorCode, Frame, FrameError, Hello};

/// Client networking knobs.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for reading one response.
    pub read_timeout: Duration,
    /// Deadline for writing one request.
    pub write_timeout: Duration,
    /// Total attempts per fetch (first try plus retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff_base: Duration,
    /// Cap on the per-retry backoff.
    pub backoff_max: Duration,
    /// Seed for the deterministic backoff jitter. Each provider mixes
    /// this with a hash of its user name, so a fleet of clients kicked
    /// off by the same fault retries decorrelated rather than in
    /// lockstep — yet any given (seed, user) pair replays identically.
    pub jitter_seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_attempts: 4,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(200),
            jitter_seed: 0,
        }
    }
}

impl NetConfig {
    fn backoff_for(&self, retry: u32) -> Duration {
        let exp = self.backoff_base.saturating_mul(1u32 << retry.min(16));
        exp.min(self.backoff_max)
    }
}

/// FNV-1a over `bytes`: mixes the user name into the jitter seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read, or write).
    Io(std::io::ErrorKind, String),
    /// The connection died mid-frame: part of a response arrived and the
    /// stream then closed. Distinct from a clean close (`Io`) because it
    /// proves a message was cut in half — retryable, but never
    /// confusable with an orderly EOF.
    Truncated {
        /// Bytes of the frame that arrived before the cut.
        got: usize,
        /// Declared frame size, when the length prefix survived.
        expected: Option<usize>,
    },
    /// The peer sent bytes that do not parse as a frame.
    Frame(FrameError),
    /// The peer sent a well-formed frame that violates the protocol
    /// state machine (e.g. a response for a different request).
    Protocol(String),
    /// The server answered with a typed error frame.
    Remote {
        /// Failure category.
        code: ErrorCode,
        /// Server-side detail.
        message: String,
    },
    /// The payload's keyed signature did not verify.
    BadSignature,
    /// All attempts exhausted; wraps the last error.
    Exhausted(Box<NetError>),
}

impl NetError {
    /// True when the failure came from the transport (socket errors and
    /// mid-frame truncations) rather than from what the peer said.
    pub fn is_transport(&self) -> bool {
        match self {
            NetError::Io(..) | NetError::Truncated { .. } => true,
            NetError::Frame(e) => e.is_transport(),
            _ => false,
        }
    }

    /// True when the server rejected the connection or request because
    /// it is at capacity — retryable here (with backoff), and the signal
    /// a cluster client uses to fail over to another shard immediately.
    pub fn is_overload(&self) -> bool {
        match self {
            NetError::Remote { code, .. } => *code == ErrorCode::Overloaded,
            NetError::Exhausted(inner) => inner.is_overload(),
            _ => false,
        }
    }

    /// True when the *stream itself* can no longer be trusted: the peer's
    /// bytes failed to parse, violated the protocol state machine, or
    /// carried an invalid signature. Any of these means the connection is
    /// desynchronized or the link corrupted what crossed it — the only
    /// safe response is to discard the connection and retry on a fresh
    /// one, where signature verification again gates what is delivered.
    pub fn is_integrity(&self) -> bool {
        match self {
            NetError::BadSignature | NetError::Protocol(_) => true,
            NetError::Frame(e) => !e.is_transport(),
            _ => false,
        }
    }

    /// True for failures worth retrying on the *same* endpoint:
    /// transport errors, typed overload rejections, and integrity
    /// failures (corrupted or desynchronized streams, retried on a
    /// fresh connection).
    pub fn is_retryable(&self) -> bool {
        self.is_transport() || self.is_overload() || self.is_integrity()
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(kind, e) => write!(f, "transport ({kind:?}): {e}"),
            NetError::Truncated { got, expected } => match expected {
                Some(want) => write!(f, "response truncated mid-frame: {got} of {want} bytes"),
                None => write!(
                    f,
                    "response truncated inside the length prefix: {got} bytes"
                ),
            },
            NetError::Frame(e) => write!(f, "{e}"),
            NetError::Protocol(d) => write!(f, "protocol violation: {d}"),
            NetError::Remote { code, message } => write!(f, "server error {code:?}: {message}"),
            NetError::BadSignature => write!(f, "signature verification failed"),
            NetError::Exhausted(e) => write!(f, "retries exhausted: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e.kind(), e.to_string())
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> NetError {
        match e {
            FrameError::Truncated { got, expected } => NetError::Truncated { got, expected },
            other => NetError::Frame(other),
        }
    }
}

/// One successful code transfer, as observed by the client.
#[derive(Debug, Clone)]
pub struct NetTransfer {
    /// The URL that was fetched.
    pub url: String,
    /// Payload size after signature removal.
    pub bytes: usize,
    /// Which proxy tier satisfied the request.
    pub served_from: ServedFrom,
    /// Simulated proxy processing time in nanoseconds.
    pub processing_ns: u64,
    /// The `ir://` cache key for this payload's compiled-IR package
    /// (derived from the signed bytes as served; `None` for `ir://`
    /// fetches themselves).
    pub ir_key: Option<String>,
}

/// Counters for one provider's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetClientStats {
    /// Fetches attempted (one per `fetch` call).
    pub requests: u64,
    /// Individual retry attempts after a transport failure.
    pub retries: u64,
    /// Fresh connections established (first connect included).
    pub reconnects: u64,
    /// Payloads whose signature failed to verify.
    pub signature_failures: u64,
    /// Payload bytes received (after signature removal).
    pub bytes_received: u64,
}

struct Conn {
    stream: TcpStream,
    session: u64,
}

/// Observer invoked once per successful transfer.
pub type TransferHook = Box<dyn FnMut(&NetTransfer) + Send>;

/// Observer invoked with each fetched compiled-IR package: the class
/// name and the verified IR payload. Installed by `DvmClient`, which
/// decodes and installs the package into its VM's execution tier.
pub type IrHook = Box<dyn FnMut(&str, &[u8]) + Send>;

/// A `ClassProvider` fetching rewritten classes over TCP.
pub struct NetClassProvider {
    addr: SocketAddr,
    hello: Hello,
    config: NetConfig,
    signer: Option<Signer>,
    conn: Option<Conn>,
    next_request: u32,
    stats: NetClientStats,
    hook: Option<TransferHook>,
    ir_hook: Option<IrHook>,
    jitter: StdRng,
    telemetry: Arc<Telemetry>,
}

impl std::fmt::Debug for NetClassProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClassProvider")
            .field("addr", &self.addr)
            .field("user", &self.hello.user)
            .field("connected", &self.conn.is_some())
            .finish()
    }
}

impl NetClassProvider {
    /// Creates a provider for the server at `addr`; the connection is
    /// established lazily on first use.
    ///
    /// `signer` holds the organization's key: when present, every
    /// payload must carry a valid signature or the fetch fails with
    /// [`NetError::BadSignature`].
    pub fn new(
        addr: impl ToSocketAddrs,
        hello: Hello,
        signer: Option<Signer>,
        config: NetConfig,
    ) -> std::io::Result<NetClassProvider> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address resolved")
        })?;
        let jitter = StdRng::seed_from_u64(config.jitter_seed ^ fnv1a(hello.user.as_bytes()));
        let telemetry = Arc::new(Telemetry::new(&format!("client:{}", hello.user)));
        Ok(NetClassProvider {
            addr,
            hello,
            config,
            signer,
            conn: None,
            next_request: 1,
            stats: NetClientStats::default(),
            hook: None,
            ir_hook: None,
            jitter,
            telemetry,
        })
    }

    /// This provider's telemetry plane (traces root here; counters for
    /// requests, retries, and backoffs land here).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.telemetry.clone()
    }

    /// Shares an externally owned telemetry plane (a cluster client
    /// passes one plane to every per-shard provider so the client side
    /// reports as one node).
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = telemetry;
    }

    /// The deterministic jittered backoff before retry number `retry`:
    /// uniform in `[d/2, d]` where `d` is the capped exponential delay,
    /// drawn from this provider's seeded generator. Jitter breaks the
    /// lockstep a shared fault would otherwise impose on every client
    /// retrying with identical exponential schedules.
    fn jittered_backoff(&mut self, retry: u32) -> Duration {
        let full = self.config.backoff_for(retry);
        let ns = full.as_nanos() as u64;
        if ns == 0 {
            return full;
        }
        let low = ns / 2;
        Duration::from_nanos(low + self.jitter.gen_range(0..=(ns - low)))
    }

    /// Installs an observer called once per successful transfer (used by
    /// `DvmClient` to account network costs).
    pub fn set_transfer_hook(&mut self, hook: TransferHook) {
        self.hook = Some(hook);
    }

    /// Enables the optimizing-tier side channel: after every class
    /// fetch, the provider also requests the class's `ir://` package and
    /// feeds the verified payload to `hook`. A proxy without an IR
    /// producer answers `NOT_FOUND`, which is silently tolerated — the
    /// class simply stays on the interpreter tier.
    pub fn set_ir_hook(&mut self, hook: IrHook) {
        self.ir_hook = Some(hook);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetClientStats {
        self.stats
    }

    /// The session id from the most recent handshake, if connected.
    pub fn session(&self) -> Option<u64> {
        self.conn.as_ref().map(|c| c.session)
    }

    /// Sends an orderly `BYE` and closes the connection.
    pub fn close(&mut self) {
        if let Some(mut conn) = self.conn.take() {
            let _ = Frame::Bye.write_to(&mut conn.stream);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn connect(&mut self) -> Result<(), NetError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let _ = stream.set_nodelay(true);
        let mut conn = Conn { stream, session: 0 };
        Frame::Hello(self.hello.clone()).write_to(&mut conn.stream)?;
        match Frame::read_from(&mut conn.stream)? {
            Frame::Welcome { session } => conn.session = session,
            Frame::Error { code, message, .. } => return Err(NetError::Remote { code, message }),
            other => {
                return Err(NetError::Protocol(format!(
                    "expected WELCOME, got {other:?}"
                )))
            }
        }
        self.stats.reconnects += 1;
        self.conn = Some(conn);
        Ok(())
    }

    /// Fetches `url` through the proxy, retrying transport failures and
    /// typed overload rejections with jittered exponential backoff, and
    /// returns the verified payload.
    ///
    /// Every fetch is the root of a fresh distributed trace: a
    /// `client.fetch` span is recorded here and its context rides the
    /// `CODE_REQUEST` so the server's spans stitch under it.
    pub fn fetch(&mut self, url: &str) -> Result<(Vec<u8>, NetTransfer), NetError> {
        self.stats.requests += 1;
        self.telemetry
            .registry()
            .counter("net.client.requests")
            .inc();
        let trace = TraceId::generate();
        let root = SpanId::generate();
        let recorder = self.telemetry.recorder();
        let start = recorder.now_ns();
        let ctx = TraceContext {
            trace,
            parent: root,
        };
        let result = self.fetch_with_retries(url, Some(ctx));
        let recorder = self.telemetry.recorder();
        let duration = recorder.now_ns().saturating_sub(start);
        recorder.record_span(trace, root, SpanId::NONE, "client.fetch", start, duration);
        self.telemetry
            .registry()
            .histogram("net.client.fetch_ns")
            .record(duration);
        result
    }

    fn fetch_with_retries(
        &mut self,
        url: &str,
        trace: Option<TraceContext>,
    ) -> Result<(Vec<u8>, NetTransfer), NetError> {
        let mut last: Option<NetError> = None;
        for retry in 0..self.config.max_attempts.max(1) {
            if retry > 0 {
                self.stats.retries += 1;
                self.telemetry
                    .registry()
                    .counter("net.client.retries")
                    .inc();
                let delay = self.jittered_backoff(retry - 1);
                self.telemetry
                    .registry()
                    .counter("net.client.backoff_ns")
                    .add(delay.as_nanos() as u64);
                std::thread::sleep(delay);
            }
            match self.fetch_once(url, trace) {
                Ok(ok) => return Ok(ok),
                Err(e) if e.is_retryable() => {
                    // The connection is suspect (dropped, or the server
                    // turned us away at the door); rebuild it next try.
                    self.conn = None;
                    if e.is_overload() {
                        self.telemetry
                            .registry()
                            .counter("net.client.overloads")
                            .inc();
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        self.telemetry
            .registry()
            .counter("net.client.exhausted")
            .inc();
        Err(NetError::Exhausted(Box::new(
            last.unwrap_or(NetError::Protocol("no attempts made".into())),
        )))
    }

    /// One fetch attempt, no retries and no backoff: the building block
    /// a cluster client uses so a retryable failure (transport drop or
    /// typed overload) triggers immediate failover to another shard
    /// instead of a same-endpoint retry loop. The suspect connection is
    /// discarded so a later attempt reconnects cleanly.
    pub fn fetch_attempt(&mut self, url: &str) -> Result<(Vec<u8>, NetTransfer), NetError> {
        self.fetch_attempt_traced(url, None)
    }

    /// [`NetClassProvider::fetch_attempt`] carrying an existing trace
    /// context (the cluster client roots the trace itself so failover
    /// hops across shards stay in one trace).
    pub fn fetch_attempt_traced(
        &mut self,
        url: &str,
        trace: Option<TraceContext>,
    ) -> Result<(Vec<u8>, NetTransfer), NetError> {
        self.stats.requests += 1;
        self.telemetry
            .registry()
            .counter("net.client.requests")
            .inc();
        match self.fetch_once(url, trace) {
            Ok(ok) => Ok(ok),
            Err(e) => {
                if e.is_retryable() {
                    self.conn = None;
                }
                Err(e)
            }
        }
    }

    fn fetch_once(
        &mut self,
        url: &str,
        trace: Option<TraceContext>,
    ) -> Result<(Vec<u8>, NetTransfer), NetError> {
        if self.conn.is_none() {
            self.connect()?;
        }
        let request_id = self.next_request;
        self.next_request = self.next_request.wrapping_add(1).max(1);
        let native_format = self.hello.native_format.clone();
        let conn = self.conn.as_mut().expect("connected above");
        Frame::CodeRequest {
            request_id,
            session: conn.session,
            url: url.to_owned(),
            native_format,
            trace,
        }
        .write_to(&mut conn.stream)?;
        match Frame::read_from(&mut conn.stream)? {
            Frame::CodeResponse {
                request_id: rid,
                served_from,
                processing_ns,
                bytes,
            } => {
                if rid != request_id {
                    return Err(NetError::Protocol(format!(
                        "response id {rid} for request {request_id}"
                    )));
                }
                // Derive the compiled-IR key from the bytes exactly as
                // served (signature included) — the same digest the
                // proxy keyed the package under at rewrite time.
                let ir_key = if url.starts_with(dvm_proxy::IR_SCHEME) {
                    None
                } else {
                    Some(dvm_proxy::ir_key(&bytes))
                };
                let payload = match &self.signer {
                    Some(signer) => match signer.detach(&bytes) {
                        (SignatureCheck::Valid, Some(payload)) => payload.to_vec(),
                        _ => {
                            self.stats.signature_failures += 1;
                            return Err(NetError::BadSignature);
                        }
                    },
                    None => bytes,
                };
                self.stats.bytes_received += payload.len() as u64;
                let transfer = NetTransfer {
                    url: url.to_owned(),
                    bytes: payload.len(),
                    served_from,
                    processing_ns,
                    ir_key,
                };
                if let Some(hook) = &mut self.hook {
                    hook(&transfer);
                }
                Ok((payload, transfer))
            }
            Frame::Error {
                request_id: rid,
                code,
                message,
            } => {
                if rid != 0 && rid != request_id {
                    return Err(NetError::Protocol(format!(
                        "error for request {rid}, expected {request_id}"
                    )));
                }
                Err(NetError::Remote { code, message })
            }
            other => Err(NetError::Protocol(format!(
                "expected CODE_RESPONSE, got {other:?}"
            ))),
        }
    }
}

impl ClassProvider for NetClassProvider {
    fn load(&mut self, name: &str) -> Option<Vec<u8>> {
        let url = format!("class://{name}");
        let (bytes, transfer) = self.fetch(&url).ok()?;
        if self.ir_hook.is_some() {
            if let Some(key) = transfer.ir_key.clone() {
                self.telemetry
                    .registry()
                    .counter("net.client.ir_requests")
                    .inc();
                if let Ok((ir, _)) = self.fetch(&key) {
                    self.telemetry
                        .registry()
                        .counter("net.client.ir_fetches")
                        .inc();
                    if let Some(hook) = &mut self.ir_hook {
                        hook(name, &ir);
                    }
                }
            }
        }
        Some(bytes)
    }
}

/// Pulls a live server's telemetry over the stats plane: connect,
/// handshake, send one `STATS_REQUEST`, decode the `STATS_RESPONSE`.
///
/// Any client of the wire protocol can do this against any
/// `ProxyServer` — it is how the fleet console and the cluster's
/// aggregation observe shards they did not start.
pub fn fetch_stats(
    addr: impl ToSocketAddrs,
    hello: Hello,
    config: NetConfig,
    include_spans: bool,
) -> Result<StatsReport, NetError> {
    let addr = addr
        .to_socket_addrs()
        .map_err(NetError::from)?
        .next()
        .ok_or_else(|| {
            NetError::Io(
                std::io::ErrorKind::AddrNotAvailable,
                "no address resolved".into(),
            )
        })?;
    let mut stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let _ = stream.set_nodelay(true);
    Frame::Hello(hello).write_to(&mut stream)?;
    match Frame::read_from(&mut stream)? {
        Frame::Welcome { .. } => {}
        Frame::Error { code, message, .. } => return Err(NetError::Remote { code, message }),
        other => {
            return Err(NetError::Protocol(format!(
                "expected WELCOME, got {other:?}"
            )))
        }
    }
    Frame::StatsRequest {
        request_id: 1,
        include_spans,
    }
    .write_to(&mut stream)?;
    let report = match Frame::read_from(&mut stream)? {
        Frame::StatsResponse { request_id, report } => {
            if request_id != 1 {
                return Err(NetError::Protocol(format!(
                    "stats response id {request_id}, expected 1"
                )));
            }
            StatsReport::decode(&report)
                .map_err(|e| NetError::Protocol(format!("undecodable stats report: {e}")))?
        }
        Frame::Error { code, message, .. } => return Err(NetError::Remote { code, message }),
        other => {
            return Err(NetError::Protocol(format!(
                "expected STATS_RESPONSE, got {other:?}"
            )))
        }
    };
    let _ = Frame::Bye.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    Ok(report)
}

/// One-frame helper connections for the continuous-observability
/// planes: handshake, send one request, decode one response, `BYE`.
fn observe_connect(
    addr: impl ToSocketAddrs,
    hello: Hello,
    config: &NetConfig,
) -> Result<TcpStream, NetError> {
    let addr = addr
        .to_socket_addrs()
        .map_err(NetError::from)?
        .next()
        .ok_or_else(|| {
            NetError::Io(
                std::io::ErrorKind::AddrNotAvailable,
                "no address resolved".into(),
            )
        })?;
    let mut stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let _ = stream.set_nodelay(true);
    Frame::Hello(hello).write_to(&mut stream)?;
    match Frame::read_from(&mut stream)? {
        Frame::Welcome { .. } => Ok(stream),
        Frame::Error { code, message, .. } => Err(NetError::Remote { code, message }),
        other => Err(NetError::Protocol(format!(
            "expected WELCOME, got {other:?}"
        ))),
    }
}

/// Scrapes a server's Prometheus-text metrics exposition over the wire
/// protocol (`METRICS_SCRAPE`/`METRICS_TEXT`).
pub fn fetch_metrics_text(
    addr: impl ToSocketAddrs,
    hello: Hello,
    config: NetConfig,
) -> Result<String, NetError> {
    let mut stream = observe_connect(addr, hello, &config)?;
    Frame::MetricsScrape { request_id: 1 }.write_to(&mut stream)?;
    let text = match Frame::read_from(&mut stream)? {
        Frame::MetricsText { request_id, text } => {
            if request_id != 1 {
                return Err(NetError::Protocol(format!(
                    "metrics response id {request_id}, expected 1"
                )));
            }
            String::from_utf8(text)
                .map_err(|_| NetError::Protocol("exposition is not UTF-8".into()))?
        }
        Frame::Error { code, message, .. } => return Err(NetError::Remote { code, message }),
        other => {
            return Err(NetError::Protocol(format!(
                "expected METRICS_TEXT, got {other:?}"
            )))
        }
    };
    let _ = Frame::Bye.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    Ok(text)
}

/// Tails a server's event journal: events with `seq > after_seq` (at
/// most `max`), plus the cursor to pass next time. An unchanged cursor
/// with no events means the tail is caught up.
pub fn fetch_events(
    addr: impl ToSocketAddrs,
    hello: Hello,
    config: NetConfig,
    after_seq: u64,
    max: u32,
) -> Result<(Vec<JournalEvent>, u64), NetError> {
    let mut stream = observe_connect(addr, hello, &config)?;
    Frame::EventsRequest {
        request_id: 1,
        after_seq,
        max,
    }
    .write_to(&mut stream)?;
    let page = match Frame::read_from(&mut stream)? {
        Frame::EventsResponse {
            request_id,
            next_seq,
            events,
        } => {
            if request_id != 1 {
                return Err(NetError::Protocol(format!(
                    "events response id {request_id}, expected 1"
                )));
            }
            let events = decode_events(&events)
                .map_err(|e| NetError::Protocol(format!("undecodable event batch: {e}")))?;
            (events, next_seq)
        }
        Frame::Error { code, message, .. } => return Err(NetError::Remote { code, message }),
        other => {
            return Err(NetError::Protocol(format!(
                "expected EVENTS_RESPONSE, got {other:?}"
            )))
        }
    };
    let _ = Frame::Bye.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    Ok(page)
}

impl Drop for NetClassProvider {
    fn drop(&mut self) {
        self.close();
    }
}

/// An [`AuditSink`] streaming events to the console over its own
/// connection.
///
/// Delivery is fire-and-forget: a failed send triggers one reconnect
/// attempt and otherwise increments [`RemoteConsole::dropped`], because
/// auditing must never stall the mutator. Drops are *not* silent: each
/// one counts into the `audit_dropped_total` telemetry counter, and the
/// first failure on any given connection is logged to stderr so an
/// operator learns the audit trail has a hole without grepping metrics.
pub struct RemoteConsole {
    addr: SocketAddr,
    hello: Hello,
    config: NetConfig,
    conn: Option<Conn>,
    sent: u64,
    dropped: u64,
    /// Events diverted to the durable spool instead of being dropped.
    spooled: u64,
    /// Spooled events later delivered by a replay.
    replayed: u64,
    spool: Option<AuditSpool>,
    telemetry: Arc<Telemetry>,
    /// True once this connection's first delivery failure was logged
    /// (reset on reconnect, so each connection logs at most once).
    failure_logged: bool,
}

impl std::fmt::Debug for RemoteConsole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteConsole")
            .field("addr", &self.addr)
            .field("sent", &self.sent)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl RemoteConsole {
    /// Connects an audit channel to the server at `addr`, performing the
    /// handshake immediately so the session exists before any event.
    pub fn connect(
        addr: impl ToSocketAddrs,
        hello: Hello,
        config: NetConfig,
    ) -> Result<RemoteConsole, NetError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(NetError::from)?
            .next()
            .ok_or_else(|| {
                NetError::Io(
                    std::io::ErrorKind::AddrNotAvailable,
                    "no address resolved".into(),
                )
            })?;
        let telemetry = Arc::new(Telemetry::new(&format!("audit:{}", hello.user)));
        let mut console = RemoteConsole {
            addr,
            hello,
            config,
            conn: None,
            sent: 0,
            dropped: 0,
            spooled: 0,
            replayed: 0,
            spool: None,
            telemetry,
            failure_logged: false,
        };
        console.reconnect()?;
        Ok(console)
    }

    /// This console's telemetry plane (`audit_dropped_total` lives
    /// here).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.telemetry.clone()
    }

    /// Shares an externally owned telemetry plane so audit-drop counts
    /// land beside the owning client's other metrics.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = telemetry;
    }

    fn reconnect(&mut self) -> Result<(), NetError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let _ = stream.set_nodelay(true);
        let mut conn = Conn { stream, session: 0 };
        Frame::Hello(self.hello.clone()).write_to(&mut conn.stream)?;
        match Frame::read_from(&mut conn.stream)? {
            Frame::Welcome { session } => conn.session = session,
            other => {
                return Err(NetError::Protocol(format!(
                    "expected WELCOME, got {other:?}"
                )))
            }
        }
        self.conn = Some(conn);
        self.failure_logged = false;
        Ok(())
    }

    /// The audit session id, if connected.
    pub fn session(&self) -> Option<u64> {
        self.conn.as_ref().map(|c| c.session)
    }

    /// Events successfully written to the socket.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Events abandoned after a failed send and reconnect.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Attaches a durable spool: from now on, events that fail to reach
    /// the console are persisted (in order) instead of dropped, and
    /// replayed — still in order — once the console answers again.
    /// Replayed events carry the session id of the connection that
    /// delivers them, not the one that failed; the console's log keys
    /// events by site, so ordering is what matters.
    pub fn set_spool(&mut self, spool: AuditSpool) {
        self.spool = Some(spool);
    }

    /// Events diverted into the spool so far.
    pub fn spooled(&self) -> u64 {
        self.spooled
    }

    /// Spooled events later delivered by a replay.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Events currently waiting in the spool.
    pub fn spool_backlog(&self) -> usize {
        self.spool.as_ref().map_or(0, |s| s.len())
    }

    /// Drains the spool through the current connection, oldest first,
    /// stopping at the first failed send. Returns how many delivered.
    fn drain_spool(&mut self) -> u64 {
        let Some(mut spool) = self.spool.take() else {
            return 0;
        };
        let delivered = spool
            .replay(|site, kind| self.try_send(site, kind))
            .unwrap_or(0);
        self.spool = Some(spool);
        if delivered > 0 {
            self.sent += delivered;
            self.replayed += delivered;
            self.telemetry
                .registry()
                .counter("audit_replayed_total")
                .add(delivered);
        }
        delivered
    }

    /// Spools `site`/`kind`, or reports `false` when there is no spool
    /// (or the spool itself fails) so the caller counts a drop.
    fn spool_event(&mut self, site: SiteId, kind: EventKind) -> bool {
        let pushed = match &mut self.spool {
            Some(spool) => spool.push(site, kind).is_ok(),
            None => false,
        };
        if pushed {
            self.spooled += 1;
            self.telemetry
                .registry()
                .counter("audit_spooled_total")
                .inc();
        }
        pushed
    }

    /// Sends an orderly `BYE` and closes the channel.
    pub fn close(&mut self) {
        if let Some(mut conn) = self.conn.take() {
            let _ = Frame::Bye.write_to(&mut conn.stream);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn try_send(&mut self, site: SiteId, kind: EventKind) -> bool {
        let Some(conn) = self.conn.as_mut() else {
            return false;
        };
        let frame = Frame::AuditEvent {
            session: conn.session,
            site: site.0,
            kind: kind_to_u8(kind),
        };
        if frame.write_to(&mut conn.stream).is_err() {
            self.conn = None;
            return false;
        }
        true
    }
}

impl AuditSink for RemoteConsole {
    fn record(&mut self, site: SiteId, kind: EventKind) {
        // A backlog means earlier events are still queued; this event
        // must not overtake them. Try to drain first, and if anything
        // is still queued afterwards, append behind it.
        if self.spool_backlog() > 0 {
            if self.conn.is_none() {
                let _ = self.reconnect();
            }
            self.drain_spool();
            if self.spool_backlog() > 0 && self.spool_event(site, kind) {
                return;
            }
        }
        if self.try_send(site, kind) {
            self.sent += 1;
            return;
        }
        // One reconnect attempt, then spool the event — or, with no
        // spool attached, drop it. Neither is silent: both are counted
        // where the stats plane can see them, and the first failure per
        // connection reaches stderr.
        if self.reconnect().is_ok() {
            self.drain_spool();
            if self.try_send(site, kind) {
                self.sent += 1;
                return;
            }
        }
        if self.spool_event(site, kind) {
            if !self.failure_logged {
                self.failure_logged = true;
                eprintln!(
                    "dvm-net: console {} unreachable; audit events are spooling durably \
                     (site {}); they replay in order on reconnect",
                    self.addr, site.0
                );
            }
            return;
        }
        self.dropped += 1;
        self.telemetry
            .registry()
            .counter("audit_dropped_total")
            .inc();
        if !self.failure_logged {
            self.failure_logged = true;
            eprintln!(
                "dvm-net: audit event dropped (site {}, console {} unreachable); \
                 further drops on this connection are counted silently",
                site.0, self.addr
            );
        }
    }

    fn flush(&mut self) {
        if self.spool_backlog() == 0 {
            return;
        }
        if self.conn.is_none() && self.reconnect().is_err() {
            return;
        }
        self.drain_spool();
    }
}

impl Drop for RemoteConsole {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider(user: &str, seed: u64) -> NetClassProvider {
        let hello = Hello {
            user: user.to_owned(),
            ..Hello::default()
        };
        let config = NetConfig {
            jitter_seed: seed,
            ..NetConfig::default()
        };
        // 127.0.0.1:1 never answers; the connection is lazy, so a
        // provider can be built without a live server.
        NetClassProvider::new("127.0.0.1:1", hello, None, config).unwrap()
    }

    #[test]
    fn audit_drops_are_counted_not_silent() {
        // A one-shot console: handshakes once, then disappears.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            match Frame::read_from(&mut s).unwrap() {
                Frame::Hello(_) => {}
                other => panic!("expected HELLO, got {other:?}"),
            }
            Frame::Welcome { session: 7 }.write_to(&mut s).unwrap();
            s
        });
        let mut console =
            RemoteConsole::connect(addr, Hello::default(), NetConfig::default()).unwrap();
        assert_eq!(console.session(), Some(7));
        drop(server.join().unwrap()); // server stream AND listener gone

        // TCP death is detected lazily: early sends may land in the
        // socket buffer. Keep recording until the failed send (and the
        // failed reconnect behind it) registers as a drop.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while console.dropped() == 0 && std::time::Instant::now() < deadline {
            console.record(SiteId(1), EventKind::Enter);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(console.dropped() >= 1, "drop never registered");
        let snap = console.telemetry().registry().snapshot();
        assert_eq!(
            snap.counters.get("audit_dropped_total").copied(),
            Some(console.dropped()),
            "counter disagrees with the console's own accounting"
        );
    }

    #[test]
    fn spooled_audit_events_replay_in_order_on_a_new_console() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dvm-net-spool-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Life 1: a console that handshakes and vanishes. Events spool.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = Frame::read_from(&mut s).unwrap(); // HELLO
            Frame::Welcome { session: 7 }.write_to(&mut s).unwrap();
            s
        });
        let mut console =
            RemoteConsole::connect(addr, Hello::default(), NetConfig::default()).unwrap();
        console.set_spool(AuditSpool::open(&dir).unwrap());
        drop(server.join().unwrap()); // stream AND listener gone

        // TCP death registers lazily; early sends may land in the
        // socket buffer. Spool three *known* events once it has.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while console.spooled() == 0 && std::time::Instant::now() < deadline {
            console.record(SiteId(0), EventKind::Enter);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(console.spooled() >= 1, "spooling never engaged");
        assert_eq!(console.dropped(), 0, "a spooled event is not a drop");
        for site in [101, 102, 103] {
            console.record(SiteId(site), EventKind::Event);
        }
        let backlog = console.spool_backlog();
        assert!(backlog >= 3);
        let snap = console.telemetry().registry().snapshot();
        assert_eq!(
            snap.counters.get("audit_spooled_total").copied(),
            Some(console.spooled())
        );
        drop(console); // SIGKILL-equivalent: the spool is on disk

        // Life 2: a live console at a fresh address; the recovered
        // spool must drain into it oldest-first.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr2 = listener.local_addr().unwrap();
        let collector = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = Frame::read_from(&mut s).unwrap(); // HELLO
            Frame::Welcome { session: 8 }.write_to(&mut s).unwrap();
            let mut sites = Vec::new();
            while let Ok(frame) = Frame::read_from(&mut s) {
                match frame {
                    Frame::AuditEvent { site, .. } => sites.push(site),
                    Frame::Bye => break,
                    _ => {}
                }
            }
            sites
        });
        let mut console =
            RemoteConsole::connect(addr2, Hello::default(), NetConfig::default()).unwrap();
        console.set_spool(AuditSpool::open(&dir).unwrap());
        assert_eq!(console.spool_backlog(), backlog, "spool survived the kill");
        console.flush();
        assert_eq!(console.spool_backlog(), 0, "flush drained the spool");
        assert_eq!(console.replayed(), backlog as u64);
        console.close();
        let sites = collector.join().unwrap();
        // Everything replayed, in order, with our three markers as the
        // most recent events.
        assert_eq!(sites.len(), backlog);
        assert_eq!(&sites[sites.len() - 3..], &[101, 102, 103]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jitter_is_deterministic_per_user_and_bounded() {
        let schedule = |user: &str, seed: u64| -> Vec<Duration> {
            let mut p = provider(user, seed);
            (0..6).map(|r| p.jittered_backoff(r)).collect()
        };
        // Same (seed, user): identical replay.
        assert_eq!(schedule("alice", 7), schedule("alice", 7));
        // Different users (or seeds) decorrelate.
        assert_ne!(schedule("alice", 7), schedule("bob", 7));
        assert_ne!(schedule("alice", 7), schedule("alice", 8));
        // Every delay stays within [d/2, d] of the exponential schedule.
        let mut p = provider("carol", 42);
        let config = p.config;
        for r in 0..8 {
            let d = config.backoff_for(r);
            let j = p.jittered_backoff(r);
            assert!(
                j >= d / 2 && j <= d,
                "retry {r}: {j:?} outside [{:?}, {d:?}]",
                d / 2
            );
        }
    }

    #[test]
    fn overload_errors_are_retryable_but_not_transport() {
        let e = NetError::Remote {
            code: ErrorCode::Overloaded,
            message: "full".into(),
        };
        assert!(e.is_overload());
        assert!(e.is_retryable());
        assert!(!e.is_transport());
        let wrapped = NetError::Exhausted(Box::new(e));
        assert!(wrapped.is_overload());
        let not = NetError::Remote {
            code: ErrorCode::NotFound,
            message: "nope".into(),
        };
        assert!(!not.is_retryable());
    }

    #[test]
    fn integrity_failures_are_retryable_but_not_transport() {
        // A corrupted or desynchronized stream: retry on a fresh
        // connection, where verification gates delivery again.
        for e in [
            NetError::BadSignature,
            NetError::Protocol("response id 9 for request 3".into()),
            NetError::Frame(FrameError::Malformed("trailing bytes".into())),
            NetError::Frame(FrameError::UnknownTag(0x7F)),
            NetError::Frame(FrameError::BadLength(u32::MAX as u64)),
        ] {
            assert!(e.is_integrity(), "{e}");
            assert!(e.is_retryable(), "{e}");
            assert!(!e.is_transport(), "{e}");
        }
        // Mid-frame truncation is transport-class, not integrity.
        let t = NetError::Truncated {
            got: 7,
            expected: Some(64),
        };
        assert!(t.is_transport() && t.is_retryable() && !t.is_integrity());
        // Typed remote answers are neither.
        let remote = NetError::Remote {
            code: ErrorCode::Filter,
            message: "rejected".into(),
        };
        assert!(!remote.is_integrity() && !remote.is_retryable());
    }
}
