//! The DVM wire protocol: length-prefixed binary frames.
//!
//! Layout on the wire (all integers big-endian):
//!
//! ```text
//! +----------------+---------+------------------+
//! | len: u32       | tag: u8 | payload          |
//! +----------------+---------+------------------+
//! ```
//!
//! `len` counts the tag byte plus the payload and is bounded by
//! [`MAX_FRAME_LEN`]; a violated bound, an unknown tag, or a payload that
//! does not parse to its declared end is a [`FrameError`] — never a
//! panic. Strings are `u16`-length-prefixed UTF-8; byte blobs are
//! `u32`-length-prefixed.
//!
//! The protocol is deliberately from scratch in pure std: building the
//! substrate rather than importing it is this reproduction's style, and
//! the frame grammar is small enough to verify exhaustively (see the
//! round-trip property tests).

use std::io::{self, Read, Write};

use dvm_monitor::EventKind;
use dvm_proxy::ServedFrom;
use dvm_telemetry::{SpanId, TraceContext, TraceId};

/// Upper bound on `len` (tag + payload): 16 MiB, comfortably above the
/// largest signed applet while rejecting nonsense lengths early.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Frame tags (the `u8` after the length prefix).
mod tag {
    pub const HELLO: u8 = 0x01;
    pub const WELCOME: u8 = 0x02;
    pub const CODE_REQUEST: u8 = 0x03;
    pub const CODE_RESPONSE: u8 = 0x04;
    pub const ERROR: u8 = 0x05;
    pub const AUDIT_EVENT: u8 = 0x06;
    pub const BYE: u8 = 0x07;
    pub const PEER_GET: u8 = 0x08;
    pub const PEER_PUT: u8 = 0x09;
    pub const STATS_REQUEST: u8 = 0x0A;
    pub const STATS_RESPONSE: u8 = 0x0B;
    pub const RING_UPDATE: u8 = 0x0C;
    pub const MIGRATE_BEGIN: u8 = 0x0D;
    pub const MIGRATE_CHUNK: u8 = 0x0E;
    pub const MIGRATE_END: u8 = 0x0F;
    pub const METRICS_SCRAPE: u8 = 0x10;
    pub const METRICS_TEXT: u8 = 0x11;
    pub const EVENTS_REQUEST: u8 = 0x12;
    pub const EVENTS_RESPONSE: u8 = 0x13;
}

/// Typed error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The origin has no such resource.
    NotFound,
    /// The resource is not a parseable class file.
    Parse,
    /// A static-service filter rejected the class.
    Filter,
    /// The peer sent a frame this endpoint cannot understand.
    Malformed,
    /// The server is at its connection or load limit.
    Overloaded,
    /// Any other server-side failure.
    Internal,
    /// A `PEER_GET` probe found nothing in this shard's cache (not a
    /// client-visible failure: the asking shard falls back to its own
    /// rewrite).
    CacheMiss,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::NotFound => 0,
            ErrorCode::Parse => 1,
            ErrorCode::Filter => 2,
            ErrorCode::Malformed => 3,
            ErrorCode::Overloaded => 4,
            ErrorCode::Internal => 5,
            ErrorCode::CacheMiss => 6,
        }
    }

    fn from_u8(b: u8) -> Result<ErrorCode, FrameError> {
        Ok(match b {
            0 => ErrorCode::NotFound,
            1 => ErrorCode::Parse,
            2 => ErrorCode::Filter,
            3 => ErrorCode::Malformed,
            4 => ErrorCode::Overloaded,
            5 => ErrorCode::Internal,
            6 => ErrorCode::CacheMiss,
            other => {
                dvm_fuzz::cov!("frame.error_code.bad");
                return Err(FrameError::malformed(format!("error code {other}")));
            }
        })
    }
}

/// Wire encoding of an audit [`EventKind`]: 0 = Enter, 1 = Exit,
/// 2 = Event.
pub fn kind_to_u8(kind: EventKind) -> u8 {
    match kind {
        EventKind::Enter => 0,
        EventKind::Exit => 1,
        EventKind::Event => 2,
    }
}

/// Inverse of [`kind_to_u8`]; `None` for bytes outside the mapping.
pub fn kind_from_u8(b: u8) -> Option<EventKind> {
    match b {
        0 => Some(EventKind::Enter),
        1 => Some(EventKind::Exit),
        2 => Some(EventKind::Event),
        _ => None,
    }
}

/// The client handshake payload: who is connecting and what native
/// format it wants (the §3.3 handshake, on the wire).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hello {
    /// User credentials (authenticated upstream).
    pub user: String,
    /// Principal the fetched code will run as.
    pub principal: String,
    /// Hardware description, e.g. `"x86/200MHz/64MB"`.
    pub hardware: String,
    /// Native code format for the network compiler.
    pub native_format: String,
    /// JVM implementation version string.
    pub jvm_version: String,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: open a session.
    Hello(Hello),
    /// Server → client: session granted.
    Welcome {
        /// Monitoring session id assigned by the console.
        session: u64,
    },
    /// Client → server: fetch (and rewrite) the code at `url`.
    CodeRequest {
        /// Client-chosen id echoed in the response.
        request_id: u32,
        /// Session from the handshake.
        session: u64,
        /// Resource URL.
        url: String,
        /// Native-format descriptor (ahead-of-time compilation hint).
        native_format: String,
        /// Distributed-trace context: present when the client wants the
        /// server's spans stitched into its trace. Optional on the wire
        /// (a flag byte), so untraced requests cost two extra bytes.
        trace: Option<TraceContext>,
    },
    /// Server → client: the rewritten (and possibly signed) bytes.
    CodeResponse {
        /// Echo of the request id.
        request_id: u32,
        /// Which proxy tier satisfied the request.
        served_from: ServedFrom,
        /// Simulated proxy processing time in nanoseconds.
        processing_ns: u64,
        /// Class bytes, signature attached when the proxy signs.
        bytes: Vec<u8>,
    },
    /// Server → client: typed failure (`request_id` zero when the error
    /// is not tied to one request).
    Error {
        /// Echo of the request id, or zero.
        request_id: u32,
        /// Failure category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server: one monitor event for the console's audit log.
    AuditEvent {
        /// Session from the handshake.
        session: u64,
        /// Instrumentation site.
        site: i32,
        /// Event kind: 0 enter, 1 exit, 2 generic.
        kind: u8,
    },
    /// Shard → shard: probe the receiving shard's rewrite cache for
    /// `url` (the cluster cache-fill protocol; answered with
    /// `CODE_RESPONSE` on a hit, `ERROR`/`CacheMiss` on a miss).
    PeerGet {
        /// Sender-chosen id echoed in the response.
        request_id: u32,
        /// Resource URL being probed.
        url: String,
    },
    /// Shard → shard: offer freshly rewritten (signed) bytes to the
    /// url's home shard. Fire-and-forget; never answered.
    PeerPut {
        /// Resource URL the bytes rewrite.
        url: String,
        /// The signed rewrite output.
        bytes: Vec<u8>,
    },
    /// Any client → server: pull the server's live telemetry (the stats
    /// plane). Answered with `STATS_RESPONSE`.
    StatsRequest {
        /// Sender-chosen id echoed in the response.
        request_id: u32,
        /// When false, the server omits the span dump (metrics only) —
        /// cheap enough to poll.
        include_spans: bool,
    },
    /// Server → client: the serialized `dvm_telemetry::StatsReport` for
    /// this server's node. Opaque bytes at the frame layer so the wire
    /// protocol does not re-state the report grammar.
    StatsResponse {
        /// Echo of the request id.
        request_id: u32,
        /// `StatsReport::encode()` output.
        report: Vec<u8>,
    },
    /// Either direction: membership epoch exchange. A client (or peer
    /// shard) sends the epoch it is routing with and an empty `ring`;
    /// the server answers with the same tag carrying its current epoch
    /// and — when the asker is behind — the encoded ring snapshot
    /// (`dvm_cluster::RingSnapshot` bytes, opaque at this layer). An
    /// up-to-date asker gets the epoch back with `ring` empty.
    RingUpdate {
        /// Sender's current epoch (request) or the server's (response).
        epoch: u64,
        /// Encoded ring snapshot; empty when no update is needed or
        /// when asking.
        ring: Vec<u8>,
    },
    /// Shard → shard: start (or resume) pulling the keys the *sending*
    /// shard now owns out of the receiving shard's cache. Answered with
    /// a stream of `MIGRATE_CHUNK` frames and one `MIGRATE_END`.
    MigrateBegin {
        /// Sender-chosen id echoed on every chunk and the end marker.
        request_id: u32,
        /// The epoch whose remap plan justifies this transfer; the
        /// source rejects epochs it has not reached.
        epoch: u64,
        /// The requesting (target) shard id — the source streams only
        /// keys this shard owns under its current ring.
        shard: u32,
        /// Exclusive lower bound for resumption after a cut stream:
        /// empty to start from the beginning, else the last key already
        /// ingested.
        resume_from: String,
    },
    /// Shard → shard: one migrated cache entry. The wire format carries
    /// an MD5 digest of `bytes` that `encode` computes and `decode`
    /// re-checks — a corrupted value surfaces as a typed
    /// [`FrameError::Malformed`] at the frame layer, before ingest.
    MigrateChunk {
        /// Echo of the `MIGRATE_BEGIN` request id.
        request_id: u32,
        /// Zero-based chunk sequence number within this transfer.
        seq: u32,
        /// The cache key (resource URL).
        url: String,
        /// The signed cached value.
        bytes: Vec<u8>,
    },
    /// Shard → shard: the migration stream is done (or was cut short by
    /// the source with `complete: false`, telling the target to resume).
    MigrateEnd {
        /// Echo of the `MIGRATE_BEGIN` request id.
        request_id: u32,
        /// Chunks sent in this stream.
        total: u32,
        /// True when every owned key at or after `resume_from` was
        /// sent; false when the source truncated the batch (the target
        /// re-issues `MIGRATE_BEGIN` with the last key it saw).
        complete: bool,
    },
    /// Client → server: ask for the Prometheus-text metrics exposition
    /// (the same body the HTTP `GET /metrics` listener serves), so wire
    /// tooling can scrape a shard without a second port.
    MetricsScrape {
        /// Sender-chosen id echoed in the response.
        request_id: u32,
    },
    /// Server → client: the exposition text. Opaque bytes at the frame
    /// layer — the frame grammar does not re-state the text format.
    MetricsText {
        /// Echo of the request id.
        request_id: u32,
        /// UTF-8 Prometheus-text exposition.
        text: Vec<u8>,
    },
    /// Client → server: tail the server's event journal with a cursor.
    EventsRequest {
        /// Sender-chosen id echoed in the response.
        request_id: u32,
        /// Return only events with sequence numbers beyond this (0 for
        /// everything retained).
        after_seq: u64,
        /// Upper bound on events returned.
        max: u32,
    },
    /// Server → client: one page of journal events. The payload is the
    /// `dvm_telemetry::events` batch encoding, opaque at this layer
    /// (the same pattern as [`Frame::StatsResponse`]).
    EventsResponse {
        /// Echo of the request id.
        request_id: u32,
        /// Cursor to pass as `after_seq` next time (the last sequence
        /// in this page, or the echoed cursor when the page is empty).
        next_seq: u64,
        /// `dvm_telemetry::events::encode_events()` output.
        events: Vec<u8>,
    },
    /// Either direction: orderly shutdown of the connection.
    Bye,
}

/// A frame that could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Length prefix outside `1..=MAX_FRAME_LEN`.
    BadLength(u64),
    /// Unknown frame tag.
    UnknownTag(u8),
    /// Payload failed structural validation.
    Malformed(String),
    /// The stream ended *inside* a frame: some of the length prefix or
    /// body arrived and then the connection closed. Distinct from
    /// [`FrameError::Io`] with a clean EOF between frames — a truncation
    /// means the peer (or the link) died mid-message, and whatever was
    /// received must not be mistaken for a complete answer.
    Truncated {
        /// Bytes of the frame that did arrive (prefix included).
        got: usize,
        /// Bytes the frame declared (prefix included), when the length
        /// prefix itself arrived intact; `None` when the cut fell inside
        /// the prefix.
        expected: Option<usize>,
    },
    /// The underlying transport failed (includes clean EOF between
    /// frames).
    Io(io::ErrorKind, String),
}

impl FrameError {
    fn malformed(detail: impl Into<String>) -> FrameError {
        FrameError::Malformed(detail.into())
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(n) => write!(f, "frame length {n} out of bounds"),
            FrameError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            FrameError::Malformed(d) => write!(f, "malformed frame: {d}"),
            FrameError::Truncated { got, expected } => match expected {
                Some(want) => write!(f, "frame truncated mid-stream: {got} of {want} bytes"),
                None => write!(f, "frame truncated inside the length prefix: {got} bytes"),
            },
            FrameError::Io(kind, e) => write!(f, "transport ({kind:?}): {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e.kind(), e.to_string())
    }
}

impl FrameError {
    /// True when the failure came from the transport rather than the
    /// frame grammar — the class of error a client may retry. A mid-frame
    /// truncation is transport-class: the message was cut by the link,
    /// not malformed by the sender.
    pub fn is_transport(&self) -> bool {
        matches!(self, FrameError::Io(..) | FrameError::Truncated { .. })
    }
}

fn served_from_to_u8(s: ServedFrom) -> u8 {
    match s {
        ServedFrom::Rewritten => 0,
        ServedFrom::MemoryCache => 1,
        ServedFrom::DiskCache => 2,
        ServedFrom::Peer => 3,
    }
}

fn served_from_from_u8(b: u8) -> Result<ServedFrom, FrameError> {
    Ok(match b {
        0 => ServedFrom::Rewritten,
        1 => ServedFrom::MemoryCache,
        2 => ServedFrom::DiskCache,
        3 => ServedFrom::Peer,
        other => {
            dvm_fuzz::cov!("frame.served_from.bad");
            return Err(FrameError::malformed(format!("served-from tier {other}")));
        }
    })
}

// ---- payload encoding helpers ----------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
    put_u16(out, s.len().min(u16::MAX as usize) as u16);
    out.extend_from_slice(&s.as_bytes()[..s.len().min(u16::MAX as usize)]);
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Bounds-checked payload cursor.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                dvm_fuzz::cov!("frame.cursor.short");
                FrameError::malformed("payload truncated")
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, FrameError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| {
            dvm_fuzz::cov!("frame.cursor.utf8");
            FrameError::malformed("invalid UTF-8")
        })
    }

    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            dvm_fuzz::cov!("frame.cursor.trailing");
            Err(FrameError::malformed("trailing bytes after payload"))
        }
    }
}

impl Frame {
    /// Serializes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Frame::Hello(h) => {
                body.push(tag::HELLO);
                put_str(&mut body, &h.user);
                put_str(&mut body, &h.principal);
                put_str(&mut body, &h.hardware);
                put_str(&mut body, &h.native_format);
                put_str(&mut body, &h.jvm_version);
            }
            Frame::Welcome { session } => {
                body.push(tag::WELCOME);
                put_u64(&mut body, *session);
            }
            Frame::CodeRequest {
                request_id,
                session,
                url,
                native_format,
                trace,
            } => {
                body.push(tag::CODE_REQUEST);
                put_u32(&mut body, *request_id);
                put_u64(&mut body, *session);
                put_str(&mut body, url);
                put_str(&mut body, native_format);
                match trace {
                    Some(t) => {
                        body.push(1);
                        put_u64(&mut body, t.trace.0);
                        put_u64(&mut body, t.parent.0);
                    }
                    None => body.push(0),
                }
            }
            Frame::CodeResponse {
                request_id,
                served_from,
                processing_ns,
                bytes,
            } => {
                body.push(tag::CODE_RESPONSE);
                put_u32(&mut body, *request_id);
                body.push(served_from_to_u8(*served_from));
                put_u64(&mut body, *processing_ns);
                put_bytes(&mut body, bytes);
            }
            Frame::Error {
                request_id,
                code,
                message,
            } => {
                body.push(tag::ERROR);
                put_u32(&mut body, *request_id);
                body.push(code.to_u8());
                put_str(&mut body, message);
            }
            Frame::AuditEvent {
                session,
                site,
                kind,
            } => {
                body.push(tag::AUDIT_EVENT);
                put_u64(&mut body, *session);
                body.extend_from_slice(&site.to_be_bytes());
                body.push(*kind);
            }
            Frame::PeerGet { request_id, url } => {
                body.push(tag::PEER_GET);
                put_u32(&mut body, *request_id);
                put_str(&mut body, url);
            }
            Frame::PeerPut { url, bytes } => {
                body.push(tag::PEER_PUT);
                put_str(&mut body, url);
                put_bytes(&mut body, bytes);
            }
            Frame::StatsRequest {
                request_id,
                include_spans,
            } => {
                body.push(tag::STATS_REQUEST);
                put_u32(&mut body, *request_id);
                body.push(u8::from(*include_spans));
            }
            Frame::StatsResponse { request_id, report } => {
                body.push(tag::STATS_RESPONSE);
                put_u32(&mut body, *request_id);
                put_bytes(&mut body, report);
            }
            Frame::RingUpdate { epoch, ring } => {
                body.push(tag::RING_UPDATE);
                put_u64(&mut body, *epoch);
                put_bytes(&mut body, ring);
            }
            Frame::MigrateBegin {
                request_id,
                epoch,
                shard,
                resume_from,
            } => {
                body.push(tag::MIGRATE_BEGIN);
                put_u32(&mut body, *request_id);
                put_u64(&mut body, *epoch);
                put_u32(&mut body, *shard);
                put_str(&mut body, resume_from);
            }
            Frame::MigrateChunk {
                request_id,
                seq,
                url,
                bytes,
            } => {
                body.push(tag::MIGRATE_CHUNK);
                put_u32(&mut body, *request_id);
                put_u32(&mut body, *seq);
                put_str(&mut body, url);
                body.extend_from_slice(&dvm_proxy::md5::md5(bytes));
                put_bytes(&mut body, bytes);
            }
            Frame::MigrateEnd {
                request_id,
                total,
                complete,
            } => {
                body.push(tag::MIGRATE_END);
                put_u32(&mut body, *request_id);
                put_u32(&mut body, *total);
                body.push(u8::from(*complete));
            }
            Frame::MetricsScrape { request_id } => {
                body.push(tag::METRICS_SCRAPE);
                put_u32(&mut body, *request_id);
            }
            Frame::MetricsText { request_id, text } => {
                body.push(tag::METRICS_TEXT);
                put_u32(&mut body, *request_id);
                put_bytes(&mut body, text);
            }
            Frame::EventsRequest {
                request_id,
                after_seq,
                max,
            } => {
                body.push(tag::EVENTS_REQUEST);
                put_u32(&mut body, *request_id);
                put_u64(&mut body, *after_seq);
                put_u32(&mut body, *max);
            }
            Frame::EventsResponse {
                request_id,
                next_seq,
                events,
            } => {
                body.push(tag::EVENTS_RESPONSE);
                put_u32(&mut body, *request_id);
                put_u64(&mut body, *next_seq);
                put_bytes(&mut body, events);
            }
            Frame::Bye => body.push(tag::BYE),
        }
        debug_assert!(body.len() <= MAX_FRAME_LEN);
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame body (tag + payload, the length prefix already
    /// consumed and validated).
    pub fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let mut c = Cursor::new(body);
        let frame = match c.u8()? {
            tag::HELLO => {
                dvm_fuzz::cov!("frame.tag.hello");
                Frame::Hello(Hello {
                    user: c.string()?,
                    principal: c.string()?,
                    hardware: c.string()?,
                    native_format: c.string()?,
                    jvm_version: c.string()?,
                })
            }
            tag::WELCOME => {
                dvm_fuzz::cov!("frame.tag.welcome");
                Frame::Welcome { session: c.u64()? }
            }
            tag::CODE_REQUEST => {
                dvm_fuzz::cov!("frame.tag.code_request");
                let request_id = c.u32()?;
                let session = c.u64()?;
                let url = c.string()?;
                let native_format = c.string()?;
                let trace = match c.u8()? {
                    0 => None,
                    1 => {
                        dvm_fuzz::cov!("frame.code_request.traced");
                        Some(TraceContext {
                            trace: TraceId(c.u64()?),
                            parent: SpanId(c.u64()?),
                        })
                    }
                    other => {
                        dvm_fuzz::cov!("frame.code_request.bad_flag");
                        return Err(FrameError::malformed(format!("trace flag {other}")));
                    }
                };
                Frame::CodeRequest {
                    request_id,
                    session,
                    url,
                    native_format,
                    trace,
                }
            }
            tag::CODE_RESPONSE => {
                dvm_fuzz::cov!("frame.tag.code_response");
                Frame::CodeResponse {
                    request_id: c.u32()?,
                    served_from: served_from_from_u8(c.u8()?)?,
                    processing_ns: c.u64()?,
                    bytes: c.bytes()?,
                }
            }
            tag::ERROR => {
                dvm_fuzz::cov!("frame.tag.error");
                Frame::Error {
                    request_id: c.u32()?,
                    code: ErrorCode::from_u8(c.u8()?)?,
                    message: c.string()?,
                }
            }
            tag::AUDIT_EVENT => {
                dvm_fuzz::cov!("frame.tag.audit_event");
                let session = c.u64()?;
                let site = c.i32()?;
                let kind = c.u8()?;
                if kind > 2 {
                    dvm_fuzz::cov!("frame.audit.bad_kind");
                    return Err(FrameError::malformed(format!("audit kind {kind}")));
                }
                Frame::AuditEvent {
                    session,
                    site,
                    kind,
                }
            }
            tag::PEER_GET => {
                dvm_fuzz::cov!("frame.tag.peer_get");
                Frame::PeerGet {
                    request_id: c.u32()?,
                    url: c.string()?,
                }
            }
            tag::PEER_PUT => {
                dvm_fuzz::cov!("frame.tag.peer_put");
                Frame::PeerPut {
                    url: c.string()?,
                    bytes: c.bytes()?,
                }
            }
            tag::STATS_REQUEST => {
                dvm_fuzz::cov!("frame.tag.stats_request");
                let request_id = c.u32()?;
                let include_spans = match c.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        dvm_fuzz::cov!("frame.stats.bad_flag");
                        return Err(FrameError::malformed(format!("stats flag {other}")));
                    }
                };
                Frame::StatsRequest {
                    request_id,
                    include_spans,
                }
            }
            tag::STATS_RESPONSE => {
                dvm_fuzz::cov!("frame.tag.stats_response");
                Frame::StatsResponse {
                    request_id: c.u32()?,
                    report: c.bytes()?,
                }
            }
            tag::RING_UPDATE => {
                dvm_fuzz::cov!("frame.tag.ring_update");
                Frame::RingUpdate {
                    epoch: c.u64()?,
                    ring: c.bytes()?,
                }
            }
            tag::MIGRATE_BEGIN => {
                dvm_fuzz::cov!("frame.tag.migrate_begin");
                Frame::MigrateBegin {
                    request_id: c.u32()?,
                    epoch: c.u64()?,
                    shard: c.u32()?,
                    resume_from: c.string()?,
                }
            }
            tag::MIGRATE_CHUNK => {
                dvm_fuzz::cov!("frame.tag.migrate_chunk");
                let request_id = c.u32()?;
                let seq = c.u32()?;
                let url = c.string()?;
                let digest: [u8; 16] = c.take(16)?.try_into().unwrap();
                let bytes = c.bytes()?;
                if dvm_proxy::md5::md5(&bytes) != digest {
                    dvm_fuzz::cov!("frame.migrate.digest_mismatch");
                    return Err(FrameError::malformed(format!(
                        "migrate chunk digest mismatch for {url}"
                    )));
                }
                dvm_fuzz::cov!("frame.migrate.digest_ok");
                Frame::MigrateChunk {
                    request_id,
                    seq,
                    url,
                    bytes,
                }
            }
            tag::MIGRATE_END => {
                dvm_fuzz::cov!("frame.tag.migrate_end");
                let request_id = c.u32()?;
                let total = c.u32()?;
                let complete = match c.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        dvm_fuzz::cov!("frame.migrate_end.bad_flag");
                        return Err(FrameError::malformed(format!("end flag {other}")));
                    }
                };
                Frame::MigrateEnd {
                    request_id,
                    total,
                    complete,
                }
            }
            tag::METRICS_SCRAPE => {
                dvm_fuzz::cov!("frame.tag.metrics_scrape");
                Frame::MetricsScrape {
                    request_id: c.u32()?,
                }
            }
            tag::METRICS_TEXT => {
                dvm_fuzz::cov!("frame.tag.metrics_text");
                Frame::MetricsText {
                    request_id: c.u32()?,
                    text: c.bytes()?,
                }
            }
            tag::EVENTS_REQUEST => {
                dvm_fuzz::cov!("frame.tag.events_request");
                Frame::EventsRequest {
                    request_id: c.u32()?,
                    after_seq: c.u64()?,
                    max: c.u32()?,
                }
            }
            tag::EVENTS_RESPONSE => {
                dvm_fuzz::cov!("frame.tag.events_response");
                Frame::EventsResponse {
                    request_id: c.u32()?,
                    next_seq: c.u64()?,
                    events: c.bytes()?,
                }
            }
            tag::BYE => {
                dvm_fuzz::cov!("frame.tag.bye");
                Frame::Bye
            }
            other => {
                dvm_fuzz::cov!("frame.tag.unknown");
                return Err(FrameError::UnknownTag(other));
            }
        };
        c.finish()?;
        dvm_fuzz::cov!("frame.decode.ok");
        Ok(frame)
    }

    /// Decodes one frame from a complete encoded buffer (prefix
    /// included), returning the frame and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.len() < 4 {
            dvm_fuzz::cov!("frame.decode.short_prefix");
            return Err(FrameError::malformed("short length prefix"));
        }
        let len = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            dvm_fuzz::cov!("frame.decode.bad_length");
            return Err(FrameError::BadLength(len as u64));
        }
        if buf.len() < 4 + len {
            dvm_fuzz::cov!("frame.decode.truncated");
            return Err(FrameError::malformed("payload truncated"));
        }
        Ok((Frame::decode_body(&buf[4..4 + len])?, 4 + len))
    }

    /// Attempts to decode one frame from the front of a growing buffer.
    ///
    /// Returns `Ok(None)` when more bytes are needed (the streaming case
    /// a buffered reader polls), `Ok(Some((frame, consumed)))` when a
    /// full frame is present, and an error only for actual protocol
    /// violations.
    pub fn try_decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(FrameError::BadLength(len as u64));
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        Ok(Some((Frame::decode_body(&buf[4..4 + len])?, 4 + len)))
    }

    /// Writes the frame to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), FrameError> {
        w.write_all(&self.encode())?;
        Ok(())
    }

    /// Reads one frame from a stream, enforcing the length bound before
    /// allocating.
    ///
    /// A stream that ends *between* frames (zero bytes of the next
    /// frame read) is a clean EOF and surfaces as [`FrameError::Io`];
    /// a stream that ends after delivering part of a frame surfaces as
    /// [`FrameError::Truncated`], so callers can tell a peer that hung
    /// up from a link that cut a message in half.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, FrameError> {
        let mut prefix = [0u8; 4];
        match fill(r, &mut prefix)? {
            0 => {
                return Err(FrameError::Io(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed".into(),
                ))
            }
            4 => {}
            got => {
                return Err(FrameError::Truncated {
                    got,
                    expected: None,
                })
            }
        }
        let len = u32::from_be_bytes(prefix) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(FrameError::BadLength(len as u64));
        }
        let mut body = vec![0u8; len];
        let got = fill(r, &mut body)?;
        if got < len {
            return Err(FrameError::Truncated {
                got: 4 + got,
                expected: Some(4 + len),
            });
        }
        Frame::decode_body(&body)
    }
}

/// Reads until `buf` is full or EOF, returning the bytes read. Unlike
/// `read_exact`, a short read is reported with its exact count instead
/// of an opaque `UnexpectedEof`, which is what lets [`Frame::read_from`]
/// tell clean EOF (0 bytes) from mid-frame truncation (some bytes).
fn fill(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello(Hello {
                user: "alice".into(),
                principal: "applets".into(),
                hardware: "x86/200MHz/64MB".into(),
                native_format: "x86".into(),
                jvm_version: "dvm-repro-0.1".into(),
            }),
            Frame::Welcome { session: 42 },
            Frame::CodeRequest {
                request_id: 7,
                session: 42,
                url: "class://demo/App".into(),
                native_format: "x86".into(),
                trace: None,
            },
            Frame::CodeRequest {
                request_id: 8,
                session: 42,
                url: "class://demo/App".into(),
                native_format: "x86".into(),
                trace: Some(TraceContext {
                    trace: TraceId(0xDEAD_BEEF),
                    parent: SpanId(0x1234),
                }),
            },
            Frame::CodeResponse {
                request_id: 7,
                served_from: ServedFrom::MemoryCache,
                processing_ns: 123_456,
                bytes: vec![0xCA, 0xFE, 0xBA, 0xBE],
            },
            Frame::Error {
                request_id: 7,
                code: ErrorCode::NotFound,
                message: "no such class".into(),
            },
            Frame::AuditEvent {
                session: 42,
                site: -3,
                kind: 1,
            },
            Frame::PeerGet {
                request_id: 9,
                url: "class://demo/App".into(),
            },
            Frame::PeerPut {
                url: "class://demo/App".into(),
                bytes: vec![0xCA, 0xFE, 0xBA, 0xBE, 0x00],
            },
            Frame::Error {
                request_id: 9,
                code: ErrorCode::CacheMiss,
                message: String::new(),
            },
            Frame::CodeResponse {
                request_id: 9,
                served_from: ServedFrom::Peer,
                processing_ns: 0,
                bytes: vec![1],
            },
            Frame::StatsRequest {
                request_id: 11,
                include_spans: true,
            },
            Frame::StatsRequest {
                request_id: 12,
                include_spans: false,
            },
            Frame::StatsResponse {
                request_id: 11,
                report: vec![1, 0, 0, 0, 0, 0],
            },
            Frame::RingUpdate {
                epoch: 3,
                ring: vec![0x44, 0x56, 0x4D, 0x52, 1],
            },
            Frame::RingUpdate {
                epoch: 0,
                ring: Vec::new(),
            },
            Frame::MigrateBegin {
                request_id: 21,
                epoch: 3,
                shard: 5,
                resume_from: String::new(),
            },
            Frame::MigrateBegin {
                request_id: 22,
                epoch: 3,
                shard: 5,
                resume_from: "class://demo/App".into(),
            },
            Frame::MigrateChunk {
                request_id: 21,
                seq: 0,
                url: "class://demo/App".into(),
                bytes: vec![0xCA, 0xFE, 0xBA, 0xBE, 7, 7],
            },
            Frame::MigrateEnd {
                request_id: 21,
                total: 1,
                complete: true,
            },
            Frame::MigrateEnd {
                request_id: 22,
                total: 0,
                complete: false,
            },
            Frame::MetricsScrape { request_id: 31 },
            Frame::MetricsText {
                request_id: 31,
                text: b"# TYPE dvm_proxy_requests counter\ndvm_proxy_requests 7\n".to_vec(),
            },
            Frame::MetricsText {
                request_id: 32,
                text: Vec::new(),
            },
            Frame::EventsRequest {
                request_id: 33,
                after_seq: 0,
                max: 64,
            },
            Frame::EventsRequest {
                request_id: 34,
                after_seq: u64::MAX,
                max: 0,
            },
            Frame::EventsResponse {
                request_id: 33,
                next_seq: 12,
                events: vec![1, 0, 0, 0, 0],
            },
            Frame::EventsResponse {
                request_id: 34,
                next_seq: 0,
                events: Vec::new(),
            },
            Frame::Bye,
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in sample_frames() {
            let encoded = frame.encode();
            let (decoded, consumed) = Frame::decode(&encoded).unwrap();
            assert_eq!(consumed, encoded.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn stream_round_trip() {
        let mut wire = Vec::new();
        for frame in sample_frames() {
            frame.write_to(&mut wire).unwrap();
        }
        let mut r = &wire[..];
        for frame in sample_frames() {
            assert_eq!(Frame::read_from(&mut r).unwrap(), frame);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        for frame in sample_frames() {
            let encoded = frame.encode();
            for cut in 0..encoded.len() {
                assert!(Frame::decode(&encoded[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn clean_eof_and_mid_frame_truncation_are_distinct() {
        // Zero bytes: the peer hung up between frames.
        let mut empty: &[u8] = &[];
        assert!(matches!(
            Frame::read_from(&mut empty),
            Err(FrameError::Io(io::ErrorKind::UnexpectedEof, _))
        ));
        // Any strict prefix of a real frame: the link died mid-message.
        let encoded = Frame::Welcome { session: 9 }.encode();
        for cut in 1..encoded.len() {
            let mut r = &encoded[..cut];
            match Frame::read_from(&mut r) {
                Err(FrameError::Truncated { got, expected }) => {
                    assert_eq!(got, cut, "cut at {cut}");
                    if cut >= 4 {
                        assert_eq!(expected, Some(encoded.len()));
                    } else {
                        assert_eq!(expected, None);
                    }
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        assert!(FrameError::Truncated {
            got: 1,
            expected: None
        }
        .is_transport());
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.push(0x01);
        assert!(matches!(Frame::decode(&buf), Err(FrameError::BadLength(_))));
        let mut r = &buf[..];
        assert!(matches!(
            Frame::read_from(&mut r),
            Err(FrameError::BadLength(_))
        ));
    }

    #[test]
    fn zero_length_rejected() {
        let buf = 0u32.to_be_bytes().to_vec();
        assert!(matches!(Frame::decode(&buf), Err(FrameError::BadLength(0))));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(0x7F);
        assert!(matches!(
            Frame::decode(&buf),
            Err(FrameError::UnknownTag(0x7F))
        ));
    }

    #[test]
    fn trailing_garbage_in_payload_rejected() {
        let mut encoded = Frame::Bye.encode();
        // Grow the payload without updating the tag's grammar.
        encoded.splice(0..4, 3u32.to_be_bytes());
        encoded.extend_from_slice(&[0xAA, 0xBB]);
        assert!(matches!(
            Frame::decode(&encoded),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn migrate_chunk_digest_is_verified_on_decode() {
        let frame = Frame::MigrateChunk {
            request_id: 1,
            seq: 0,
            url: "class://demo/App".into(),
            bytes: vec![1, 2, 3, 4],
        };
        let mut encoded = frame.encode();
        // Flip one payload byte (the last value byte): the digest no
        // longer matches and decode must reject with a typed error.
        let last = encoded.len() - 1;
        encoded[last] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&encoded),
            Err(FrameError::Malformed(_))
        ));
        // Flip a digest byte instead: same typed rejection.
        let mut encoded = frame.encode();
        let digest_at = encoded.len() - 24; // 16-byte digest sits before the u32 len + 4 value bytes
        encoded[digest_at] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&encoded),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // CodeRequest with a string field containing invalid UTF-8.
        let mut body = vec![super::tag::CODE_REQUEST];
        body.extend_from_slice(&7u32.to_be_bytes());
        body.extend_from_slice(&1u64.to_be_bytes());
        body.extend_from_slice(&2u16.to_be_bytes());
        body.extend_from_slice(&[0xFF, 0xFE]);
        body.extend_from_slice(&0u16.to_be_bytes());
        assert!(matches!(
            Frame::decode_body(&body),
            Err(FrameError::Malformed(_))
        ));
    }
}
