//! `ProxyServer`: the organization's proxy on a real TCP socket.
//!
//! The server wraps the existing `dvm_proxy::Proxy` — its filter
//! pipeline, rewrite cache, and signer all run unchanged behind the
//! socket — and speaks the protocol through one of two engines sharing
//! the logic in [`crate::protocol`]:
//!
//! - **reactor** (default, `ServerConfig::reactor`): the `dvm-reactor`
//!   epoll event loop — one loop thread owns every connection and a
//!   bounded worker pool executes requests (`crate::reactor_server`).
//! - **blocking**: the original thread-per-connection engine, bounded
//!   by a connection-limit [`Semaphore`]; kept as a fallback and as a
//!   baseline for the C10K benchmark.
//!
//! `AUDIT_EVENT` frames from clients are ingested straight into the
//! shared `AdminConsole`, so the paper's remote administration console
//! keeps working when the trust boundary becomes a network hop.
//! [`ProxyServer::shutdown`] joins every thread before returning — no
//! leaked connections, whichever engine serves.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dvm_monitor::AdminConsole;
use dvm_netsim::SimRng;
use dvm_proxy::Proxy;
use dvm_telemetry::{Counter, Gauge, Histogram, Telemetry};

use crate::assembler::FrameAssembler;
use crate::frame::{ErrorCode, Frame, FrameError};
use crate::protocol::{execute_plan, handle_frame, ConnProto, Flow};
use crate::sema::Semaphore;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently served connections. Connections beyond the
    /// limit are *rejected* with a typed `Overloaded` error frame rather
    /// than queued indefinitely — clients back off and retry, and a
    /// cluster client fails over to another shard immediately.
    pub max_connections: usize,
    /// Idle-poll granularity for connection threads (bounds shutdown
    /// latency; not a client-visible deadline). Blocking engine only.
    pub poll_interval: Duration,
    /// Optional fault injection for resilience tests.
    pub fault: Option<FaultPlan>,
    /// Serve through the epoll reactor (`dvm-reactor`): one loop thread
    /// owns every connection and only request *execution* uses worker
    /// threads. Off, the original thread-per-connection engine serves —
    /// same protocol, same stats, same telemetry names.
    pub reactor: bool,
    /// Close connections with no read/write progress for this long
    /// (slowloris defense). `None` keeps the pre-deadline behavior:
    /// idle connections stay up indefinitely.
    pub idle_deadline: Option<Duration>,
    /// Reactor worker threads for request execution; `0` picks
    /// `max(2, available_parallelism)`. Reactor engine only.
    pub workers: usize,
    /// Reactor per-connection read-buffer bound while a request is in
    /// flight (see `dvm_reactor::ReactorConfig::read_buf_limit`).
    pub read_buf_limit: usize,
    /// Reactor per-connection output backlog beyond which the
    /// connection is backpressured (reads pause until the peer drains).
    pub write_buf_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            poll_interval: Duration::from_millis(50),
            fault: None,
            reactor: true,
            idle_deadline: None,
            workers: 0,
            read_buf_limit: 64 << 10,
            write_buf_limit: 256 << 10,
        }
    }
}

/// Deliberate failure injection: a schedule of [`FaultRule`]s evaluated
/// against every code request. The first rule whose trigger fires
/// supplies the [`FaultAction`]; rules that do not fire leave the
/// request untouched. The same plan is shared by a standalone
/// [`ProxyServer`] and every shard of a `ProxyCluster`, so one schedule
/// describes an organization-wide failure mode.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Rules, evaluated in order; the first firing rule wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// The classic single-fault plan: abruptly drop the connection
    /// instead of answering every `n`-th code request (counted across
    /// all connections, 1-based).
    pub fn drop_every_nth(n: u64) -> FaultPlan {
        FaultPlan {
            rules: vec![FaultRule {
                action: FaultAction::Drop,
                trigger: FaultTrigger::EveryNth(n),
                scope: FaultScope::PerServer,
            }],
        }
    }

    /// Appends a rule (builder style).
    pub fn with(mut self, action: FaultAction, trigger: FaultTrigger, scope: FaultScope) -> Self {
        self.rules.push(FaultRule {
            action,
            trigger,
            scope,
        });
        self
    }

    /// The action to apply to a request, given its 1-based sequence
    /// numbers on the whole server and on its connection. Pure: the same
    /// `(plan, server_seq, conn_seq)` always answers the same, which is
    /// what makes seeded schedules replayable.
    pub fn decide(&self, server_seq: u64, conn_seq: u64) -> Option<FaultAction> {
        self.rules.iter().find_map(|r| {
            let seq = match r.scope {
                FaultScope::PerServer => server_seq,
                FaultScope::PerConnection => conn_seq,
            };
            r.trigger.fires(seq).then_some(r.action)
        })
    }
}

/// One fault-injection rule: what to do, when, counted against what.
#[derive(Debug, Clone, Copy)]
pub struct FaultRule {
    /// The failure to inject.
    pub action: FaultAction,
    /// When the failure fires.
    pub trigger: FaultTrigger,
    /// Which request counter the trigger is evaluated against.
    pub scope: FaultScope,
}

/// The injectable failure modes on the server side of the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Abruptly close the connection instead of answering.
    Drop,
    /// Answer, but only after sleeping this long (client read-timeout
    /// territory).
    Delay(Duration),
    /// Answer with the payload's bytes corrupted (one byte flipped), so
    /// the client's signature verification must catch it.
    Corrupt,
    /// Send only the first `n` bytes of the encoded response, then close
    /// — a mid-frame truncation as seen by the client.
    Truncate(usize),
}

/// When a [`FaultRule`] fires, as a function of a request sequence
/// number (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Every `n`-th request (`seq % n == 0`); never for `n == 0`.
    EveryNth(u64),
    /// Exactly the `n`-th request.
    Once(u64),
    /// Pseudo-randomly with probability `per_mille`/1000, decided by a
    /// pure function of `(seed, seq)` — deterministic replay without any
    /// shared generator state across connection threads.
    Seeded {
        /// Experiment seed.
        seed: u64,
        /// Firing probability in thousandths.
        per_mille: u16,
    },
}

impl FaultTrigger {
    /// Whether the trigger fires for 1-based request number `seq`.
    pub fn fires(self, seq: u64) -> bool {
        match self {
            FaultTrigger::EveryNth(n) => n > 0 && seq.is_multiple_of(n),
            FaultTrigger::Once(n) => seq == n,
            FaultTrigger::Seeded { seed, per_mille } => {
                SimRng::derive(seed, seq).next_f64() < f64::from(per_mille) / 1000.0
            }
        }
    }
}

/// Which request counter a [`FaultTrigger`] is evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// The server-wide request counter (across all connections).
    PerServer,
    /// The connection's own request counter.
    PerConnection,
}

/// Most entries a single `MIGRATE_BEGIN` answer will stream before
/// closing the batch with `complete: false`. Bounds both the memory a
/// source shard pins per transfer and the work lost to a cut stream —
/// the target resumes from the last key it ingested.
pub const MIGRATE_BATCH: usize = 64;

/// The server's read-only view of cluster membership, installed by the
/// membership plane after bind. `RING_UPDATE` requests are answered
/// from here: askers at an older epoch get the published snapshot
/// bytes, up-to-date askers get just the epoch. Publishing is
/// epoch-monotonic; stale publishes are ignored.
#[derive(Debug, Default)]
pub struct MembershipView {
    epoch: AtomicU64,
    snapshot: Mutex<Arc<Vec<u8>>>,
}

impl MembershipView {
    pub fn new() -> MembershipView {
        MembershipView::default()
    }

    /// Installs the encoded ring for `epoch`. Ignored unless `epoch`
    /// advances the view (publishes may race during rapid transitions).
    pub fn publish(&self, epoch: u64, encoded: Vec<u8>) {
        let mut snap = self.snapshot.lock();
        if epoch >= self.epoch.load(Ordering::SeqCst) {
            *snap = Arc::new(encoded);
            self.epoch.store(epoch, Ordering::SeqCst);
        }
    }

    /// The most recently published epoch (0 before any publish).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The published snapshot bytes (empty before any publish).
    pub fn snapshot(&self) -> Arc<Vec<u8>> {
        self.snapshot.lock().clone()
    }
}

/// One batch of a migration stream, as produced by a
/// [`MigrateExporter`].
#[derive(Debug, Clone, Default)]
pub struct MigrateBatch {
    /// `(url, signed bytes)` pairs in ascending url order.
    pub entries: Vec<(String, Vec<u8>)>,
    /// False when the exporter truncated the batch (more keys remain
    /// after the last entry).
    pub complete: bool,
}

/// Source side of live cache migration: enumerates the cached entries a
/// given shard owns, in key order, resumable from any key. Installed on
/// the server by the membership plane; the frame layer stays ignorant
/// of rings and stores.
pub trait MigrateExporter: Send + Sync {
    /// Up to `max` owned entries strictly after `after` (empty = from
    /// the start) for `shard`, under the exporter's ring at `epoch`.
    /// `Err` is a typed refusal (e.g. the source has not reached
    /// `epoch`), relayed to the asker as an `ERROR` frame.
    fn export(
        &self,
        shard: u32,
        epoch: u64,
        after: &str,
        max: usize,
    ) -> Result<MigrateBatch, String>;
}

/// Renders the Prometheus-text metrics exposition for this node,
/// answered over `METRICS_SCRAPE`. Installed by the serving layer
/// (`dvm-watch` provides the implementation); the frame layer stays
/// ignorant of the text format, same as it is of rings and stores.
pub trait MetricsSource: Send + Sync {
    /// The current exposition text.
    fn render_metrics(&self) -> String;
}

/// Aggregate server statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Code requests received.
    pub requests: u64,
    /// Successful code responses sent.
    pub responses: u64,
    /// Typed error frames sent.
    pub errors: u64,
    /// Audit events ingested into the console.
    pub audit_events: u64,
    /// Malformed or unparseable frames received.
    pub malformed: u64,
    /// Connections dropped by fault injection.
    pub faults_injected: u64,
    /// Connections rejected with `Overloaded` at the admission gate.
    pub overload_rejects: u64,
    /// `PEER_GET` probes received from peer shards.
    pub peer_gets: u64,
    /// `PEER_GET` probes answered from the local cache.
    pub peer_hits: u64,
    /// `PEER_PUT` offers ingested into the local cache.
    pub peer_puts: u64,
    /// `RING_UPDATE` requests answered.
    pub ring_updates: u64,
    /// `MIGRATE_BEGIN` streams served (including resumed ones).
    pub migrate_streams: u64,
    /// `MIGRATE_CHUNK` frames sent to joining shards.
    pub migrate_chunks_out: u64,
    /// `MIGRATE_BEGIN` requests refused by the exporter (epoch mismatch
    /// or no exporter installed).
    pub migrate_rejects: u64,
    /// Connections closed for exceeding the idle deadline (slowloris
    /// reaping).
    pub idle_reaped: u64,
    /// Times a connection crossed its write-buffer limit and had its
    /// reads paused until the peer drained (reactor engine only).
    pub backpressure_stalls: u64,
}

/// Pre-registered wire-layer telemetry handles (the proxy's plane is
/// shared: server and proxy report as one node).
pub(crate) struct ServerMetrics {
    pub(crate) frames_in: Arc<Counter>,
    pub(crate) frames_out: Arc<Counter>,
    pub(crate) bytes_in: Arc<Counter>,
    pub(crate) bytes_out: Arc<Counter>,
    pub(crate) live_connections: Arc<Gauge>,
    pub(crate) overload_rejects: Arc<Counter>,
    pub(crate) malformed: Arc<Counter>,
    pub(crate) audit_events: Arc<Counter>,
    pub(crate) stats_requests: Arc<Counter>,
    pub(crate) scrape_requests: Arc<Counter>,
    pub(crate) events_requests: Arc<Counter>,
    pub(crate) serve_ns: Arc<Histogram>,
    pub(crate) ring_updates: Arc<Counter>,
    pub(crate) migrate_chunks_out: Arc<Counter>,
    pub(crate) idle_reaped: Arc<Counter>,
}

impl ServerMetrics {
    fn register(telemetry: &Telemetry) -> ServerMetrics {
        let r = telemetry.registry();
        ServerMetrics {
            frames_in: r.counter("net.server.frames_in"),
            frames_out: r.counter("net.server.frames_out"),
            bytes_in: r.counter("net.server.bytes_in"),
            bytes_out: r.counter("net.server.bytes_out"),
            live_connections: r.gauge("net.server.live_connections"),
            overload_rejects: r.counter("net.server.overload_rejects"),
            malformed: r.counter("net.server.malformed"),
            audit_events: r.counter("net.server.audit_events"),
            stats_requests: r.counter("net.server.stats_requests"),
            scrape_requests: r.counter("net.server.scrape_requests"),
            events_requests: r.counter("net.server.events_requests"),
            serve_ns: r.histogram("net.server.serve_ns"),
            ring_updates: r.counter("net.server.ring_updates"),
            migrate_chunks_out: r.counter("net.server.migrate_chunks_out"),
            idle_reaped: r.counter("net.server.idle_reaped"),
        }
    }
}

/// Engine-shared server state: the protocol layer (`crate::protocol`)
/// and both engines (blocking threads here, the reactor in
/// `crate::reactor_server`) all work against this.
pub(crate) struct Inner {
    pub(crate) proxy: Arc<Proxy>,
    pub(crate) console: Option<Arc<Mutex<AdminConsole>>>,
    pub(crate) config: ServerConfig,
    pub(crate) running: AtomicBool,
    pub(crate) sema: Arc<Semaphore>,
    pub(crate) stats: Mutex<ServerStats>,
    pub(crate) request_counter: AtomicU64,
    pub(crate) anon_sessions: AtomicU64,
    pub(crate) live: AtomicUsize,
    pub(crate) conns: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) telemetry: Arc<Telemetry>,
    pub(crate) metrics: ServerMetrics,
    pub(crate) membership: Mutex<Option<Arc<MembershipView>>>,
    pub(crate) exporter: Mutex<Option<Arc<dyn MigrateExporter>>>,
    pub(crate) scrape: Mutex<Option<Arc<dyn MetricsSource>>>,
}

impl Inner {
    /// Encodes `frame` for the wire, counting it and its bytes on the
    /// out-metrics (the single choke point both engines send through).
    pub(crate) fn encode_counted(&self, frame: &Frame) -> Vec<u8> {
        let encoded = frame.encode();
        self.metrics.frames_out.inc();
        self.metrics.bytes_out.add(encoded.len() as u64);
        encoded
    }

    /// Writes `frame`, counting it and its bytes on the wire.
    fn send(&self, writer: &mut TcpStream, frame: &Frame) -> bool {
        let encoded = self.encode_counted(frame);
        writer.write_all(&encoded).is_ok()
    }
}

/// The DVM proxy behind a live TCP socket.
pub struct ProxyServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    /// Accept thread (blocking engine only).
    accept: Option<JoinHandle<()>>,
    /// The event loop (reactor engine only).
    reactor: Option<dvm_reactor::Reactor>,
}

impl std::fmt::Debug for ProxyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyServer")
            .field("addr", &self.addr)
            .field("live", &self.inner.live.load(Ordering::Relaxed))
            .finish()
    }
}

impl ProxyServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    ///
    /// When a console is supplied, client handshakes and `AUDIT_EVENT`
    /// frames flow into it; without one, sessions are numbered locally.
    pub fn bind(
        addr: impl ToSocketAddrs,
        proxy: Arc<Proxy>,
        console: Option<Arc<Mutex<AdminConsole>>>,
        config: ServerConfig,
    ) -> std::io::Result<ProxyServer> {
        let listener = TcpListener::bind(addr)?;
        // Deepen the accept queue past std's 128 on both engines: a
        // connect burst deeper than the queue costs each overflowing
        // peer a SYN retransmit (seconds of kernel backoff).
        {
            use std::os::unix::io::AsRawFd;
            let _ = dvm_reactor::sys::deepen_backlog(
                listener.as_raw_fd(),
                config.max_connections.clamp(128, 65_535) as i32,
            );
        }
        let addr = listener.local_addr()?;
        let telemetry = proxy.telemetry();
        let metrics = ServerMetrics::register(&telemetry);
        let max_connections = config.max_connections.max(1);
        let inner = Arc::new(Inner {
            proxy,
            console,
            config,
            running: AtomicBool::new(true),
            sema: Arc::new(Semaphore::new(max_connections)),
            stats: Mutex::new(ServerStats::default()),
            request_counter: AtomicU64::new(0),
            anon_sessions: AtomicU64::new(1),
            live: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            telemetry,
            metrics,
            membership: Mutex::new(None),
            exporter: Mutex::new(None),
            scrape: Mutex::new(None),
        });
        let (accept, reactor) = if inner.config.reactor {
            let handler = Arc::new(crate::reactor_server::NetHandler {
                inner: inner.clone(),
            });
            let observer = Arc::new(crate::reactor_server::ReactorTelemetry::register(
                &inner.telemetry,
                inner.clone(),
            ));
            let rconfig = dvm_reactor::ReactorConfig {
                max_connections,
                workers: inner.config.workers,
                read_buf_limit: inner.config.read_buf_limit,
                write_buf_limit: inner.config.write_buf_limit,
                idle_deadline: inner.config.idle_deadline,
            };
            let reactor = dvm_reactor::Reactor::start(listener, handler, rconfig, observer)?;
            (None, Some(reactor))
        } else {
            let accept_inner = inner.clone();
            let accept = std::thread::Builder::new()
                .name("dvm-net-accept".into())
                .spawn(move || accept_loop(listener, accept_inner))?;
            (Some(accept), None)
        };
        Ok(ProxyServer {
            inner,
            addr,
            accept,
            reactor,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the aggregate statistics.
    pub fn stats(&self) -> ServerStats {
        *self.inner.stats.lock()
    }

    /// The telemetry plane this server reports into (shared with its
    /// proxy, so proxy and wire metrics land in one `StatsReport`).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.inner.telemetry.clone()
    }

    /// Connections currently being served.
    pub fn live_connections(&self) -> usize {
        self.inner.live.load(Ordering::SeqCst)
    }

    /// Installs the membership view answering `RING_UPDATE` requests.
    /// Called by the membership plane after bind; before this, askers
    /// are told epoch 0 with no snapshot.
    pub fn set_membership_view(&self, view: Arc<MembershipView>) {
        *self.inner.membership.lock() = Some(view);
    }

    /// Installs the cache exporter answering `MIGRATE_BEGIN` streams.
    /// Without one, migration requests get a typed `Internal` error.
    pub fn set_migrate_exporter(&self, exporter: Arc<dyn MigrateExporter>) {
        *self.inner.exporter.lock() = Some(exporter);
    }

    /// Installs the exposition renderer answering `METRICS_SCRAPE`
    /// requests. Without one, scrapers get a typed `Internal` error
    /// (`EVENTS_REQUEST` works regardless — the journal lives on the
    /// telemetry plane itself).
    pub fn set_metrics_source(&self, source: Arc<dyn MetricsSource>) {
        *self.inner.scrape.lock() = Some(source);
    }

    /// Stops accepting, waits for every connection thread to exit, and
    /// returns the final statistics. Idempotent via [`Drop`].
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        if !self.inner.running.swap(false, Ordering::SeqCst) {
            return;
        }
        if let Some(r) = self.reactor.take() {
            // The loop closes every connection and joins its workers.
            r.shutdown();
            debug_assert_eq!(self.inner.live.load(Ordering::SeqCst), 0);
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connection threads observe `running == false` within one poll
        // interval; join them all.
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.inner.conns.lock());
        for h in handles {
            let _ = h.join();
        }
        debug_assert_eq!(self.inner.live.load(Ordering::SeqCst), 0);
    }
}

impl Drop for ProxyServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if !inner.running.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if !inner.running.load(Ordering::SeqCst) {
            break;
        }
        // Bounded concurrency with admission control: at capacity, the
        // connection is told so with a typed `Overloaded` frame instead
        // of queueing indefinitely (clients back off; cluster clients
        // fail over to another shard).
        let Some(permit) = inner.sema.try_acquire_owned() else {
            inner.stats.lock().overload_rejects += 1;
            inner.metrics.overload_rejects.inc();
            // A short-lived detached thread drains the handshake and
            // delivers the rejection so the accept loop never stalls on
            // a slow peer.
            let _ = std::thread::Builder::new()
                .name("dvm-net-reject".into())
                .spawn(move || reject_overloaded(stream));
            continue;
        };
        if !inner.running.load(Ordering::SeqCst) {
            break;
        }
        inner.stats.lock().connections += 1;
        inner.live.fetch_add(1, Ordering::SeqCst);
        inner.metrics.live_connections.add(1);
        let conn_inner = inner.clone();
        let handle = std::thread::Builder::new()
            .name("dvm-net-conn".into())
            .spawn(move || {
                serve_connection(stream, &conn_inner);
                conn_inner.live.fetch_sub(1, Ordering::SeqCst);
                conn_inner.metrics.live_connections.add(-1);
                drop(permit);
            });
        match handle {
            Ok(h) => {
                let mut conns = inner.conns.lock();
                // Reap finished threads occasionally so the handle list
                // doesn't grow without bound on long-lived servers.
                if conns.len() >= 2 * inner.config.max_connections {
                    let (done, pending): (Vec<_>, Vec<_>) =
                        conns.drain(..).partition(|h| h.is_finished());
                    for d in done {
                        let _ = d.join();
                    }
                    *conns = pending;
                }
                conns.push(h);
            }
            Err(_) => {
                inner.live.fetch_sub(1, Ordering::SeqCst);
                inner.metrics.live_connections.add(-1);
            }
        }
    }
}

/// Tells a connection the server is at capacity: read its opening frame
/// (so the error is not lost to a reset racing the client's write), send
/// the typed rejection, close.
fn reject_overloaded(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut reader = FrameReader {
        stream: match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
        asm: FrameAssembler::new(),
        bytes_in: None,
    };
    let _ = reader.poll_frame();
    let _ = Frame::Error {
        request_id: 0,
        code: ErrorCode::Overloaded,
        message: "server at connection capacity".into(),
    }
    .write_to(&mut stream);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Accumulates stream bytes through a [`FrameAssembler`] and yields
/// whole frames, tolerating idle timeouts between frames without losing
/// partial reads.
struct FrameReader {
    stream: TcpStream,
    asm: FrameAssembler,
    /// When set, every byte read off the socket is counted here.
    bytes_in: Option<Arc<Counter>>,
}

impl FrameReader {
    fn poll_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        loop {
            if let Some(frame) = self.asm.next_frame()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(FrameError::Io(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed".into(),
                    ))
                }
                Ok(n) => {
                    if let Some(c) = &self.bytes_in {
                        c.add(n as u64);
                    }
                    self.asm.push(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

fn serve_connection(stream: TcpStream, inner: &Inner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.config.poll_interval));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = FrameReader {
        stream,
        asm: FrameAssembler::new(),
        bytes_in: Some(inner.metrics.bytes_in.clone()),
    };
    let mut proto = ConnProto::default();
    let mut last_activity = Instant::now();

    while inner.running.load(Ordering::SeqCst) {
        let frame = match reader.poll_frame() {
            Ok(Some(frame)) => {
                last_activity = Instant::now();
                frame
            }
            Ok(None) => {
                // Idle poll tick: reap the connection if it has made no
                // progress within the deadline (slowloris defense — a
                // stalled peer must not hold this thread forever).
                if let Some(deadline) = inner.config.idle_deadline {
                    if last_activity.elapsed() >= deadline {
                        inner.stats.lock().idle_reaped += 1;
                        inner.metrics.idle_reaped.inc();
                        break;
                    }
                }
                continue;
            }
            // Transport-class failures (including a client that died
            // mid-frame) have no one left to answer.
            Err(e) if e.is_transport() => break,
            Err(e) => {
                inner.stats.lock().malformed += 1;
                inner.metrics.malformed.inc();
                let _ = inner.send(
                    &mut writer,
                    &Frame::Error {
                        request_id: 0,
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                break;
            }
        };
        let mut replies = Vec::new();
        let flow = handle_frame(inner, &mut proto, frame, &mut replies);
        let mut write_ok = true;
        for f in &replies {
            if !inner.send(&mut writer, f) {
                write_ok = false;
                break;
            }
        }
        if !write_ok {
            break;
        }
        match flow {
            Flow::Continue => {}
            Flow::Close => break,
            Flow::Kill => {
                let _ = reader.stream.shutdown(Shutdown::Both);
                break;
            }
            Flow::Execute(plan) => {
                // The blocking engine runs request execution inline on
                // this connection thread (bytes are pre-counted by
                // `execute_plan`).
                let out = execute_plan(inner, plan);
                let sent = writer.write_all(&out.bytes).is_ok();
                if out.close {
                    let _ = writer.flush();
                    let _ = reader.stream.shutdown(Shutdown::Both);
                    break;
                }
                if !sent {
                    break;
                }
            }
        }
    }
    let _ = reader.stream.shutdown(Shutdown::Both);
}
