//! `dvm-net`: the DVM's network substrate — a real wire protocol and TCP
//! proxy server.
//!
//! The paper places every static service behind a proxy *at the network
//! trust boundary*; until this crate, the reproduction ran the proxy
//! in-process and only simulated transfer timing with `dvm-netsim`. Here
//! the boundary becomes an actual socket:
//!
//! - [`frame`] — a from-scratch length-prefixed binary protocol
//!   (`CODE_REQUEST`/`CODE_RESPONSE`, typed error frames, and
//!   `AUDIT_EVENT` frames streaming monitor events to the console),
//!   encoded in pure std;
//! - [`server`] — [`ProxyServer`], a concurrent thread-per-connection TCP
//!   server bounded by a connection-limit semaphore, wrapping the
//!   existing `dvm_proxy::Proxy` filter pipeline, cache, and signer;
//! - [`client`] — [`NetClassProvider`], a `ClassProvider` connector with
//!   connect/read timeouts, bounded retries with exponential backoff, and
//!   signature verification on receipt, plus [`RemoteConsole`], an audit
//!   sink that streams events to the server over the same protocol.
//!
//! Real sockets and `dvm-netsim` coexist deliberately: sockets move the
//! bytes, while the simulated cost model continues to price them for
//! machine-independent experiment output.

pub mod assembler;
pub mod client;
pub mod frame;
pub(crate) mod protocol;
pub(crate) mod reactor_server;
pub mod sema;
pub mod server;

pub use assembler::{peek_frame, FrameAssembler};
pub use client::{
    fetch_events, fetch_metrics_text, fetch_stats, IrHook, NetClassProvider, NetClientStats,
    NetConfig, NetError, NetTransfer, RemoteConsole,
};
pub use frame::{kind_from_u8, kind_to_u8, ErrorCode, Frame, FrameError, Hello, MAX_FRAME_LEN};
pub use server::{
    FaultAction, FaultPlan, FaultRule, FaultScope, FaultTrigger, MembershipView, MetricsSource,
    MigrateBatch, MigrateExporter, ProxyServer, ServerConfig, ServerStats, MIGRATE_BATCH,
};
