//! A counting semaphore over std primitives.
//!
//! std has no semaphore and the workspace vendors no dependency that
//! provides one, so the connection limit gets its own: a `Mutex<usize>`
//! of available permits and a `Condvar` to park waiters. RAII guards
//! release on drop so a panicking connection thread can never leak its
//! permit.

use std::sync::{Condvar, Mutex};

/// A counting semaphore bounding concurrent holders.
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

/// RAII permit; releases on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    sema: &'a Semaphore,
}

impl Semaphore {
    /// Creates a semaphore with `permits` available.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    /// Blocks until a permit is available, then takes it.
    pub fn acquire(&self) -> Permit<'_> {
        let mut permits = self.permits.lock().unwrap();
        while *permits == 0 {
            permits = self.available.wait(permits).unwrap();
        }
        *permits -= 1;
        Permit { sema: self }
    }

    /// Takes a permit if one is free.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut permits = self.permits.lock().unwrap();
        if *permits == 0 {
            return None;
        }
        *permits -= 1;
        Some(Permit { sema: self })
    }

    /// Currently available permits (racy; diagnostics only).
    pub fn available(&self) -> usize {
        *self.permits.lock().unwrap()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        *self.sema.permits.lock().unwrap() += 1;
        self.sema.available.notify_one();
    }
}

/// An owned permit that can move across threads; releases on drop.
#[derive(Debug)]
pub struct OwnedPermit {
    sema: std::sync::Arc<Semaphore>,
}

impl Semaphore {
    /// Blocks until a permit is available, taking it as an owned guard
    /// suitable for handing to a worker thread.
    pub fn acquire_owned(self: &std::sync::Arc<Self>) -> OwnedPermit {
        let mut permits = self.permits.lock().unwrap();
        while *permits == 0 {
            permits = self.available.wait(permits).unwrap();
        }
        *permits -= 1;
        OwnedPermit { sema: self.clone() }
    }

    /// Takes an owned permit if one is free, without blocking — the
    /// admission-control path: callers turn `None` into a typed
    /// `Overloaded` rejection instead of queueing the connection.
    pub fn try_acquire_owned(self: &std::sync::Arc<Self>) -> Option<OwnedPermit> {
        let mut permits = self.permits.lock().unwrap();
        if *permits == 0 {
            return None;
        }
        *permits -= 1;
        Some(OwnedPermit { sema: self.clone() })
    }
}

impl Drop for OwnedPermit {
    fn drop(&mut self) {
        *self.sema.permits.lock().unwrap() += 1;
        self.sema.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn try_acquire_respects_limit() {
        let s = Semaphore::new(2);
        let a = s.try_acquire().unwrap();
        let _b = s.try_acquire().unwrap();
        assert!(s.try_acquire().is_none());
        drop(a);
        assert!(s.try_acquire().is_some());
    }

    #[test]
    fn concurrency_never_exceeds_permits() {
        const PERMITS: usize = 3;
        let sema = Arc::new(Semaphore::new(PERMITS));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let (sema, live, peak) = (sema.clone(), live.clone(), peak.clone());
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let _permit = sema.acquire();
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        live.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= PERMITS);
        assert_eq!(sema.available(), PERMITS);
    }
}
