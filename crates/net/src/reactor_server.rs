//! The reactor engine: `ProxyServer`'s protocol on the `dvm-reactor`
//! event loop.
//!
//! [`NetHandler`] is the glue between the loop's byte-level callbacks
//! and the engine-agnostic protocol ([`crate::protocol`]): frame
//! boundaries come from [`crate::assembler::peek_frame`], decoded
//! frames go through `handle_frame`, and `CODE_REQUEST` execution
//! (the one blocking step) is deferred to the reactor's worker pool so
//! ten thousand idle connections cost buffers, not threads.
//!
//! Overload semantics match the blocking engine: a connection beyond
//! `max_connections` is still accepted, its first complete frame is
//! read, and it gets a typed `Overloaded` error before the close — the
//! rejection is never lost to a reset racing the client's write.

use std::sync::Arc;

use dvm_reactor::{Boundary, CloseReason, Io, JobOutput, ReactorObserver};
use dvm_telemetry::{Counter, Gauge, Histogram, Telemetry};

use crate::assembler::peek_frame;
use crate::frame::{ErrorCode, Frame};
use crate::protocol::{execute_plan, handle_frame, ConnProto, Flow};
use crate::server::Inner;

/// Per-connection state on the reactor: protocol state plus the
/// overload latch.
#[derive(Debug, Default)]
pub(crate) struct RConn {
    proto: ConnProto,
    /// Accepted beyond the serving limit: reply `Overloaded` to the
    /// first frame, then drain and close.
    overloaded: bool,
    /// The overload rejection has been queued (ignore further frames
    /// that race the close).
    rejected: bool,
}

/// The `dvm-net` protocol as a reactor [`dvm_reactor::Handler`].
pub(crate) struct NetHandler {
    pub(crate) inner: Arc<Inner>,
}

impl NetHandler {
    fn send_frame(&self, io: &mut Io<'_>, frame: &Frame) {
        let encoded = self.inner.encode_counted(frame);
        io.send(&encoded);
    }
}

impl dvm_reactor::Handler for NetHandler {
    type Conn = RConn;

    fn on_open(&self, _token: u64, overloaded: bool) -> RConn {
        if overloaded {
            self.inner.stats.lock().overload_rejects += 1;
            self.inner.metrics.overload_rejects.inc();
        } else {
            self.inner.stats.lock().connections += 1;
            self.inner
                .live
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.inner.metrics.live_connections.add(1);
        }
        RConn {
            proto: ConnProto::default(),
            overloaded,
            rejected: false,
        }
    }

    fn frame_boundary(&self, buf: &[u8]) -> Boundary {
        match peek_frame(buf) {
            Ok(None) => Boundary::NeedMore,
            Ok(Some(n)) => Boundary::Frame(n),
            Err(e) => Boundary::Violation(e.to_string()),
        }
    }

    fn on_data(&self, n: usize) {
        self.inner.metrics.bytes_in.add(n as u64);
    }

    fn on_frame(&self, io: &mut Io<'_>, conn: &mut RConn, frame: &[u8]) {
        if conn.overloaded {
            // At-capacity arrival: answer its opening frame with the
            // typed rejection, then drain out and close.
            if !conn.rejected {
                conn.rejected = true;
                self.send_frame(
                    io,
                    &Frame::Error {
                        request_id: 0,
                        code: ErrorCode::Overloaded,
                        message: "server at connection capacity".into(),
                    },
                );
                io.close_after_flush();
            }
            return;
        }
        // `frame` is exactly one length-delimited frame (prefix
        // included), as judged by `peek_frame`; the body can still be
        // semantically malformed (unknown tag, truncated payload).
        let decoded = match Frame::decode_body(&frame[4..]) {
            Ok(f) => f,
            Err(e) => {
                self.inner.stats.lock().malformed += 1;
                self.inner.metrics.malformed.inc();
                self.send_frame(
                    io,
                    &Frame::Error {
                        request_id: 0,
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                io.close_after_flush();
                return;
            }
        };
        let mut replies = Vec::new();
        let flow = handle_frame(&self.inner, &mut conn.proto, decoded, &mut replies);
        for f in &replies {
            self.send_frame(io, f);
        }
        match flow {
            Flow::Continue => {}
            Flow::Close => io.close_after_flush(),
            Flow::Kill => io.close(),
            Flow::Execute(plan) => {
                // The blocking step — rewrite pipeline, store I/O,
                // injected delays — runs on the pool; the loop stops
                // consuming this connection's frames until the output
                // is delivered back, which preserves response order.
                let inner = self.inner.clone();
                io.defer(move || {
                    let out = execute_plan(&inner, plan);
                    JobOutput {
                        bytes: out.bytes,
                        close: out.close,
                        kill: false,
                    }
                });
            }
        }
    }

    fn on_violation(&self, io: &mut Io<'_>, _conn: &mut RConn, detail: &str) {
        // Framing violation (bad length prefix): same typed answer the
        // blocking engine gives to an unparseable stream.
        self.inner.stats.lock().malformed += 1;
        self.inner.metrics.malformed.inc();
        self.send_frame(
            io,
            &Frame::Error {
                request_id: 0,
                code: ErrorCode::Malformed,
                message: detail.into(),
            },
        );
    }

    fn on_close(&self, _token: u64, conn: RConn, reason: CloseReason) {
        if !conn.overloaded {
            self.inner
                .live
                .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
            self.inner.metrics.live_connections.add(-1);
        }
        if reason == CloseReason::IdleExpired {
            self.inner.stats.lock().idle_reaped += 1;
            self.inner.metrics.idle_reaped.inc();
        }
    }
}

/// Loop instrumentation wired into the node's telemetry plane — the
/// reactor's health is scrapeable and journaled like every other
/// subsystem.
pub(crate) struct ReactorTelemetry {
    inner: Arc<Inner>,
    loop_iterations: Arc<Counter>,
    events_total: Arc<Counter>,
    conns_open: Arc<Gauge>,
    backpressure_stalls: Arc<Counter>,
    wakeup_ns: Arc<Histogram>,
}

impl ReactorTelemetry {
    pub(crate) fn register(telemetry: &Telemetry, inner: Arc<Inner>) -> ReactorTelemetry {
        let r = telemetry.registry();
        ReactorTelemetry {
            inner,
            loop_iterations: r.counter("reactor.loop_iterations"),
            events_total: r.counter("reactor.events_total"),
            conns_open: r.gauge("reactor.conns_open"),
            backpressure_stalls: r.counter("reactor.backpressure_stalls_total"),
            wakeup_ns: r.histogram("reactor.wakeup_ns"),
        }
    }
}

impl ReactorObserver for ReactorTelemetry {
    fn loop_iteration(&self, events: usize) {
        self.loop_iterations.inc();
        self.events_total.add(events as u64);
    }

    fn conn_delta(&self, delta: i64) {
        self.conns_open.add(delta);
    }

    fn backpressure_stall(&self) {
        self.backpressure_stalls.inc();
        self.inner.stats.lock().backpressure_stalls += 1;
    }

    fn wakeup_ns(&self, ns: u64) {
        self.wakeup_ns.record(ns);
    }
}
