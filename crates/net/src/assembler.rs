//! Incremental frame assembly: the streaming side of the wire codec.
//!
//! A TCP stream delivers the frame grammar in arbitrary chunks — a
//! length prefix split across two reads, three pipelined frames in one
//! read, one byte at a time from a hostile peer. This module owns the
//! *byte-arrival* state machine both server engines share:
//!
//! - [`peek_frame`] is the pure boundary judgment (no state): given a
//!   buffered prefix, is a whole frame present, is more input needed, or
//!   can this prefix never frame? The reactor engine calls it directly
//!   against its per-connection read buffer.
//! - [`FrameAssembler`] wraps it with a buffer for push-style callers
//!   (the blocking engine's `FrameReader`, tests, the fuzzer): feed
//!   chunks with [`FrameAssembler::push`], pull decoded frames with
//!   [`FrameAssembler::next_frame`].
//!
//! The invariant the fuzzer hammers (`repro_fuzz --target assembler`):
//! for the same byte sequence, *no* chunk partition may change the
//! decoded frame sequence or the terminal error. Short reads are
//! re-buffered, never misparsed.
//!
//! `cov!` probes mark the state transitions so coverage-guided fuzzing
//! can tell a split prefix from a split body from a clean boundary.

use crate::frame::{Frame, FrameError, MAX_FRAME_LEN};

/// Judges the first frame boundary in `buf`: `Ok(None)` when more bytes
/// are needed, `Ok(Some(n))` when the first `n` bytes (prefix included)
/// form one complete frame, and [`FrameError::BadLength`] when the
/// prefix can never frame. Pure: the answer depends only on the bytes,
/// never on how they arrived.
pub fn peek_frame(buf: &[u8]) -> Result<Option<usize>, FrameError> {
    if buf.len() < 4 {
        dvm_fuzz::cov!("asm.prefix.partial");
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        dvm_fuzz::cov!("asm.prefix.bad_length");
        return Err(FrameError::BadLength(len as u64));
    }
    if buf.len() < 4 + len {
        dvm_fuzz::cov!("asm.body.partial");
        return Ok(None);
    }
    dvm_fuzz::cov!("asm.frame.complete");
    Ok(Some(4 + len))
}

/// Push-style incremental frame decoder. Once a framing or payload
/// violation is observed the assembler is dead: the stream has lost
/// sync and every later pull re-reports the original error.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    dead: Option<FrameError>,
}

impl FrameAssembler {
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Feeds one chunk of stream bytes, however the transport cut them.
    pub fn push(&mut self, chunk: &[u8]) {
        if chunk.is_empty() {
            dvm_fuzz::cov!("asm.chunk.empty");
            return;
        }
        if self.buf.is_empty() {
            dvm_fuzz::cov!("asm.chunk.at_boundary");
        } else {
            dvm_fuzz::cov!("asm.chunk.mid_frame");
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pulls the next complete frame: `Ok(None)` until enough bytes have
    /// arrived, then each buffered frame in arrival order.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(e) = &self.dead {
            dvm_fuzz::cov!("asm.dead.reuse");
            return Err(e.clone());
        }
        match peek_frame(&self.buf) {
            Ok(None) => Ok(None),
            Ok(Some(n)) => match Frame::decode_body(&self.buf[4..n]) {
                Ok(frame) => {
                    self.buf.drain(..n);
                    if self.buf.len() >= 4 {
                        dvm_fuzz::cov!("asm.frame.pipelined_backlog");
                    }
                    Ok(Some(frame))
                }
                Err(e) => {
                    dvm_fuzz::cov!("asm.body.malformed");
                    self.dead = Some(e.clone());
                    Err(e)
                }
            },
            Err(e) => {
                dvm_fuzz::cov!("asm.framing.violation");
                self.dead = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a violation has killed the stream.
    pub fn is_dead(&self) -> bool {
        self.dead.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Hello;

    fn wire(frames: &[Frame]) -> Vec<u8> {
        frames.iter().flat_map(|f| f.encode()).collect()
    }

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello(Hello {
                user: "alice".into(),
                ..Hello::default()
            }),
            Frame::Welcome { session: 7 },
            Frame::Bye,
        ]
    }

    /// Reference decode: one-shot `try_decode` over the whole buffer.
    fn one_shot(mut buf: &[u8]) -> (Vec<Frame>, Option<FrameError>) {
        let mut frames = Vec::new();
        loop {
            match Frame::try_decode(buf) {
                Ok(Some((f, n))) => {
                    frames.push(f);
                    buf = &buf[n..];
                }
                Ok(None) => return (frames, None),
                Err(e) => return (frames, Some(e)),
            }
        }
    }

    #[test]
    fn every_chunk_partition_yields_the_same_frames() {
        let bytes = wire(&samples());
        for chunk_size in 1..=bytes.len() {
            let mut asm = FrameAssembler::new();
            let mut got = Vec::new();
            for chunk in bytes.chunks(chunk_size) {
                asm.push(chunk);
                while let Some(f) = asm.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, samples(), "chunk size {chunk_size}");
            assert_eq!(asm.buffered(), 0);
        }
    }

    #[test]
    fn partition_equivalence_holds_for_violations_too() {
        // A good frame, then a zero-length prefix (framing violation).
        let mut bytes = wire(&samples()[..1]);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        let (reference, reference_err) = one_shot(&bytes);
        for chunk_size in 1..=bytes.len() {
            let mut asm = FrameAssembler::new();
            let mut got = Vec::new();
            let mut err = None;
            'feed: for chunk in bytes.chunks(chunk_size) {
                asm.push(chunk);
                loop {
                    match asm.next_frame() {
                        Ok(Some(f)) => got.push(f),
                        Ok(None) => break,
                        Err(e) => {
                            err = Some(e);
                            break 'feed;
                        }
                    }
                }
            }
            assert_eq!(got, reference, "chunk size {chunk_size}");
            assert_eq!(err, reference_err, "chunk size {chunk_size}");
            assert!(asm.is_dead());
            // A dead assembler keeps reporting the violation.
            assert_eq!(
                asm.next_frame().unwrap_err(),
                reference_err.clone().unwrap()
            );
        }
    }

    #[test]
    fn peek_is_pure_and_bounds_checked() {
        assert_eq!(peek_frame(&[]).unwrap(), None);
        assert_eq!(peek_frame(&[0, 0, 0]).unwrap(), None);
        assert!(matches!(
            peek_frame(&[0, 0, 0, 0]),
            Err(FrameError::BadLength(0))
        ));
        assert!(matches!(
            peek_frame(&[0xFF; 8]),
            Err(FrameError::BadLength(_))
        ));
        let encoded = Frame::Bye.encode();
        assert_eq!(peek_frame(&encoded).unwrap(), Some(encoded.len()));
        assert_eq!(peek_frame(&encoded[..encoded.len() - 1]).unwrap(), None);
    }
}
