//! Engine-agnostic server protocol logic.
//!
//! The server speaks one protocol through two engines: the blocking
//! thread-per-connection loop (`server::serve_connection`) and the
//! epoll reactor (`reactor_server`). Both funnel every decoded frame
//! through [`handle_frame`], which owns the request/response semantics
//! — stats, fault-plan decisions, membership and migration answers —
//! and stays ignorant of sockets. The one frame that does real work,
//! `CODE_REQUEST`, comes back as [`Flow::Execute`] so each engine can
//! run [`execute_plan`] where blocking is acceptable: inline on a
//! connection thread, or on the reactor's worker pool.

use std::sync::atomic::Ordering;

use dvm_monitor::{ClientDescription, SessionId, SiteId};
use dvm_proxy::{CacheTier, ProxyError, RequestContext, ServedFrom};
use dvm_telemetry::{SpanId, TraceContext};

use crate::frame::{kind_from_u8, ErrorCode, Frame, Hello};
use crate::server::{FaultAction, Inner, MIGRATE_BATCH};

/// What the engine must do after a frame is handled. Replies queued in
/// the `replies` buffer are sent regardless; `Flow` says what happens
/// next.
#[derive(Debug)]
pub(crate) enum Flow {
    /// Keep serving this connection.
    Continue,
    /// Flush queued replies, then close cleanly.
    Close,
    /// Drop the connection abruptly, without flushing.
    Kill,
    /// Run [`execute_plan`] (blocking work) and deliver its output.
    Execute(ExecPlan),
}

/// A `CODE_REQUEST` lifted out of the frame loop: everything
/// [`execute_plan`] needs, owned, so it can move to a worker thread.
#[derive(Debug)]
pub(crate) struct ExecPlan {
    pub request_id: u32,
    pub url: String,
    pub trace: Option<TraceContext>,
    /// A non-`Drop` fault to apply on the response path.
    pub fault: Option<FaultAction>,
    /// Client identity captured from the connection's handshake.
    pub client: String,
    pub principal: String,
}

/// The outcome of [`execute_plan`]: raw wire bytes (already counted on
/// the out-metrics) plus whether the connection must close after they
/// flush (`Truncate` kills the connection by design).
#[derive(Debug)]
pub(crate) struct ExecOutput {
    pub bytes: Vec<u8>,
    pub close: bool,
}

/// Per-connection protocol state, engine-owned.
#[derive(Debug, Default)]
pub(crate) struct ConnProto {
    /// The handshake, once one arrived (identity for later requests).
    pub hello: Option<Hello>,
    /// 1-based count of code requests on this connection, for
    /// per-connection fault triggers.
    pub conn_requests: u64,
}

/// Handles one client frame: updates stats, queues reply frames, and
/// reports the resulting control flow. Pure protocol — no socket I/O.
pub(crate) fn handle_frame(
    inner: &Inner,
    proto: &mut ConnProto,
    frame: Frame,
    replies: &mut Vec<Frame>,
) -> Flow {
    inner.metrics.frames_in.inc();
    match frame {
        Frame::Hello(h) => {
            let session = match &inner.console {
                Some(console) => {
                    console
                        .lock()
                        .handshake(ClientDescription {
                            user: h.user.clone(),
                            hardware: h.hardware.clone(),
                            native_format: h.native_format.clone(),
                            jvm_version: h.jvm_version.clone(),
                        })
                        .0
                }
                None => inner.anon_sessions.fetch_add(1, Ordering::SeqCst),
            };
            proto.hello = Some(h);
            replies.push(Frame::Welcome { session });
            Flow::Continue
        }
        Frame::CodeRequest {
            request_id,
            url,
            trace,
            ..
        } => {
            inner.stats.lock().requests += 1;
            proto.conn_requests += 1;
            let fault = inner.config.fault.as_ref().and_then(|plan| {
                let server_seq = inner.request_counter.fetch_add(1, Ordering::SeqCst) + 1;
                plan.decide(server_seq, proto.conn_requests)
            });
            if fault.is_some() {
                inner.stats.lock().faults_injected += 1;
            }
            if fault == Some(FaultAction::Drop) {
                return Flow::Kill;
            }
            Flow::Execute(ExecPlan {
                request_id,
                url,
                trace,
                fault,
                client: proto
                    .hello
                    .as_ref()
                    .map(|h| h.user.clone())
                    .unwrap_or_default(),
                principal: proto
                    .hello
                    .as_ref()
                    .map(|h| h.principal.clone())
                    .unwrap_or_default(),
            })
        }
        Frame::AuditEvent {
            session,
            site,
            kind,
        } => {
            // Console ingest: the wire form of the client-resident audit
            // service component reporting upstream.
            if let (Some(console), Some(kind)) = (&inner.console, kind_from_u8(kind)) {
                console
                    .lock()
                    .record(SessionId(session), SiteId(site), kind);
                inner.stats.lock().audit_events += 1;
                inner.metrics.audit_events.inc();
            }
            Flow::Continue
        }
        Frame::PeerGet { request_id, url } => {
            // Cache-fill probe from a peer shard: answer from the local
            // cache only — a peer probe must never trigger a rewrite
            // here (the asking shard owns that fallback).
            inner.stats.lock().peer_gets += 1;
            let reply = match inner.proxy.cache_peek(&url) {
                Some((bytes, tier)) => {
                    inner.stats.lock().peer_hits += 1;
                    Frame::CodeResponse {
                        request_id,
                        served_from: match tier {
                            CacheTier::Memory => ServedFrom::MemoryCache,
                            CacheTier::Disk => ServedFrom::DiskCache,
                        },
                        processing_ns: 0,
                        bytes: bytes.to_vec(),
                    }
                }
                None => Frame::Error {
                    request_id,
                    code: ErrorCode::CacheMiss,
                    message: String::new(),
                },
            };
            replies.push(reply);
            Flow::Continue
        }
        Frame::PeerPut { url, bytes } => {
            // Unsolicited offer from the shard that just rewrote the url
            // we own: land it on the disk tier so it cannot evict our
            // hot set, and send nothing back.
            inner.stats.lock().peer_puts += 1;
            inner.proxy.cache_fill(&url, bytes, CacheTier::Disk);
            Flow::Continue
        }
        Frame::StatsRequest {
            request_id,
            include_spans,
        } => {
            // The stats plane: serialize this node's live telemetry and
            // hand it back. Reading the plane is itself counted, so
            // pollers are visible in what they poll.
            inner.metrics.stats_requests.inc();
            let report = if include_spans {
                inner.telemetry.report()
            } else {
                inner.telemetry.report_metrics_only()
            };
            replies.push(Frame::StatsResponse {
                request_id,
                report: report.encode(),
            });
            Flow::Continue
        }
        Frame::RingUpdate { epoch, .. } => {
            // Epoch exchange: an asker behind the published epoch gets
            // the full snapshot; an up-to-date one gets just our epoch
            // back (cheap enough to poll).
            inner.stats.lock().ring_updates += 1;
            inner.metrics.ring_updates.inc();
            let view = inner.membership.lock().clone();
            let (our_epoch, ring) = match view {
                Some(v) => {
                    let e = v.epoch();
                    if epoch < e {
                        (e, v.snapshot().to_vec())
                    } else {
                        (e, Vec::new())
                    }
                }
                None => (0, Vec::new()),
            };
            replies.push(Frame::RingUpdate {
                epoch: our_epoch,
                ring,
            });
            Flow::Continue
        }
        Frame::MigrateBegin {
            request_id,
            epoch,
            shard,
            resume_from,
        } => {
            // Live cache migration, source side: stream the keys `shard`
            // now owns out of our cache in bounded batches. The exporter
            // owns ring/ownership logic; refusals (no exporter, epoch
            // mismatch) are typed errors, and a truncated batch ends
            // with `complete: false` so the target resumes from the last
            // key it saw.
            let exporter = inner.exporter.lock().clone();
            let batch = match &exporter {
                Some(x) => x.export(shard, epoch, &resume_from, MIGRATE_BATCH),
                None => Err("no migration exporter installed".into()),
            };
            match batch {
                Ok(batch) => {
                    inner.stats.lock().migrate_streams += 1;
                    let total = batch.entries.len() as u32;
                    for (seq, (url, bytes)) in batch.entries.into_iter().enumerate() {
                        replies.push(Frame::MigrateChunk {
                            request_id,
                            seq: seq as u32,
                            url,
                            bytes,
                        });
                        inner.stats.lock().migrate_chunks_out += 1;
                        inner.metrics.migrate_chunks_out.inc();
                    }
                    replies.push(Frame::MigrateEnd {
                        request_id,
                        total,
                        complete: batch.complete,
                    });
                }
                Err(msg) => {
                    inner.stats.lock().migrate_rejects += 1;
                    replies.push(Frame::Error {
                        request_id,
                        code: ErrorCode::Internal,
                        message: msg,
                    });
                }
            }
            Flow::Continue
        }
        Frame::MetricsScrape { request_id } => {
            // The scrape plane: render the Prometheus-text exposition
            // through the installed source. Scraping is itself counted,
            // so pollers are visible in what they poll (same discipline
            // as STATS_REQUEST).
            inner.metrics.scrape_requests.inc();
            let source = inner.scrape.lock().clone();
            let reply = match source {
                Some(s) => Frame::MetricsText {
                    request_id,
                    text: s.render_metrics().into_bytes(),
                },
                None => Frame::Error {
                    request_id,
                    code: ErrorCode::Internal,
                    message: "no metrics source installed".into(),
                },
            };
            replies.push(reply);
            Flow::Continue
        }
        Frame::EventsRequest {
            request_id,
            after_seq,
            max,
        } => {
            // Journal tailing: serve the cursor page straight from the
            // telemetry plane's event journal (and its durable spool,
            // when one is installed).
            inner.metrics.events_requests.inc();
            let page = inner
                .telemetry
                .journal()
                .events_after(after_seq, (max as usize).min(1024));
            let next_seq = page.last().map(|e| e.seq).unwrap_or(after_seq);
            replies.push(Frame::EventsResponse {
                request_id,
                next_seq,
                events: dvm_telemetry::events::encode_events(&page),
            });
            Flow::Continue
        }
        Frame::Bye => Flow::Close,
        Frame::Welcome { .. }
        | Frame::CodeResponse { .. }
        | Frame::Error { .. }
        | Frame::StatsResponse { .. }
        | Frame::MigrateChunk { .. }
        | Frame::MigrateEnd { .. }
        | Frame::MetricsText { .. }
        | Frame::EventsResponse { .. } => {
            // Server-to-client frames arriving at the server.
            inner.stats.lock().malformed += 1;
            inner.metrics.malformed.inc();
            replies.push(Frame::Error {
                request_id: 0,
                code: ErrorCode::Malformed,
                message: "unexpected frame direction".into(),
            });
            Flow::Close
        }
    }
}

/// Serves one `CODE_REQUEST` through the proxy pipeline. This is the
/// blocking half — rewrite pipeline, store I/O, injected delays — and
/// must run off the reactor loop (the blocking engine runs it inline on
/// its connection thread). Out-metrics for the returned bytes are
/// counted here.
pub(crate) fn execute_plan(inner: &Inner, plan: ExecPlan) -> ExecOutput {
    if let Some(FaultAction::Delay(d)) = plan.fault {
        std::thread::sleep(d);
    }
    // A traced request gets a "shard.serve" span covering the whole
    // server-side handling; its id is allocated now so the proxy's
    // spans parent under it.
    let recorder = inner.telemetry.recorder();
    let serve_start = recorder.now_ns();
    let serve_span = plan.trace.map(|t| (t, SpanId::generate()));
    let ctx = RequestContext {
        client: plan.client,
        principal: plan.principal,
        url: plan.url.clone(),
        trace: serve_span.map(|(t, id)| TraceContext {
            trace: t.trace,
            parent: id,
        }),
    };
    let mut reply = match inner.proxy.handle_request_detailed(&plan.url, &ctx) {
        Ok(response) => {
            inner.stats.lock().responses += 1;
            Frame::CodeResponse {
                request_id: plan.request_id,
                served_from: response.served_from,
                processing_ns: response.processing_ns,
                bytes: response.bytes.to_vec(),
            }
        }
        Err(e) => {
            inner.stats.lock().errors += 1;
            let code = match &e {
                ProxyError::NotFound(_) => ErrorCode::NotFound,
                ProxyError::Parse(_) => ErrorCode::Parse,
                ProxyError::Filter(_) => ErrorCode::Filter,
            };
            Frame::Error {
                request_id: plan.request_id,
                code,
                message: e.to_string(),
            }
        }
    };
    let serve_duration = recorder.now_ns().saturating_sub(serve_start);
    inner.metrics.serve_ns.record(serve_duration);
    if let Some((t, id)) = serve_span {
        recorder.record_span(
            t.trace,
            id,
            t.parent,
            "shard.serve",
            serve_start,
            serve_duration,
        );
    }
    match plan.fault {
        Some(FaultAction::Corrupt) => {
            // Flip one byte in the middle of the payload: the frame
            // still parses, so only the client's signature check can
            // catch the damage.
            if let Frame::CodeResponse { bytes, .. } = &mut reply {
                if !bytes.is_empty() {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0xFF;
                }
            }
            ExecOutput {
                bytes: inner.encode_counted(&reply),
                close: false,
            }
        }
        Some(FaultAction::Truncate(n)) => {
            // Deliver a strict prefix of the encoded frame, then die:
            // the client must see a mid-frame truncation, never a
            // short-but-clean close.
            let encoded = reply.encode();
            let cut = n.clamp(1, encoded.len().saturating_sub(1));
            inner.metrics.frames_out.inc();
            inner.metrics.bytes_out.add(cut as u64);
            ExecOutput {
                bytes: encoded[..cut].to_vec(),
                close: true,
            }
        }
        _ => ExecOutput {
            bytes: inner.encode_counted(&reply),
            close: false,
        },
    }
}
