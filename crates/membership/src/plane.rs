//! The membership plane: orchestrating elastic scale over a cluster.
//!
//! [`ProxyCluster`] owns the *mechanics* of membership — binding
//! servers, remapping the ring, publishing epochs. This module owns the
//! *policy*: a join is not done until the new shard has pulled its key
//! range out of the old owners (so its first fetches hit warm cache),
//! a retirement drains the departing shard's keys into the survivors
//! before its server goes away (so nothing is re-rewritten that did not
//! have to be), and a shard that stops answering gossip probes is
//! suspected, confirmed dead, and retired without an operator.

use std::net::SocketAddr;
use std::sync::Arc;

use dvm_cluster::{HealthConfig, HealthTracker, ProxyCluster, RemapPlan};
use dvm_net::{Hello, NetConfig};
use dvm_proxy::Proxy;
use dvm_telemetry::{Counter, Gauge, JournalKind, Registry, Telemetry};

use crate::gossip::{GossipConfig, GossipEvent, Pinger, SwimDetector, TcpPinger};
use crate::migrate::{MigrationClient, MigrationConfig, MigrationError, MigrationReport};

/// Plane tuning.
#[derive(Debug, Clone, Copy)]
pub struct MembershipOptions {
    /// Transport knobs for migration pulls and gossip probes.
    pub net: NetConfig,
    /// Migration retry/backoff tuning.
    pub migration: MigrationConfig,
    /// Failure-detector tuning.
    pub gossip: GossipConfig,
    /// Seed for the deterministic probe schedule.
    pub gossip_seed: u64,
    /// Circuit-breaker tuning for the plane's health view.
    pub health: HealthConfig,
}

impl Default for MembershipOptions {
    fn default() -> Self {
        MembershipOptions {
            net: NetConfig::default(),
            migration: MigrationConfig::default(),
            gossip: GossipConfig::default(),
            gossip_seed: 0xD5A1_57E5,
            health: HealthConfig::default(),
        }
    }
}

/// What a join accomplished.
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// The new shard's id.
    pub shard: u32,
    /// The minimal remap that gave it its key range.
    pub plan: RemapPlan,
    /// The migration pull, summed over every source shard.
    pub migration: MigrationReport,
    /// Source shards that could not be fully drained (their keys warm
    /// up lazily through re-rewrites instead).
    pub failed_sources: Vec<u32>,
}

/// What a retirement accomplished.
#[derive(Debug, Clone)]
pub struct RetireReport {
    /// The departed shard's id.
    pub shard: u32,
    /// The remap that re-homed its segments onto the survivors.
    pub plan: RemapPlan,
    /// The drain pull out of the departing shard (zeroed when it was
    /// already dead).
    pub drained: MigrationReport,
    /// False when the departing shard could not be drained (dead or
    /// unreachable) and retirement was committed anyway.
    pub drain_ok: bool,
}

/// Lifetime counters for the plane.
#[derive(Debug, Clone, Copy, Default)]
pub struct MembershipStats {
    /// Shards joined.
    pub joins: u64,
    /// Shards retired.
    pub retires: u64,
    /// Shards restarted in place.
    pub restarts: u64,
    /// Cache entries moved by migration (joins and drains).
    pub migrated_keys: u64,
    /// Value bytes moved by migration.
    pub migrated_bytes: u64,
    /// Cut migration streams resumed from their cursor.
    pub migration_resumes: u64,
    /// Retirements committed without a drain (source dead).
    pub undrained_retires: u64,
    /// Gossip suspicions opened.
    pub suspects: u64,
    /// Suspicions refuted by a live answer.
    pub refutes: u64,
    /// Members declared dead by gossip.
    pub deaths: u64,
}

struct Metrics {
    joins: Arc<Counter>,
    retires: Arc<Counter>,
    restarts: Arc<Counter>,
    migrated_keys: Arc<Counter>,
    migrated_bytes: Arc<Counter>,
    migration_resumes: Arc<Counter>,
    undrained_retires: Arc<Counter>,
    gossip_probes: Arc<Counter>,
    gossip_suspects: Arc<Counter>,
    gossip_refutes: Arc<Counter>,
    gossip_deaths: Arc<Counter>,
    epoch: Arc<Gauge>,
    shards_live: Arc<Gauge>,
}

impl Metrics {
    fn register(r: &Registry) -> Metrics {
        Metrics {
            joins: r.counter("membership.joins"),
            retires: r.counter("membership.retires"),
            restarts: r.counter("membership.restarts"),
            migrated_keys: r.counter("membership.migrated_keys"),
            migrated_bytes: r.counter("membership.migrated_bytes"),
            migration_resumes: r.counter("membership.migration_resumes"),
            undrained_retires: r.counter("membership.undrained_retires"),
            gossip_probes: r.counter("membership.gossip.probes"),
            gossip_suspects: r.counter("membership.gossip.suspects"),
            gossip_refutes: r.counter("membership.gossip.refutes"),
            gossip_deaths: r.counter("membership.gossip.deaths"),
            epoch: r.gauge("membership.epoch"),
            shards_live: r.gauge("membership.shards_live"),
        }
    }
}

/// A pinger that feeds every probe outcome into the plane's health
/// tracker, so the breaker view and the gossip view agree on what they
/// saw.
struct RecordingPinger<'a> {
    inner: TcpPinger,
    health: &'a mut HealthTracker,
    probes: u64,
}

impl Pinger for RecordingPinger<'_> {
    fn ping(&mut self, target: u32) -> bool {
        self.probes += 1;
        let up = self.inner.ping(target);
        if up {
            self.health.record_success(target);
        } else {
            self.health.record_failure(target);
        }
        up
    }

    fn ping_req(&mut self, via: u32, target: u32) -> bool {
        self.probes += 1;
        let up = self.inner.ping_req(via, target);
        if up {
            self.health.record_success(target);
        } else {
            self.health.record_failure(target);
        }
        up
    }
}

/// The membership plane over one cluster.
pub struct MembershipPlane {
    cluster: ProxyCluster,
    opts: MembershipOptions,
    detector: SwimDetector,
    health: HealthTracker,
    stats: MembershipStats,
    telemetry: Arc<Telemetry>,
    metrics: Metrics,
}

impl std::fmt::Debug for MembershipPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MembershipPlane")
            .field("epoch", &self.cluster.ring().epoch())
            .field("shards", &self.cluster.ring().shards().len())
            .finish()
    }
}

impl MembershipPlane {
    /// Wraps a running cluster; every current ring member starts as an
    /// alive gossip member.
    pub fn new(cluster: ProxyCluster, opts: MembershipOptions) -> MembershipPlane {
        let telemetry = Arc::new(Telemetry::new("membership"));
        let metrics = Metrics::register(telemetry.registry());
        let mut detector = SwimDetector::new(opts.gossip_seed, opts.gossip);
        for &s in cluster.ring().shards() {
            detector.add_member(s);
        }
        let mut health = HealthTracker::new(opts.health);
        health.attach_metrics(telemetry.registry());
        health.attach_journal(telemetry.clone());
        let plane = MembershipPlane {
            cluster,
            opts,
            detector,
            health,
            stats: MembershipStats::default(),
            telemetry,
            metrics,
        };
        plane.publish_gauges();
        plane
    }

    fn publish_gauges(&self) {
        self.metrics.epoch.set(self.cluster.ring().epoch() as i64);
        self.metrics
            .shards_live
            .set(self.cluster.live_addrs().len() as i64);
    }

    /// The wrapped cluster (routing, stats, shard handles).
    pub fn cluster(&self) -> &ProxyCluster {
        &self.cluster
    }

    /// Mutable cluster access for operations the plane does not
    /// mediate (kills in chaos runs, shutdown).
    pub fn cluster_mut(&mut self) -> &mut ProxyCluster {
        &mut self.cluster
    }

    /// Consumes the plane, returning the cluster for shutdown.
    pub fn into_cluster(self) -> ProxyCluster {
        self.cluster
    }

    /// This plane's telemetry node (`membership.*`, `gossip` breaker
    /// gauges).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.telemetry.clone()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MembershipStats {
        self.stats
    }

    /// The plane's breaker view of a shard (true = quarantined).
    pub fn is_quarantined(&self, shard: u32) -> bool {
        self.health.is_quarantined(shard)
    }

    fn migration_hello(shard: u32) -> Hello {
        Hello {
            user: format!("shard{shard}"),
            principal: "cluster-peer".into(),
            ..Hello::default()
        }
    }

    fn track(&mut self, m: &MigrationReport) {
        self.stats.migrated_keys += m.keys;
        self.stats.migrated_bytes += m.bytes;
        self.stats.migration_resumes += m.resumes;
        self.metrics.migrated_keys.add(m.keys);
        self.metrics.migrated_bytes.add(m.bytes);
        self.metrics.migration_resumes.add(m.resumes);
    }

    /// Adds `proxy` as a new shard and warms it up: the ring assigns it
    /// a minimal key range at a new epoch, and the shard pulls that
    /// range out of each previous owner over the migration protocol
    /// before this call returns. A source that cannot be reached is
    /// recorded in the report and skipped — its keys warm up lazily.
    pub fn join(&mut self, proxy: Arc<Proxy>) -> std::io::Result<JoinReport> {
        let (shard, plan) = self.cluster.spawn_shard(proxy)?;
        self.telemetry
            .record_event(JournalKind::RingEpoch { epoch: plan.epoch });
        self.telemetry
            .record_event(JournalKind::MigrationBegun { shard });
        let target = self.cluster.proxy(shard as usize).clone();
        let live: Vec<(u32, SocketAddr)> = self.cluster.live_addrs();
        let mut migration = MigrationReport {
            complete: true,
            ..MigrationReport::default()
        };
        let mut failed_sources = Vec::new();
        for source in plan.sources() {
            let Some(&(_, addr)) = live.iter().find(|&&(s, _)| s == source) else {
                failed_sources.push(source);
                continue;
            };
            let mut puller =
                MigrationClient::new(addr, Self::migration_hello(shard), self.opts.migration);
            match puller.pull(shard, plan.epoch, |url, bytes| {
                target.migrate_ingest(url, bytes.to_vec());
            }) {
                Ok(m) => {
                    migration.keys += m.keys;
                    migration.bytes += m.bytes;
                    migration.resumes += m.resumes;
                    migration.complete &= m.complete;
                }
                Err(MigrationError::Refused(_)) | Err(MigrationError::Unreachable) => {
                    migration.complete = false;
                    failed_sources.push(source);
                }
            }
        }
        self.track(&migration);
        self.telemetry
            .record_event(JournalKind::MigrationCompleted {
                shard,
                entries: migration.keys,
            });
        self.detector.add_member(shard);
        self.stats.joins += 1;
        self.metrics.joins.inc();
        self.publish_gauges();
        Ok(JoinReport {
            shard,
            plan,
            migration,
            failed_sources,
        })
    }

    /// Retires `shard`: first drains every key it owns into the
    /// survivor that inherits it (per the retirement preview — the
    /// committed plan is identical), then commits the ring change and
    /// shuts the shard's server down. A dead or unreachable shard is
    /// retired without a drain; the survivors re-rewrite its keys on
    /// demand, bounded by the keys it owned.
    pub fn retire(&mut self, shard: u32) -> RetireReport {
        let mut preview = self.cluster.ring().clone();
        let plan = preview.retire_shard(shard);
        let mut drained = MigrationReport::default();
        let mut drain_ok = false;
        let is_member = self.cluster.ring().shards().contains(&shard);
        if is_member && self.cluster.is_alive(shard as usize) && !plan.is_empty() {
            // Pull *all* the departing shard's keys out of it (it is
            // still the published owner), landing each on the survivor
            // the post-retirement ring homes it on.
            let addr = self.cluster.addrs()[shard as usize];
            let epoch = self.cluster.ring().epoch();
            let survivors: Vec<(u32, Arc<Proxy>)> = plan
                .targets()
                .iter()
                .map(|&t| (t, self.cluster.proxy(t as usize).clone()))
                .collect();
            let mut puller =
                MigrationClient::new(addr, Self::migration_hello(shard), self.opts.migration);
            self.telemetry
                .record_event(JournalKind::MigrationBegun { shard });
            match puller.pull(shard, epoch, |url, bytes| {
                if let Some(home) = preview.home(url) {
                    if let Some((_, p)) = survivors.iter().find(|&&(s, _)| s == home) {
                        p.migrate_ingest(url, bytes.to_vec());
                    }
                }
            }) {
                Ok(m) => {
                    drain_ok = m.complete;
                    drained = m;
                }
                Err(_) => drain_ok = false,
            }
            self.telemetry
                .record_event(JournalKind::MigrationCompleted {
                    shard,
                    entries: drained.keys,
                });
        }
        self.track(&drained);
        let (plan, _) = self.cluster.retire_shard(shard as usize);
        if is_member {
            self.telemetry.record_event(JournalKind::RingEpoch {
                epoch: self.cluster.ring().epoch(),
            });
            self.detector.remove_member(shard);
            self.stats.retires += 1;
            self.metrics.retires.inc();
            if !drain_ok {
                self.stats.undrained_retires += 1;
                self.metrics.undrained_retires.inc();
            }
            self.publish_gauges();
        }
        RetireReport {
            shard,
            plan,
            drained,
            drain_ok,
        }
    }

    /// Restarts a killed shard in place (same ring ownership, new
    /// socket, bumped epoch) and re-admits it to gossip.
    pub fn restart(&mut self, shard: u32) -> std::io::Result<SocketAddr> {
        let addr = self.cluster.restart_shard(shard as usize)?;
        self.telemetry.record_event(JournalKind::RingEpoch {
            epoch: self.cluster.ring().epoch(),
        });
        self.detector.add_member(shard);
        self.stats.restarts += 1;
        self.metrics.restarts.inc();
        self.publish_gauges();
        Ok(addr)
    }

    /// One gossip protocol period: probe the next member over TCP,
    /// escalate to indirect probes, expire suspicions. Probes target
    /// every *ring member's* last known address — including killed
    /// shards, which is exactly how their death is noticed. Every
    /// outcome also feeds the plane's health tracker.
    pub fn gossip_tick(&mut self) -> Vec<GossipEvent> {
        // Keep detector membership in lockstep with the ring.
        let members: Vec<u32> = self.cluster.ring().shards().to_vec();
        for &s in &members {
            if self.detector.state(s).is_none() {
                self.detector.add_member(s);
            }
        }
        let pairs: Vec<(u32, SocketAddr)> = members
            .iter()
            .map(|&s| (s, self.cluster.addrs()[s as usize]))
            .collect();
        let hello = Hello {
            user: "gossip".into(),
            principal: "cluster-peer".into(),
            ..Hello::default()
        };
        let mut pinger = RecordingPinger {
            inner: TcpPinger::new(&pairs, hello, self.opts.net),
            health: &mut self.health,
            probes: 0,
        };
        let events = self.detector.tick(&mut pinger);
        self.metrics.gossip_probes.add(pinger.probes);
        for e in &events {
            match e {
                GossipEvent::Suspect { .. } => {
                    self.stats.suspects += 1;
                    self.metrics.gossip_suspects.inc();
                }
                GossipEvent::Refute { .. } => {
                    self.stats.refutes += 1;
                    self.metrics.gossip_refutes.inc();
                }
                GossipEvent::Dead { .. } => {
                    self.stats.deaths += 1;
                    self.metrics.gossip_deaths.inc();
                }
            }
        }
        events
    }

    /// Members gossip has declared dead but the ring still carries.
    pub fn dead_members(&self) -> Vec<u32> {
        self.detector
            .dead_members()
            .into_iter()
            .filter(|s| self.cluster.ring().shards().contains(s))
            .collect()
    }

    /// Retires every gossip-confirmed-dead member (no drain is possible
    /// — they are dead), returning what was done. This is the
    /// "auto-propose ring removal" step; callers wanting manual
    /// approval read [`MembershipPlane::dead_members`] instead.
    pub fn retire_dead(&mut self) -> Vec<RetireReport> {
        self.dead_members()
            .into_iter()
            .map(|s| self.retire(s))
            .collect()
    }
}
