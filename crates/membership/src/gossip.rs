//! SWIM-style gossip failure detection, from scratch and deterministic.
//!
//! The detector is a pure state machine over a seeded RNG: given the
//! same seed, membership, and probe outcomes, every tick produces the
//! same probes and the same verdicts — chaos runs replay exactly. All
//! I/O lives behind the [`Pinger`] trait; production uses a TCP
//! handshake probe ([`TcpPinger`]), tests use scripted outcomes.
//!
//! Per tick, one member is probed (round-robin over a seeded shuffle,
//! reshuffled each full pass, as in the SWIM paper). A failed direct
//! ping escalates to `k` indirect probes through other members before
//! the target is *suspected* — one cut link must not condemn a healthy
//! shard. A suspect that stays unreachable for `suspect_ticks` more
//! ticks is declared *dead*; a suspect seen alive refutes the
//! suspicion and bumps its incarnation so stale rumors cannot
//! re-condemn it.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};

use dvm_net::{Frame, Hello, NetConfig};
use dvm_netsim::SimRng;

/// Probe transport. `true` means the target answered.
pub trait Pinger {
    /// Direct probe of `target`.
    fn ping(&mut self, target: u32) -> bool;
    /// Indirect probe of `target` routed via `via` (SWIM's `ping-req`).
    fn ping_req(&mut self, via: u32, target: u32) -> bool;
}

/// A member's health as the detector sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Answering probes.
    Alive,
    /// Failed a direct and every indirect probe; awaiting refutation.
    Suspect,
    /// Suspicion expired unrefuted.
    Dead,
}

/// A state transition worth acting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipEvent {
    /// Direct and indirect probes all failed; suspicion opened at this
    /// incarnation.
    Suspect {
        /// The member under suspicion.
        shard: u32,
        /// Incarnation the suspicion names; a refutation must exceed it.
        incarnation: u64,
    },
    /// A suspect answered a probe; its incarnation bumped past the
    /// suspicion.
    Refute {
        /// The member cleared.
        shard: u32,
        /// Its new incarnation.
        incarnation: u64,
    },
    /// Suspicion expired unrefuted: the membership plane should retire
    /// this shard.
    Dead {
        /// The member declared dead.
        shard: u32,
    },
}

/// Detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct GossipConfig {
    /// Ticks a suspect gets to refute before being declared dead.
    pub suspect_ticks: u32,
    /// Indirect probes (`ping-req` relays) tried after a failed direct
    /// ping.
    pub indirect_probes: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            suspect_ticks: 3,
            indirect_probes: 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Member {
    state: MemberState,
    incarnation: u64,
    /// Tick at which suspicion opened (meaningful only while Suspect).
    suspected_at: u64,
}

/// The deterministic SWIM-style failure detector.
#[derive(Debug)]
pub struct SwimDetector {
    members: BTreeMap<u32, Member>,
    config: GossipConfig,
    rng: SimRng,
    /// Seeded-shuffle probe order for the current pass.
    order: Vec<u32>,
    cursor: usize,
    ticks: u64,
}

impl SwimDetector {
    /// Creates a detector over no members; the same `seed` replays the
    /// same probe schedule.
    pub fn new(seed: u64, config: GossipConfig) -> SwimDetector {
        SwimDetector {
            members: BTreeMap::new(),
            config,
            rng: SimRng::derive(seed, 0x6753_5349_5050_4552), // "gossip-er"
            order: Vec::new(),
            cursor: 0,
            ticks: 0,
        }
    }

    /// Starts (or re-admits) a member as alive. Re-adding a known
    /// member resets it to alive at a bumped incarnation — a restarted
    /// shard rejoins with a clean slate.
    pub fn add_member(&mut self, shard: u32) {
        let incarnation = self
            .members
            .get(&shard)
            .map(|m| m.incarnation + 1)
            .unwrap_or(0);
        self.members.insert(
            shard,
            Member {
                state: MemberState::Alive,
                incarnation,
                suspected_at: 0,
            },
        );
        // Membership changed: finish the pass with the stale order (it
        // is filtered against current members at probe time) and let
        // the next reshuffle pick the newcomer up.
    }

    /// Forgets a member (retired from the ring).
    pub fn remove_member(&mut self, shard: u32) {
        self.members.remove(&shard);
    }

    /// The detector's verdict on `shard`, if it is a member.
    pub fn state(&self, shard: u32) -> Option<MemberState> {
        self.members.get(&shard).map(|m| m.state)
    }

    /// A member's incarnation, if it is a member.
    pub fn incarnation(&self, shard: u32) -> Option<u64> {
        self.members.get(&shard).map(|m| m.incarnation)
    }

    /// Members currently declared dead (the plane retires these).
    pub fn dead_members(&self) -> Vec<u32> {
        self.members
            .iter()
            .filter(|(_, m)| m.state == MemberState::Dead)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Seeded Fisher–Yates over the live-or-suspect member ids.
    fn reshuffle(&mut self) {
        self.order = self
            .members
            .iter()
            .filter(|(_, m)| m.state != MemberState::Dead)
            .map(|(&s, _)| s)
            .collect();
        let n = self.order.len();
        for i in (1..n).rev() {
            let j = self.rng.next_below(i as u64 + 1) as usize;
            self.order.swap(i, j);
        }
        self.cursor = 0;
    }

    /// Picks up to `k` relay candidates other than `target`, in seeded
    /// order.
    fn relays(&mut self, target: u32, k: usize) -> Vec<u32> {
        let mut pool: Vec<u32> = self
            .members
            .iter()
            .filter(|(&s, m)| s != target && m.state == MemberState::Alive)
            .map(|(&s, _)| s)
            .collect();
        let n = pool.len();
        for i in (1..n).rev() {
            let j = self.rng.next_below(i as u64 + 1) as usize;
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    fn mark_alive(&mut self, shard: u32, events: &mut Vec<GossipEvent>) {
        if let Some(m) = self.members.get_mut(&shard) {
            if m.state == MemberState::Suspect {
                m.incarnation += 1;
                m.state = MemberState::Alive;
                events.push(GossipEvent::Refute {
                    shard,
                    incarnation: m.incarnation,
                });
            }
        }
    }

    fn mark_unreachable(&mut self, shard: u32, events: &mut Vec<GossipEvent>) {
        let now = self.ticks;
        if let Some(m) = self.members.get_mut(&shard) {
            if m.state == MemberState::Alive {
                m.state = MemberState::Suspect;
                m.suspected_at = now;
                events.push(GossipEvent::Suspect {
                    shard,
                    incarnation: m.incarnation,
                });
            }
        }
    }

    /// One protocol period: probe the next member in the shuffled
    /// order, escalate to indirect probes on failure, and expire
    /// overdue suspicions. Returns every state transition this tick
    /// produced.
    pub fn tick(&mut self, pinger: &mut dyn Pinger) -> Vec<GossipEvent> {
        self.ticks += 1;
        let mut events = Vec::new();

        // Expire suspicions first, so a dead shard is not probed again.
        let overdue: Vec<u32> = self
            .members
            .iter()
            .filter(|(_, m)| {
                m.state == MemberState::Suspect
                    && self.ticks.saturating_sub(m.suspected_at) > self.config.suspect_ticks as u64
            })
            .map(|(&s, _)| s)
            .collect();
        for shard in overdue {
            if let Some(m) = self.members.get_mut(&shard) {
                m.state = MemberState::Dead;
                events.push(GossipEvent::Dead { shard });
            }
        }

        // Advance to the next still-probeable member in this pass.
        let target = loop {
            if self.cursor >= self.order.len() {
                self.reshuffle();
                if self.order.is_empty() {
                    return events;
                }
            }
            let candidate = self.order[self.cursor];
            self.cursor += 1;
            match self.members.get(&candidate) {
                Some(m) if m.state != MemberState::Dead => break candidate,
                _ => continue,
            }
        };

        if pinger.ping(target) {
            self.mark_alive(target, &mut events);
            return events;
        }
        let relays = self.relays(target, self.config.indirect_probes);
        for via in relays {
            if pinger.ping_req(via, target) {
                self.mark_alive(target, &mut events);
                return events;
            }
        }
        self.mark_unreachable(target, &mut events);
        events
    }
}

/// Production pinger: a probe is a full `HELLO`/`WELCOME` handshake
/// against the shard's serving socket, so "alive" means "accepting and
/// answering the wire protocol", not merely "port open".
///
/// `ping_req` re-probes the target directly on a fresh connection
/// rather than relaying through `via`: on the loopback deployments this
/// codebase targets there is no routing asymmetry for a relay to see,
/// and the wire protocol stays free of a relay frame. The retry still
/// serves SWIM's purpose of demanding independent confirmation before
/// suspicion.
pub struct TcpPinger {
    addrs: BTreeMap<u32, SocketAddr>,
    hello: Hello,
    net: NetConfig,
}

impl TcpPinger {
    /// Creates a pinger over the live address book.
    pub fn new(addrs: &[(u32, SocketAddr)], hello: Hello, net: NetConfig) -> TcpPinger {
        TcpPinger {
            addrs: addrs.iter().copied().collect(),
            hello,
            net,
        }
    }

    fn probe(&self, target: u32) -> bool {
        let Some(addr) = self.addrs.get(&target) else {
            return false;
        };
        let Ok(stream) = TcpStream::connect_timeout(addr, self.net.connect_timeout) else {
            return false;
        };
        if stream
            .set_read_timeout(Some(self.net.read_timeout))
            .is_err()
            || stream
                .set_write_timeout(Some(self.net.write_timeout))
                .is_err()
        {
            return false;
        }
        let mut stream = stream;
        if Frame::Hello(self.hello.clone())
            .write_to(&mut stream)
            .is_err()
        {
            return false;
        }
        let alive = matches!(Frame::read_from(&mut stream), Ok(Frame::Welcome { .. }));
        let _ = Frame::Bye.write_to(&mut stream);
        alive
    }
}

impl Pinger for TcpPinger {
    fn ping(&mut self, target: u32) -> bool {
        self.probe(target)
    }

    fn ping_req(&mut self, _via: u32, target: u32) -> bool {
        self.probe(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scripted pinger: a set of down shards; records probe traffic.
    struct Script {
        down: Vec<u32>,
        pings: Vec<u32>,
        ping_reqs: Vec<(u32, u32)>,
    }

    impl Script {
        fn with_down(down: &[u32]) -> Script {
            Script {
                down: down.to_vec(),
                pings: Vec::new(),
                ping_reqs: Vec::new(),
            }
        }
    }

    impl Pinger for Script {
        fn ping(&mut self, target: u32) -> bool {
            self.pings.push(target);
            !self.down.contains(&target)
        }
        fn ping_req(&mut self, via: u32, target: u32) -> bool {
            self.ping_reqs.push((via, target));
            !self.down.contains(&target)
        }
    }

    fn detector(members: &[u32]) -> SwimDetector {
        let mut d = SwimDetector::new(42, GossipConfig::default());
        for &m in members {
            d.add_member(m);
        }
        d
    }

    #[test]
    fn healthy_members_stay_alive_and_probes_cover_everyone() {
        let mut d = detector(&[0, 1, 2, 3]);
        let mut pinger = Script::with_down(&[]);
        for _ in 0..8 {
            assert!(d.tick(&mut pinger).is_empty());
        }
        // Two full passes: every member probed exactly twice.
        for m in [0u32, 1, 2, 3] {
            assert_eq!(pinger.pings.iter().filter(|&&p| p == m).count(), 2);
        }
        assert!(pinger.ping_reqs.is_empty());
    }

    #[test]
    fn a_down_member_is_suspected_then_dead_after_indirect_probes() {
        let mut d = detector(&[0, 1, 2]);
        let mut pinger = Script::with_down(&[1]);
        let mut saw_suspect = false;
        let mut saw_dead = false;
        for _ in 0..32 {
            for e in d.tick(&mut pinger) {
                match e {
                    GossipEvent::Suspect { shard, .. } => {
                        assert_eq!(shard, 1);
                        saw_suspect = true;
                        // Suspicion only after indirect confirmation.
                        assert!(pinger.ping_reqs.iter().all(|&(_, t)| t == 1));
                        assert!(!pinger.ping_reqs.is_empty());
                    }
                    GossipEvent::Dead { shard } => {
                        assert_eq!(shard, 1);
                        saw_dead = true;
                    }
                    GossipEvent::Refute { .. } => panic!("nothing to refute"),
                }
            }
            if saw_dead {
                break;
            }
        }
        assert!(saw_suspect && saw_dead);
        assert_eq!(d.state(1), Some(MemberState::Dead));
        assert_eq!(d.dead_members(), vec![1]);
        // The dead member stops being probed.
        let probes_after: usize = {
            let before = pinger.pings.len();
            for _ in 0..6 {
                d.tick(&mut pinger);
            }
            pinger.pings[before..].iter().filter(|&&p| p == 1).count()
        };
        assert_eq!(probes_after, 0);
    }

    #[test]
    fn a_flapping_member_refutes_with_a_bumped_incarnation() {
        let mut d = detector(&[0, 1]);
        // Down long enough to be suspected...
        let mut down = Script::with_down(&[1]);
        let mut suspected_at_inc = None;
        for _ in 0..8 {
            for e in d.tick(&mut down) {
                if let GossipEvent::Suspect { shard, incarnation } = e {
                    assert_eq!(shard, 1);
                    suspected_at_inc = Some(incarnation);
                }
            }
            if suspected_at_inc.is_some() {
                break;
            }
        }
        let inc0 = suspected_at_inc.expect("suspected");
        // ...then back up before the suspicion expires.
        let mut up = Script::with_down(&[]);
        let mut refuted = None;
        for _ in 0..4 {
            for e in d.tick(&mut up) {
                if let GossipEvent::Refute { shard, incarnation } = e {
                    assert_eq!(shard, 1);
                    refuted = Some(incarnation);
                }
            }
            if refuted.is_some() {
                break;
            }
        }
        assert!(refuted.expect("refuted") > inc0);
        assert_eq!(d.state(1), Some(MemberState::Alive));
    }

    #[test]
    fn probe_schedule_replays_from_the_seed() {
        let run = |seed: u64| {
            let mut d = SwimDetector::new(seed, GossipConfig::default());
            for m in [0u32, 1, 2, 3, 4] {
                d.add_member(m);
            }
            let mut pinger = Script::with_down(&[]);
            for _ in 0..15 {
                d.tick(&mut pinger);
            }
            pinger.pings
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn readmitted_member_rejoins_alive_with_a_fresh_incarnation() {
        let mut d = detector(&[0, 1]);
        let mut down = Script::with_down(&[1]);
        for _ in 0..32 {
            d.tick(&mut down);
            if d.state(1) == Some(MemberState::Dead) {
                break;
            }
        }
        assert_eq!(d.state(1), Some(MemberState::Dead));
        let inc_dead = d.incarnation(1).unwrap();
        d.add_member(1);
        assert_eq!(d.state(1), Some(MemberState::Alive));
        assert!(d.incarnation(1).unwrap() > inc_dead);
    }
}
