//! `dvm-membership`: elastic cluster membership for the sharded proxy.
//!
//! The paper's organization proxy is provisioned once; this crate makes
//! the sharded version of it *elastic* — shards join, retire, and fail
//! at runtime while clients keep fetching:
//!
//! - [`plane`] — [`MembershipPlane`], the orchestration layer over
//!   [`dvm_cluster::ProxyCluster`]. A **join** claims a minimal key
//!   range on the ring at a new epoch and pulls that range out of the
//!   previous owners before returning, so the new shard's first fetches
//!   hit warm cache. A **retirement** drains the departing shard's keys
//!   into the survivors that inherit them before the server goes away,
//!   bounding re-rewrites. Clients learn each new epoch via the
//!   `RING_UPDATE` frame without reconnecting.
//! - [`migrate`] — [`MigrationClient`], the pull side of live cache
//!   migration: `MIGRATE_BEGIN`/`MIGRATE_CHUNK`/`MIGRATE_END` over the
//!   existing wire protocol, MD5 re-checked per chunk at decode,
//!   bounded batches, and cursor-based resumption across cut streams —
//!   a shard killed mid-migration costs a reconnect, not a restart.
//! - [`gossip`] — [`SwimDetector`], a from-scratch SWIM-style failure
//!   detector: seeded round-robin probing, indirect probes before
//!   suspicion, incarnation-numbered refutation, and deterministic
//!   replay from the seed. Dead members are auto-proposed for
//!   retirement and every probe outcome feeds the plane's
//!   [`dvm_cluster::HealthTracker`].

pub mod gossip;
pub mod migrate;
pub mod plane;

pub use gossip::{GossipConfig, GossipEvent, MemberState, Pinger, SwimDetector, TcpPinger};
pub use migrate::{MigrationClient, MigrationConfig, MigrationError, MigrationReport};
pub use plane::{JoinReport, MembershipOptions, MembershipPlane, MembershipStats, RetireReport};
