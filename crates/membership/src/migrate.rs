//! Live cache migration: pulling a shard's owned keys over the wire.
//!
//! Migration is pull-based. The side that wants bytes (a joining shard
//! warming up, or the survivors draining a retiring shard) opens a
//! connection to the side that has them and drives a
//! `MIGRATE_BEGIN` / `MIGRATE_CHUNK`… / `MIGRATE_END` exchange. The
//! source streams at most [`dvm_net::MIGRATE_BATCH`] chunks per request
//! and then reports whether the range is exhausted; the puller simply
//! re-issues `MIGRATE_BEGIN` with the last key it ingested until the
//! source says `complete`.
//!
//! That same resumption loop is the crash story: a cut stream — source
//! killed mid-migration, transport error, a chunk failing its MD5
//! re-check at decode — costs a reconnect and a re-issue from the last
//! good key, never a restart from scratch. Values travel signed and
//! digest-checked, so a migrated entry is exactly as trustworthy as one
//! rewritten locally.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use dvm_net::{ErrorCode, Frame, Hello, NetConfig};

/// Tuning for one migration pull.
#[derive(Debug, Clone, Copy)]
pub struct MigrationConfig {
    /// Transport knobs for the migration connection.
    pub net: NetConfig,
    /// Consecutive failed connection attempts tolerated before the pull
    /// gives up. Progress (any chunk ingested) resets the count, so a
    /// flaky link retries indefinitely as long as it keeps moving.
    pub max_attempts: u32,
    /// Pause between reconnection attempts.
    pub retry_backoff: Duration,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            net: NetConfig::default(),
            max_attempts: 3,
            retry_backoff: Duration::from_millis(25),
        }
    }
}

/// What one migration pull accomplished.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationReport {
    /// Entries ingested.
    pub keys: u64,
    /// Value bytes ingested.
    pub bytes: u64,
    /// Times the stream was cut and resumed from the last good key
    /// (reconnects and mid-stream decode failures alike).
    pub resumes: u64,
    /// True when the source confirmed the full range was transferred;
    /// false when the pull gave up (source dead or persistently
    /// refusing) — whatever was ingested before that still counts.
    pub complete: bool,
}

/// A migration pull failure that resumption cannot fix.
#[derive(Debug)]
pub enum MigrationError {
    /// The source answered with a typed refusal (stale epoch, no
    /// exporter) — retrying the same request cannot succeed.
    Refused(String),
    /// The source could not be reached (or kept cutting the stream)
    /// `max_attempts` times in a row with no progress.
    Unreachable,
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::Refused(why) => write!(f, "migration refused: {why}"),
            MigrationError::Unreachable => write!(f, "migration source unreachable"),
        }
    }
}

impl std::error::Error for MigrationError {}

/// Pulls every key that `shard` owns (under the ring at `epoch`) out of
/// the source at `addr`, feeding each entry to `ingest`.
pub struct MigrationClient {
    addr: SocketAddr,
    hello: Hello,
    config: MigrationConfig,
    /// Exclusive lower bound of the next request — the last key
    /// ingested, carried across reconnects for resumption.
    cursor: String,
    next_request: u32,
}

impl MigrationClient {
    /// Creates a puller against the source shard at `addr`,
    /// identifying itself with `hello` (conventionally user
    /// `shard<target>` principal `cluster-peer`).
    pub fn new(addr: SocketAddr, hello: Hello, config: MigrationConfig) -> MigrationClient {
        MigrationClient {
            addr,
            hello,
            config,
            cursor: String::new(),
            next_request: 1,
        }
    }

    fn connect(&self) -> Option<TcpStream> {
        let stream =
            TcpStream::connect_timeout(&self.addr, self.config.net.connect_timeout).ok()?;
        stream
            .set_read_timeout(Some(self.config.net.read_timeout))
            .ok()?;
        stream
            .set_write_timeout(Some(self.config.net.write_timeout))
            .ok()?;
        let _ = stream.set_nodelay(true);
        let mut stream = stream;
        Frame::Hello(self.hello.clone())
            .write_to(&mut stream)
            .ok()?;
        match Frame::read_from(&mut stream) {
            Ok(Frame::Welcome { .. }) => Some(stream),
            _ => None,
        }
    }

    /// One `MIGRATE_BEGIN` → chunks → `MIGRATE_END` exchange on an open
    /// connection. `Ok(Some(complete))` when the stream ended cleanly;
    /// `Ok(None)` when it was cut (resume on a fresh connection);
    /// `Err` on a typed refusal.
    fn pull_once(
        &mut self,
        stream: &mut TcpStream,
        shard: u32,
        epoch: u64,
        ingest: &mut dyn FnMut(&str, &[u8]),
        report: &mut MigrationReport,
    ) -> Result<Option<bool>, MigrationError> {
        let request_id = self.next_request;
        self.next_request = self.next_request.wrapping_add(1).max(1);
        let begin = Frame::MigrateBegin {
            request_id,
            epoch,
            shard,
            resume_from: self.cursor.clone(),
        };
        if begin.write_to(stream).is_err() {
            return Ok(None);
        }
        loop {
            match Frame::read_from(stream) {
                Ok(Frame::MigrateChunk {
                    request_id: rid,
                    url,
                    bytes,
                    ..
                }) if rid == request_id => {
                    ingest(&url, &bytes);
                    report.keys += 1;
                    report.bytes += bytes.len() as u64;
                    self.cursor = url;
                }
                Ok(Frame::MigrateEnd {
                    request_id: rid,
                    complete,
                    ..
                }) if rid == request_id => return Ok(Some(complete)),
                Ok(Frame::Error { code, message, .. }) => {
                    // Overload is transient — back off and resume; any
                    // other typed refusal (stale epoch, no exporter)
                    // will repeat forever if we retry.
                    if code == ErrorCode::Overloaded {
                        return Ok(None);
                    }
                    return Err(MigrationError::Refused(message));
                }
                // A digest-failed chunk, truncated frame, or transport
                // drop all land here: cut the stream, resume from the
                // last ingested key.
                _ => return Ok(None),
            }
        }
    }

    /// Runs the pull to completion (or bounded failure). `ingest` is
    /// called once per migrated entry and must be idempotent — a cut
    /// stream may replay the entry after the cursor.
    pub fn pull(
        &mut self,
        shard: u32,
        epoch: u64,
        mut ingest: impl FnMut(&str, &[u8]),
    ) -> Result<MigrationReport, MigrationError> {
        let mut report = MigrationReport::default();
        let mut failures = 0u32;
        let mut stream: Option<TcpStream> = None;
        loop {
            if stream.is_none() {
                stream = self.connect();
                if stream.is_none() {
                    failures += 1;
                    if failures >= self.config.max_attempts.max(1) {
                        return Err(MigrationError::Unreachable);
                    }
                    std::thread::sleep(self.config.retry_backoff);
                    continue;
                }
            }
            let conn = stream.as_mut().expect("connected above");
            let before = report.keys;
            match self.pull_once(conn, shard, epoch, &mut ingest, &mut report) {
                Ok(Some(true)) => {
                    let _ = Frame::Bye.write_to(conn);
                    report.complete = true;
                    return Ok(report);
                }
                Ok(Some(false)) => {
                    // Batch truncated; the connection is fine, ask for
                    // the next slice immediately.
                    failures = 0;
                }
                Ok(None) => {
                    stream = None;
                    report.resumes += 1;
                    if report.keys > before {
                        failures = 0;
                    } else {
                        failures += 1;
                        if failures >= self.config.max_attempts.max(1) {
                            return Err(MigrationError::Unreachable);
                        }
                        std::thread::sleep(self.config.retry_backoff);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The resumption cursor (last key ingested) — for tests asserting
    /// a resumed pull did not restart from scratch.
    pub fn cursor(&self) -> &str {
        &self.cursor
    }
}
