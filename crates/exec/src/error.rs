//! Typed lowering errors.
//!
//! Lowering runs on whatever the proxy hands it — including hostile or
//! degenerate method bodies — so every failure mode is a typed error and
//! never a panic. A method that fails to lower simply stays on the
//! interpreter tier.

use std::fmt;

use dvm_bytecode::BytecodeError;
use dvm_classfile::ClassFileError;

/// Errors raised while lowering bytecode to the register IR.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Operand-stack inconsistency (underflow, broken wide pair, or a
    /// merge whose incoming shapes disagree).
    BadStack {
        /// Bytecode instruction index.
        at: usize,
        /// Explanation.
        reason: String,
    },
    /// A construct the execution tier does not lower (`jsr`/`ret`,
    /// `multianewarray`, `ldc` of a class constant, ...). The method
    /// stays interpreted.
    Unsupported(String),
    /// The method body has no instructions.
    EmptyBody,
    /// A branch or handler index is outside the method body.
    BadTarget {
        /// The offending index.
        index: usize,
        /// Number of instructions in the body.
        len: usize,
    },
    /// The register file would exceed the 16-bit register namespace
    /// (absurd `max_locals` plus stack depth).
    TooManyRegs(u32),
    /// A serialized IR package failed to decode.
    BadPackage(String),
    /// Underlying class-file error.
    ClassFile(ClassFileError),
    /// Underlying bytecode error.
    Bytecode(BytecodeError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadStack { at, reason } => {
                write!(f, "stack inconsistency at instruction {at}: {reason}")
            }
            ExecError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            ExecError::EmptyBody => write!(f, "empty method body"),
            ExecError::BadTarget { index, len } => {
                write!(
                    f,
                    "branch target {index} outside body of {len} instructions"
                )
            }
            ExecError::TooManyRegs(n) => write!(f, "register file of {n} exceeds 16-bit space"),
            ExecError::BadPackage(reason) => write!(f, "malformed IR package: {reason}"),
            ExecError::ClassFile(e) => write!(f, "{e}"),
            ExecError::Bytecode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ClassFileError> for ExecError {
    fn from(e: ClassFileError) -> Self {
        ExecError::ClassFile(e)
    }
}

impl From<BytecodeError> for ExecError {
    fn from(e: BytecodeError) -> Self {
        ExecError::Bytecode(e)
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ExecError>;
