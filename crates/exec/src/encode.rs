//! The wire format for compiled IR packages.
//!
//! The proxy caches and ships [`ClassIr`] values keyed by the class's
//! rewrite signature, so the format must round-trip exactly and decode
//! defensively: the bytes cross the network and the disk tier, and a
//! corrupt or hostile package must yield a typed
//! [`ExecError::BadPackage`](crate::ExecError::BadPackage), never a
//! panic. Decoding validates every register index against `num_regs` and
//! every branch target against the instruction count, so a decoded
//! function is safe to execute without re-validation.
//!
//! Layout: `b"DVMX"` magic, a version byte, then the class name and a
//! method table; each method is name, descriptor, register counts, a
//! tagged instruction stream, and a handler table. All integers are
//! big-endian; floats travel as IEEE-754 bit patterns.

use dvm_bytecode::insn::{AKind, ArithOp, ICond, LogicOp, NumKind, NumType, ShiftOp};

use crate::error::{ExecError, Result};
use crate::ir::{
    ClassIr, CmpKind, Function, InvokeKind, RConst, RHandler, RInsn, SOp, ServiceKind, VReg,
};

/// Package magic.
pub const MAGIC: &[u8; 4] = b"DVMX";
/// Current format version.
pub const VERSION: u8 = 1;

/// Hard cap on decoded sizes: malformed length fields must not cause
/// huge allocations before the truncation check catches them.
const MAX_ITEMS: usize = 1 << 20;

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn reg(&mut self, r: VReg) {
        self.u16(r.0);
    }
    fn idx(&mut self, v: usize) {
        self.u32(v as u32);
    }
    fn str(&mut self, s: &str) {
        self.u16(s.len().min(u16::MAX as usize) as u16);
        self.buf
            .extend_from_slice(&s.as_bytes()[..s.len().min(u16::MAX as usize)]);
    }
    fn opt_reg(&mut self, r: Option<VReg>) {
        match r {
            Some(r) => {
                self.u8(1);
                self.reg(r);
            }
            None => self.u8(0),
        }
    }
    fn sop(&mut self, s: SOp) {
        match s {
            SOp::Reg(r) => {
                self.u8(0);
                self.reg(r);
            }
            SOp::Imm(v) => {
                self.u8(1);
                self.i32(v);
            }
        }
    }
}

fn num_kind_tag(k: NumKind) -> u8 {
    match k {
        NumKind::Int => 0,
        NumKind::Long => 1,
        NumKind::Float => 2,
        NumKind::Double => 3,
    }
}

fn arith_op_tag(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add => 0,
        ArithOp::Sub => 1,
        ArithOp::Mul => 2,
        ArithOp::Div => 3,
        ArithOp::Rem => 4,
        ArithOp::Neg => 5,
    }
}

fn shift_op_tag(op: ShiftOp) -> u8 {
    match op {
        ShiftOp::Shl => 0,
        ShiftOp::Shr => 1,
        ShiftOp::Ushr => 2,
    }
}

fn logic_op_tag(op: LogicOp) -> u8 {
    match op {
        LogicOp::And => 0,
        LogicOp::Or => 1,
        LogicOp::Xor => 2,
    }
}

fn icond_tag(c: ICond) -> u8 {
    match c {
        ICond::Eq => 0,
        ICond::Ne => 1,
        ICond::Lt => 2,
        ICond::Ge => 3,
        ICond::Gt => 4,
        ICond::Le => 5,
    }
}

fn num_type_tag(t: NumType) -> u8 {
    match t {
        NumType::Int => 0,
        NumType::Long => 1,
        NumType::Float => 2,
        NumType::Double => 3,
        NumType::Byte => 4,
        NumType::Char => 5,
        NumType::Short => 6,
    }
}

fn akind_tag(k: AKind) -> u8 {
    match k {
        AKind::Int => 0,
        AKind::Long => 1,
        AKind::Float => 2,
        AKind::Double => 3,
        AKind::Ref => 4,
        AKind::Byte => 5,
        AKind::Char => 6,
        AKind::Short => 7,
    }
}

fn cmp_kind_tag(k: CmpKind) -> u8 {
    match k {
        CmpKind::Long => 0,
        CmpKind::Float(false) => 1,
        CmpKind::Float(true) => 2,
        CmpKind::Double(false) => 3,
        CmpKind::Double(true) => 4,
    }
}

fn invoke_kind_tag(k: InvokeKind) -> u8 {
    match k {
        InvokeKind::Virtual => 0,
        InvokeKind::Special => 1,
        InvokeKind::Static => 2,
        InvokeKind::Interface => 3,
    }
}

fn service_kind_tag(k: ServiceKind) -> u8 {
    match k {
        ServiceKind::Security => 0,
        ServiceKind::AuditEnter => 1,
        ServiceKind::AuditExit => 2,
        ServiceKind::AuditEvent => 3,
        ServiceKind::ProfileCount => 4,
        ServiceKind::ProfileFirstUse => 5,
    }
}

#[allow(clippy::too_many_lines)]
fn write_insn(w: &mut W, insn: &RInsn) {
    match insn {
        RInsn::Const { dst, v } => {
            w.u8(1);
            w.reg(*dst);
            match v {
                RConst::Null => w.u8(0),
                RConst::Int(v) => {
                    w.u8(1);
                    w.i32(*v);
                }
                RConst::Long(v) => {
                    w.u8(2);
                    w.i64(*v);
                }
                RConst::Float(v) => {
                    w.u8(3);
                    w.u32(v.to_bits());
                }
                RConst::Double(v) => {
                    w.u8(4);
                    w.i64(v.to_bits() as i64);
                }
                RConst::Str(idx) => {
                    w.u8(5);
                    w.u16(*idx);
                }
            }
        }
        RInsn::Move { dst, src } => {
            w.u8(2);
            w.reg(*dst);
            w.reg(*src);
        }
        RInsn::Arith {
            kind,
            op,
            dst,
            a,
            b,
        } => {
            w.u8(3);
            w.u8(num_kind_tag(*kind));
            w.u8(arith_op_tag(*op));
            w.reg(*dst);
            w.reg(*a);
            w.reg(*b);
        }
        RInsn::ArithImm { op, dst, src, imm } => {
            w.u8(4);
            w.u8(arith_op_tag(*op));
            w.reg(*dst);
            w.reg(*src);
            w.i32(*imm);
        }
        RInsn::Neg { kind, dst, src } => {
            w.u8(5);
            w.u8(num_kind_tag(*kind));
            w.reg(*dst);
            w.reg(*src);
        }
        RInsn::Shift {
            kind,
            op,
            dst,
            a,
            b,
        } => {
            w.u8(6);
            w.u8(num_kind_tag(*kind));
            w.u8(shift_op_tag(*op));
            w.reg(*dst);
            w.reg(*a);
            w.reg(*b);
        }
        RInsn::Logic {
            kind,
            op,
            dst,
            a,
            b,
        } => {
            w.u8(7);
            w.u8(num_kind_tag(*kind));
            w.u8(logic_op_tag(*op));
            w.reg(*dst);
            w.reg(*a);
            w.reg(*b);
        }
        RInsn::LogicImm { op, dst, src, imm } => {
            w.u8(8);
            w.u8(logic_op_tag(*op));
            w.reg(*dst);
            w.reg(*src);
            w.i32(*imm);
        }
        RInsn::ShiftImm { op, dst, src, imm } => {
            w.u8(9);
            w.u8(shift_op_tag(*op));
            w.reg(*dst);
            w.reg(*src);
            w.i32(*imm);
        }
        RInsn::Convert { from, to, dst, src } => {
            w.u8(10);
            w.u8(num_type_tag(*from));
            w.u8(num_type_tag(*to));
            w.reg(*dst);
            w.reg(*src);
        }
        RInsn::Cmp { kind, dst, a, b } => {
            w.u8(11);
            w.u8(cmp_kind_tag(*kind));
            w.reg(*dst);
            w.reg(*a);
            w.reg(*b);
        }
        RInsn::If { cond, a, b, target } => {
            w.u8(12);
            w.u8(icond_tag(*cond));
            w.reg(*a);
            w.opt_reg(*b);
            w.idx(*target);
        }
        RInsn::IfRef { eq, a, b, target } => {
            w.u8(13);
            w.u8(u8::from(*eq));
            w.reg(*a);
            w.opt_reg(*b);
            w.idx(*target);
        }
        RInsn::Goto { target } => {
            w.u8(14);
            w.idx(*target);
        }
        RInsn::TableSwitch {
            on,
            low,
            targets,
            default,
        } => {
            w.u8(15);
            w.reg(*on);
            w.i32(*low);
            w.u32(targets.len() as u32);
            for t in targets {
                w.idx(*t);
            }
            w.idx(*default);
        }
        RInsn::LookupSwitch { on, pairs, default } => {
            w.u8(16);
            w.reg(*on);
            w.u32(pairs.len() as u32);
            for (k, t) in pairs {
                w.i32(*k);
                w.idx(*t);
            }
            w.idx(*default);
        }
        RInsn::Return { src } => {
            w.u8(17);
            w.opt_reg(*src);
        }
        RInsn::GetStatic { idx, dst } => {
            w.u8(18);
            w.u16(*idx);
            w.reg(*dst);
        }
        RInsn::PutStatic { idx, src } => {
            w.u8(19);
            w.u16(*idx);
            w.reg(*src);
        }
        RInsn::GetField { idx, obj, dst } => {
            w.u8(20);
            w.u16(*idx);
            w.reg(*obj);
            w.reg(*dst);
        }
        RInsn::PutField { idx, obj, src } => {
            w.u8(21);
            w.u16(*idx);
            w.reg(*obj);
            w.reg(*src);
        }
        RInsn::Invoke {
            kind,
            idx,
            args,
            dst,
        } => {
            w.u8(22);
            w.u8(invoke_kind_tag(*kind));
            w.u16(*idx);
            w.u8(args.len().min(255) as u8);
            for a in args.iter().take(255) {
                w.reg(*a);
            }
            w.opt_reg(*dst);
        }
        RInsn::New { idx, dst } => {
            w.u8(23);
            w.u16(*idx);
            w.reg(*dst);
        }
        RInsn::NewArray { akind, len, dst } => {
            w.u8(24);
            w.u8(akind_tag(*akind));
            w.reg(*len);
            w.reg(*dst);
        }
        RInsn::ANewArray { idx, len, dst } => {
            w.u8(25);
            w.u16(*idx);
            w.reg(*len);
            w.reg(*dst);
        }
        RInsn::ArrayLoad {
            akind,
            arr,
            index,
            dst,
        } => {
            w.u8(26);
            w.u8(akind_tag(*akind));
            w.reg(*arr);
            w.reg(*index);
            w.reg(*dst);
        }
        RInsn::ArrayStore {
            akind,
            arr,
            index,
            src,
        } => {
            w.u8(27);
            w.u8(akind_tag(*akind));
            w.reg(*arr);
            w.reg(*index);
            w.reg(*src);
        }
        RInsn::ArrayLength { arr, dst } => {
            w.u8(28);
            w.reg(*arr);
            w.reg(*dst);
        }
        RInsn::AThrow { exc } => {
            w.u8(29);
            w.reg(*exc);
        }
        RInsn::CheckCast { idx, obj } => {
            w.u8(30);
            w.u16(*idx);
            w.reg(*obj);
        }
        RInsn::InstanceOf { idx, obj, dst } => {
            w.u8(31);
            w.u16(*idx);
            w.reg(*obj);
            w.reg(*dst);
        }
        RInsn::Monitor { enter, obj } => {
            w.u8(32);
            w.u8(u8::from(*enter));
            w.reg(*obj);
        }
        RInsn::Service { kind, a, b } => {
            w.u8(33);
            w.u8(service_kind_tag(*kind));
            w.sop(*a);
            w.sop(*b);
        }
    }
}

/// Serializes a [`ClassIr`] into a cacheable package.
pub fn encode(ir: &ClassIr) -> Vec<u8> {
    let mut w = W {
        buf: Vec::with_capacity(256),
    };
    w.buf.extend_from_slice(MAGIC);
    w.u8(VERSION);
    w.str(&ir.class);
    w.u16(ir.methods.len().min(u16::MAX as usize) as u16);
    for m in ir.methods.iter().take(u16::MAX as usize) {
        w.str(&m.name);
        w.str(&m.descriptor);
        w.u16(m.max_locals);
        w.u16(m.num_regs);
        w.u32(m.insns.len() as u32);
        for insn in &m.insns {
            write_insn(&mut w, insn);
        }
        w.u16(m.handlers.len().min(u16::MAX as usize) as u16);
        for h in m.handlers.iter().take(u16::MAX as usize) {
            w.idx(h.start);
            w.idx(h.end);
            w.idx(h.handler);
            w.u16(h.catch_type);
        }
    }
    w.buf
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn bad(reason: impl Into<String>) -> ExecError {
    dvm_fuzz::cov!("exec.decode.reject");
    ExecError::BadPackage(reason.into())
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(bad("truncated package"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn reg(&mut self) -> Result<VReg> {
        Ok(VReg(self.u16()?))
    }
    fn idx(&mut self) -> Result<usize> {
        Ok(self.u32()? as usize)
    }
    fn str(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("non-UTF-8 string"))
    }
    fn opt_reg(&mut self) -> Result<Option<VReg>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.reg()?)),
            t => Err(bad(format!("bad option tag {t}"))),
        }
    }
    fn sop(&mut self) -> Result<SOp> {
        match self.u8()? {
            0 => Ok(SOp::Reg(self.reg()?)),
            1 => Ok(SOp::Imm(self.i32()?)),
            t => Err(bad(format!("bad service operand tag {t}"))),
        }
    }
}

fn num_kind_of(t: u8) -> Result<NumKind> {
    Ok(match t {
        0 => NumKind::Int,
        1 => NumKind::Long,
        2 => NumKind::Float,
        3 => NumKind::Double,
        _ => return Err(bad(format!("bad numeric kind {t}"))),
    })
}

fn arith_op_of(t: u8) -> Result<ArithOp> {
    Ok(match t {
        0 => ArithOp::Add,
        1 => ArithOp::Sub,
        2 => ArithOp::Mul,
        3 => ArithOp::Div,
        4 => ArithOp::Rem,
        5 => ArithOp::Neg,
        _ => return Err(bad(format!("bad arith op {t}"))),
    })
}

fn shift_op_of(t: u8) -> Result<ShiftOp> {
    Ok(match t {
        0 => ShiftOp::Shl,
        1 => ShiftOp::Shr,
        2 => ShiftOp::Ushr,
        _ => return Err(bad(format!("bad shift op {t}"))),
    })
}

fn logic_op_of(t: u8) -> Result<LogicOp> {
    Ok(match t {
        0 => LogicOp::And,
        1 => LogicOp::Or,
        2 => LogicOp::Xor,
        _ => return Err(bad(format!("bad logic op {t}"))),
    })
}

fn icond_of(t: u8) -> Result<ICond> {
    Ok(match t {
        0 => ICond::Eq,
        1 => ICond::Ne,
        2 => ICond::Lt,
        3 => ICond::Ge,
        4 => ICond::Gt,
        5 => ICond::Le,
        _ => return Err(bad(format!("bad condition {t}"))),
    })
}

fn num_type_of(t: u8) -> Result<NumType> {
    Ok(match t {
        0 => NumType::Int,
        1 => NumType::Long,
        2 => NumType::Float,
        3 => NumType::Double,
        4 => NumType::Byte,
        5 => NumType::Char,
        6 => NumType::Short,
        _ => return Err(bad(format!("bad numeric type {t}"))),
    })
}

fn akind_of(t: u8) -> Result<AKind> {
    Ok(match t {
        0 => AKind::Int,
        1 => AKind::Long,
        2 => AKind::Float,
        3 => AKind::Double,
        4 => AKind::Ref,
        5 => AKind::Byte,
        6 => AKind::Char,
        7 => AKind::Short,
        _ => return Err(bad(format!("bad array kind {t}"))),
    })
}

fn cmp_kind_of(t: u8) -> Result<CmpKind> {
    Ok(match t {
        0 => CmpKind::Long,
        1 => CmpKind::Float(false),
        2 => CmpKind::Float(true),
        3 => CmpKind::Double(false),
        4 => CmpKind::Double(true),
        _ => return Err(bad(format!("bad compare kind {t}"))),
    })
}

fn invoke_kind_of(t: u8) -> Result<InvokeKind> {
    Ok(match t {
        0 => InvokeKind::Virtual,
        1 => InvokeKind::Special,
        2 => InvokeKind::Static,
        3 => InvokeKind::Interface,
        _ => return Err(bad(format!("bad invoke kind {t}"))),
    })
}

fn service_kind_of(t: u8) -> Result<ServiceKind> {
    Ok(match t {
        0 => ServiceKind::Security,
        1 => ServiceKind::AuditEnter,
        2 => ServiceKind::AuditExit,
        3 => ServiceKind::AuditEvent,
        4 => ServiceKind::ProfileCount,
        5 => ServiceKind::ProfileFirstUse,
        _ => return Err(bad(format!("bad service kind {t}"))),
    })
}

#[allow(clippy::too_many_lines)]
fn read_insn(r: &mut R<'_>) -> Result<RInsn> {
    dvm_fuzz::cov!("exec.insn");
    Ok(match r.u8()? {
        1 => {
            dvm_fuzz::cov!("exec.insn.const");
            let dst = r.reg()?;
            let v = match r.u8()? {
                0 => RConst::Null,
                1 => RConst::Int(r.i32()?),
                2 => RConst::Long(r.i64()?),
                3 => RConst::Float(f32::from_bits(r.u32()?)),
                4 => RConst::Double(f64::from_bits(r.i64()? as u64)),
                5 => RConst::Str(r.u16()?),
                t => return Err(bad(format!("bad constant tag {t}"))),
            };
            RInsn::Const { dst, v }
        }
        2 => RInsn::Move {
            dst: r.reg()?,
            src: r.reg()?,
        },
        3 => RInsn::Arith {
            kind: num_kind_of(r.u8()?)?,
            op: arith_op_of(r.u8()?)?,
            dst: r.reg()?,
            a: r.reg()?,
            b: r.reg()?,
        },
        4 => RInsn::ArithImm {
            op: arith_op_of(r.u8()?)?,
            dst: r.reg()?,
            src: r.reg()?,
            imm: r.i32()?,
        },
        5 => RInsn::Neg {
            kind: num_kind_of(r.u8()?)?,
            dst: r.reg()?,
            src: r.reg()?,
        },
        6 => RInsn::Shift {
            kind: num_kind_of(r.u8()?)?,
            op: shift_op_of(r.u8()?)?,
            dst: r.reg()?,
            a: r.reg()?,
            b: r.reg()?,
        },
        7 => RInsn::Logic {
            kind: num_kind_of(r.u8()?)?,
            op: logic_op_of(r.u8()?)?,
            dst: r.reg()?,
            a: r.reg()?,
            b: r.reg()?,
        },
        8 => RInsn::LogicImm {
            op: logic_op_of(r.u8()?)?,
            dst: r.reg()?,
            src: r.reg()?,
            imm: r.i32()?,
        },
        9 => RInsn::ShiftImm {
            op: shift_op_of(r.u8()?)?,
            dst: r.reg()?,
            src: r.reg()?,
            imm: r.i32()?,
        },
        10 => RInsn::Convert {
            from: num_type_of(r.u8()?)?,
            to: num_type_of(r.u8()?)?,
            dst: r.reg()?,
            src: r.reg()?,
        },
        11 => RInsn::Cmp {
            kind: cmp_kind_of(r.u8()?)?,
            dst: r.reg()?,
            a: r.reg()?,
            b: r.reg()?,
        },
        12 => RInsn::If {
            cond: icond_of(r.u8()?)?,
            a: r.reg()?,
            b: r.opt_reg()?,
            target: r.idx()?,
        },
        13 => RInsn::IfRef {
            eq: r.u8()? != 0,
            a: r.reg()?,
            b: r.opt_reg()?,
            target: r.idx()?,
        },
        14 => RInsn::Goto { target: r.idx()? },
        15 => {
            dvm_fuzz::cov!("exec.insn.tableswitch");
            let on = r.reg()?;
            let low = r.i32()?;
            let count = r.u32()? as usize;
            if count > MAX_ITEMS {
                return Err(bad("oversized switch table"));
            }
            let mut targets = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                targets.push(r.idx()?);
            }
            RInsn::TableSwitch {
                on,
                low,
                targets,
                default: r.idx()?,
            }
        }
        16 => {
            dvm_fuzz::cov!("exec.insn.lookupswitch");
            let on = r.reg()?;
            let count = r.u32()? as usize;
            if count > MAX_ITEMS {
                return Err(bad("oversized switch table"));
            }
            let mut pairs = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let k = r.i32()?;
                pairs.push((k, r.idx()?));
            }
            RInsn::LookupSwitch {
                on,
                pairs,
                default: r.idx()?,
            }
        }
        17 => RInsn::Return { src: r.opt_reg()? },
        18 => RInsn::GetStatic {
            idx: r.u16()?,
            dst: r.reg()?,
        },
        19 => RInsn::PutStatic {
            idx: r.u16()?,
            src: r.reg()?,
        },
        20 => RInsn::GetField {
            idx: r.u16()?,
            obj: r.reg()?,
            dst: r.reg()?,
        },
        21 => RInsn::PutField {
            idx: r.u16()?,
            obj: r.reg()?,
            src: r.reg()?,
        },
        22 => {
            dvm_fuzz::cov!("exec.insn.invoke");
            let kind = invoke_kind_of(r.u8()?)?;
            let idx = r.u16()?;
            let argc = r.u8()? as usize;
            let mut args = Vec::with_capacity(argc);
            for _ in 0..argc {
                args.push(r.reg()?);
            }
            RInsn::Invoke {
                kind,
                idx,
                args,
                dst: r.opt_reg()?,
            }
        }
        23 => RInsn::New {
            idx: r.u16()?,
            dst: r.reg()?,
        },
        24 => RInsn::NewArray {
            akind: akind_of(r.u8()?)?,
            len: r.reg()?,
            dst: r.reg()?,
        },
        25 => RInsn::ANewArray {
            idx: r.u16()?,
            len: r.reg()?,
            dst: r.reg()?,
        },
        26 => RInsn::ArrayLoad {
            akind: akind_of(r.u8()?)?,
            arr: r.reg()?,
            index: r.reg()?,
            dst: r.reg()?,
        },
        27 => RInsn::ArrayStore {
            akind: akind_of(r.u8()?)?,
            arr: r.reg()?,
            index: r.reg()?,
            src: r.reg()?,
        },
        28 => RInsn::ArrayLength {
            arr: r.reg()?,
            dst: r.reg()?,
        },
        29 => RInsn::AThrow { exc: r.reg()? },
        30 => RInsn::CheckCast {
            idx: r.u16()?,
            obj: r.reg()?,
        },
        31 => RInsn::InstanceOf {
            idx: r.u16()?,
            obj: r.reg()?,
            dst: r.reg()?,
        },
        32 => RInsn::Monitor {
            enter: r.u8()? != 0,
            obj: r.reg()?,
        },
        33 => {
            dvm_fuzz::cov!("exec.insn.service");
            RInsn::Service {
                kind: service_kind_of(r.u8()?)?,
                a: r.sop()?,
                b: r.sop()?,
            }
        }
        t => return Err(bad(format!("bad instruction tag {t}"))),
    })
}

/// Validates a decoded function: every register below `num_regs`, every
/// branch target and handler index inside the body. A function that
/// passes is safe to execute without further bounds checks.
fn validate(f: &Function) -> Result<()> {
    dvm_fuzz::cov!("exec.validate");
    let len = f.insns.len();
    let nr = f.num_regs;
    if f.max_locals > nr {
        return Err(bad("max_locals exceeds num_regs"));
    }
    for insn in &f.insns {
        for r in insn.reads() {
            if r.0 >= nr {
                return Err(bad(format!("register {} out of {nr}", r.0)));
            }
        }
        if let Some(d) = insn.writes() {
            if d.0 >= nr {
                return Err(bad(format!("register {} out of {nr}", d.0)));
            }
        }
        for t in insn.branch_targets() {
            if t >= len {
                return Err(bad(format!("branch target {t} out of {len}")));
            }
        }
    }
    for h in &f.handlers {
        if h.start >= h.end || h.end > len || h.handler >= len {
            return Err(bad("handler range out of bounds"));
        }
    }
    Ok(())
}

/// Decodes and validates a package produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<ClassIr> {
    let mut r = R { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(bad("bad magic"));
    }
    dvm_fuzz::cov!("exec.magic_ok");
    let version = r.u8()?;
    if version != VERSION {
        return Err(bad(format!("unsupported version {version}")));
    }
    dvm_fuzz::cov!("exec.version_ok");
    let class = r.str()?;
    let method_count = r.u16()? as usize;
    let mut methods = Vec::with_capacity(method_count.min(1024));
    for _ in 0..method_count {
        let name = r.str()?;
        let descriptor = r.str()?;
        let max_locals = r.u16()?;
        let num_regs = r.u16()?;
        let insn_count = r.u32()? as usize;
        if insn_count > MAX_ITEMS {
            return Err(bad("oversized method body"));
        }
        let mut insns = Vec::with_capacity(insn_count.min(4096));
        for _ in 0..insn_count {
            insns.push(read_insn(&mut r)?);
        }
        let handler_count = r.u16()? as usize;
        let mut handlers = Vec::with_capacity(handler_count.min(1024));
        for _ in 0..handler_count {
            handlers.push(RHandler {
                start: r.idx()?,
                end: r.idx()?,
                handler: r.idx()?,
                catch_type: r.u16()?,
            });
        }
        let f = Function {
            name,
            descriptor,
            insns,
            handlers,
            max_locals,
            num_regs,
        };
        validate(&f)?;
        dvm_fuzz::cov!("exec.method_ok");
        methods.push(f);
    }
    if r.pos != bytes.len() {
        return Err(bad("trailing bytes"));
    }
    dvm_fuzz::cov!("exec.decode_ok");
    Ok(ClassIr { class, methods })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::insn::ICond;

    fn sample() -> ClassIr {
        ClassIr {
            class: "app/x/Main".into(),
            methods: vec![Function {
                name: "work".into(),
                descriptor: "(I)I".into(),
                insns: vec![
                    RInsn::Const {
                        dst: VReg(1),
                        v: RConst::Int(0),
                    },
                    RInsn::ArithImm {
                        op: ArithOp::Add,
                        dst: VReg(1),
                        src: VReg(1),
                        imm: 1,
                    },
                    RInsn::If {
                        cond: ICond::Lt,
                        a: VReg(1),
                        b: Some(VReg(0)),
                        target: 1,
                    },
                    RInsn::Service {
                        kind: ServiceKind::Security,
                        a: SOp::Imm(7),
                        b: SOp::Imm(3),
                    },
                    RInsn::Const {
                        dst: VReg(2),
                        v: RConst::Double(1.5),
                    },
                    RInsn::Return { src: Some(VReg(1)) },
                ],
                handlers: vec![RHandler {
                    start: 0,
                    end: 3,
                    handler: 5,
                    catch_type: 0,
                }],
                max_locals: 1,
                num_regs: 4,
            }],
        }
    }

    #[test]
    fn round_trips() {
        let ir = sample();
        let bytes = encode(&ir);
        assert_eq!(decode(&bytes).unwrap(), ir);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(ExecError::BadPackage(_))));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode(&bytes[..cut]), Err(ExecError::BadPackage(_))),
                "cut at {cut} must be a typed error"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_register() {
        let ir = ClassIr {
            class: "c".into(),
            methods: vec![Function {
                name: "m".into(),
                descriptor: "()V".into(),
                insns: vec![
                    RInsn::Move {
                        dst: VReg(40),
                        src: VReg(41),
                    },
                    RInsn::Return { src: None },
                ],
                handlers: vec![],
                max_locals: 0,
                num_regs: 2,
            }],
        };
        let bytes = encode(&ir);
        assert!(matches!(decode(&bytes), Err(ExecError::BadPackage(_))));
    }

    #[test]
    fn rejects_out_of_range_branch_target() {
        let ir = ClassIr {
            class: "c".into(),
            methods: vec![Function {
                name: "m".into(),
                descriptor: "()V".into(),
                insns: vec![RInsn::Goto { target: 9 }, RInsn::Return { src: None }],
                handlers: vec![],
                max_locals: 0,
                num_regs: 1,
            }],
        };
        let bytes = encode(&ir);
        assert!(matches!(decode(&bytes), Err(ExecError::BadPackage(_))));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(ExecError::BadPackage(_))));
    }
}
