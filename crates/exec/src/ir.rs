//! The executable register IR.
//!
//! Verified stack bytecode has a deterministic operand-stack depth at
//! every instruction, so each stack slot maps to a fixed *virtual
//! register*: register `d` for local slot `d`, register
//! `max_locals + d` for the stack slot at depth `d`. Instructions read
//! and write registers directly — there is no operand stack at run
//! time — and branch targets are IR instruction indices.
//!
//! Unlike `dvm-compiler`'s symbolic IR (whose memory and call operands
//! are display strings for the simulated native backends), this IR is
//! executable: member accesses carry constant-pool indices that the
//! execution tier resolves through the same runtime caches as the
//! interpreter, and the injected dynamic-service stubs are first-class
//! [`RInsn::Service`] intrinsics after inlining.

use dvm_bytecode::insn::{AKind, ArithOp, ICond, LogicOp, NumKind, NumType, ShiftOp};

/// A virtual register. Registers `0..max_locals` mirror the frame's
/// local-variable slots; higher registers are the flattened operand
/// stack (`max_locals + depth`) plus scratch space for `dup` forms.
///
/// Wide values (`long`/`double`) occupy one *register* even though they
/// occupy two *slots*; the tail slot's register is simply unused, which
/// mirrors the interpreter's `Value::Invalid` padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u16);

/// A constant loadable into a register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RConst {
    /// The null reference.
    Null,
    /// An `int`.
    Int(i32),
    /// A `long`.
    Long(i64),
    /// A `float`.
    Float(f32),
    /// A `double`.
    Double(f64),
    /// An interned string: `String` constant-pool index.
    Str(u16),
}

/// The comparison family (`lcmp`, `fcmpl/g`, `dcmpl/g`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// `lcmp`.
    Long,
    /// `fcmpl` / `fcmpg` (`true` selects the `g` variant: NaN → +1).
    Float(bool),
    /// `dcmpl` / `dcmpg`.
    Double(bool),
}

/// Which invoke instruction a call lowered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeKind {
    /// `invokevirtual`.
    Virtual,
    /// `invokespecial`.
    Special,
    /// `invokestatic`.
    Static,
    /// `invokeinterface`.
    Interface,
}

/// A dynamic-service intrinsic: the inlined form of the stub calls the
/// proxy's rewriters inject (`dvm/rt/Enforcer.check`, `dvm/rt/Audit.*`,
/// `dvm/rt/Profiler.*`). Executing one performs the service callback
/// directly, without paying an `invokestatic` dispatch per check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceKind {
    /// `Enforcer.check(sid, perm)` — security enforcement.
    Security,
    /// `Audit.enter(site)`.
    AuditEnter,
    /// `Audit.exit(site)`.
    AuditExit,
    /// `Audit.event(site)`.
    AuditEvent,
    /// `Profiler.count(site)`.
    ProfileCount,
    /// `Profiler.firstUse(site)`.
    ProfileFirstUse,
}

/// A service operand: a register, or an immediate folded in by the
/// constant-folding pass (the rewriters emit `iconst` site IDs, so
/// after folding most service intrinsics carry pure immediates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SOp {
    /// Read the operand from a register.
    Reg(VReg),
    /// A folded `int` immediate.
    Imm(i32),
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum RInsn {
    /// Load a constant into a register.
    Const {
        /// Destination.
        dst: VReg,
        /// The constant.
        v: RConst,
    },
    /// Register-to-register copy.
    Move {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// Binary arithmetic (`Neg` never appears here; see [`RInsn::Neg`]).
    Arith {
        /// Numeric kind.
        kind: NumKind,
        /// The operation (`Add`..`Rem`).
        op: ArithOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `int` arithmetic with a folded immediate right operand.
    ArithImm {
        /// `Add` or `Mul` (subtraction folds to `Add` of the negation).
        op: ArithOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        src: VReg,
        /// Immediate right operand.
        imm: i32,
    },
    /// Unary negation.
    Neg {
        /// Numeric kind.
        kind: NumKind,
        /// Destination.
        dst: VReg,
        /// Operand.
        src: VReg,
    },
    /// Shift (`int`/`long` only).
    Shift {
        /// Numeric kind (`Int` or `Long`).
        kind: NumKind,
        /// The shift operation.
        op: ShiftOp,
        /// Destination.
        dst: VReg,
        /// Value operand.
        a: VReg,
        /// Amount operand (always `int`).
        b: VReg,
    },
    /// Bitwise logic (`int`/`long` only).
    Logic {
        /// Numeric kind (`Int` or `Long`).
        kind: NumKind,
        /// The logic operation.
        op: LogicOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `int` bitwise logic with a folded immediate right operand.
    LogicImm {
        /// The logic operation.
        op: LogicOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        src: VReg,
        /// Immediate right operand.
        imm: i32,
    },
    /// `int` shift with a folded immediate amount.
    ShiftImm {
        /// The shift operation.
        op: ShiftOp,
        /// Destination.
        dst: VReg,
        /// Value operand.
        src: VReg,
        /// Immediate shift amount.
        imm: i32,
    },
    /// Numeric conversion.
    Convert {
        /// Source type.
        from: NumType,
        /// Target type.
        to: NumType,
        /// Destination.
        dst: VReg,
        /// Operand.
        src: VReg,
    },
    /// Three-way comparison pushing -1/0/+1.
    Cmp {
        /// Comparison family.
        kind: CmpKind,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// Conditional branch on `int` values (`b` of `None` compares
    /// against zero).
    If {
        /// The condition.
        cond: ICond,
        /// Left operand.
        a: VReg,
        /// Right operand, or `None` for compare-with-zero.
        b: Option<VReg>,
        /// Branch target (IR index) when the condition holds.
        target: usize,
    },
    /// Conditional branch on references (`b` of `None` compares against
    /// null; `eq` of `true` branches on equality).
    IfRef {
        /// Branch on equality (`false`: inequality).
        eq: bool,
        /// Left operand.
        a: VReg,
        /// Right operand, or `None` for compare-with-null.
        b: Option<VReg>,
        /// Branch target (IR index).
        target: usize,
    },
    /// Unconditional branch.
    Goto {
        /// Branch target (IR index).
        target: usize,
    },
    /// `tableswitch`.
    TableSwitch {
        /// Scrutinee.
        on: VReg,
        /// Lowest matched key.
        low: i32,
        /// Targets for `low..`.
        targets: Vec<usize>,
        /// Default target.
        default: usize,
    },
    /// `lookupswitch`.
    LookupSwitch {
        /// Scrutinee.
        on: VReg,
        /// `(key, target)` pairs.
        pairs: Vec<(i32, usize)>,
        /// Default target.
        default: usize,
    },
    /// Return from the function.
    Return {
        /// The returned register, or `None` for `void`.
        src: Option<VReg>,
    },
    /// `getstatic` with a `Fieldref` pool index.
    GetStatic {
        /// Pool index.
        idx: u16,
        /// Destination.
        dst: VReg,
    },
    /// `putstatic`.
    PutStatic {
        /// Pool index.
        idx: u16,
        /// Value to store.
        src: VReg,
    },
    /// `getfield`.
    GetField {
        /// Pool index.
        idx: u16,
        /// Receiver.
        obj: VReg,
        /// Destination.
        dst: VReg,
    },
    /// `putfield`.
    PutField {
        /// Pool index.
        idx: u16,
        /// Receiver.
        obj: VReg,
        /// Value to store.
        src: VReg,
    },
    /// A call (any invoke flavor). For instance calls the receiver is
    /// `args[0]`.
    Invoke {
        /// Which invoke instruction this lowered from.
        kind: InvokeKind,
        /// `Methodref` pool index.
        idx: u16,
        /// Argument registers, receiver first for instance calls. Wide
        /// arguments occupy one entry.
        args: Vec<VReg>,
        /// Result register, or `None` for `void`.
        dst: Option<VReg>,
    },
    /// `new` with a `Class` pool index.
    New {
        /// Pool index.
        idx: u16,
        /// Destination.
        dst: VReg,
    },
    /// `newarray` of a primitive element kind.
    NewArray {
        /// Element kind.
        akind: AKind,
        /// Length operand.
        len: VReg,
        /// Destination.
        dst: VReg,
    },
    /// `anewarray` with a `Class` pool index for the element type.
    ANewArray {
        /// Pool index of the element class.
        idx: u16,
        /// Length operand.
        len: VReg,
        /// Destination.
        dst: VReg,
    },
    /// Array element load.
    ArrayLoad {
        /// Element kind.
        akind: AKind,
        /// Array operand.
        arr: VReg,
        /// Index operand.
        index: VReg,
        /// Destination.
        dst: VReg,
    },
    /// Array element store.
    ArrayStore {
        /// Element kind.
        akind: AKind,
        /// Array operand.
        arr: VReg,
        /// Index operand.
        index: VReg,
        /// Value to store.
        src: VReg,
    },
    /// `arraylength`.
    ArrayLength {
        /// Array operand.
        arr: VReg,
        /// Destination.
        dst: VReg,
    },
    /// `athrow`.
    AThrow {
        /// The thrown reference.
        exc: VReg,
    },
    /// `checkcast` (in-place check; the register keeps its value).
    CheckCast {
        /// Pool index of the target class.
        idx: u16,
        /// Checked register.
        obj: VReg,
    },
    /// `instanceof`.
    InstanceOf {
        /// Pool index of the tested class.
        idx: u16,
        /// Tested register.
        obj: VReg,
        /// Destination (`int` 0/1).
        dst: VReg,
    },
    /// `monitorenter` / `monitorexit`.
    Monitor {
        /// `true` for enter.
        enter: bool,
        /// The monitored reference.
        obj: VReg,
    },
    /// An inlined dynamic-service stub; see [`ServiceKind`].
    Service {
        /// Which service.
        kind: ServiceKind,
        /// First operand (site ID / security ID).
        a: SOp,
        /// Second operand (permission for `Security`; unused otherwise).
        b: SOp,
    },
}

impl RInsn {
    /// All registers this instruction reads.
    pub fn reads(&self) -> Vec<VReg> {
        use RInsn::*;
        match self {
            Const { .. } | Goto { .. } | New { .. } | GetStatic { .. } => Vec::new(),
            Move { src, .. }
            | ArithImm { src, .. }
            | LogicImm { src, .. }
            | ShiftImm { src, .. }
            | Neg { src, .. }
            | Convert { src, .. }
            | PutStatic { src, .. }
            | AThrow { exc: src }
            | Monitor { obj: src, .. }
            | CheckCast { obj: src, .. }
            | InstanceOf { obj: src, .. }
            | ArrayLength { arr: src, .. }
            | NewArray { len: src, .. }
            | ANewArray { len: src, .. }
            | TableSwitch { on: src, .. }
            | LookupSwitch { on: src, .. }
            | GetField { obj: src, .. } => vec![*src],
            Arith { a, b, .. } | Shift { a, b, .. } | Logic { a, b, .. } | Cmp { a, b, .. } => {
                vec![*a, *b]
            }
            If { a, b, .. } | IfRef { a, b, .. } => {
                let mut v = vec![*a];
                if let Some(b) = b {
                    v.push(*b);
                }
                v
            }
            Return { src } => src.iter().copied().collect(),
            PutField { obj, src, .. } => vec![*obj, *src],
            Invoke { args, .. } => args.clone(),
            ArrayLoad { arr, index, .. } => vec![*arr, *index],
            ArrayStore {
                arr, index, src, ..
            } => vec![*arr, *index, *src],
            Service { a, b, .. } => {
                let mut v = Vec::new();
                if let SOp::Reg(r) = a {
                    v.push(*r);
                }
                if let SOp::Reg(r) = b {
                    v.push(*r);
                }
                v
            }
        }
    }

    /// The register this instruction writes, if any.
    pub fn writes(&self) -> Option<VReg> {
        use RInsn::*;
        match self {
            Const { dst, .. }
            | Move { dst, .. }
            | Arith { dst, .. }
            | ArithImm { dst, .. }
            | Neg { dst, .. }
            | Shift { dst, .. }
            | Logic { dst, .. }
            | LogicImm { dst, .. }
            | ShiftImm { dst, .. }
            | Convert { dst, .. }
            | Cmp { dst, .. }
            | GetStatic { dst, .. }
            | GetField { dst, .. }
            | New { dst, .. }
            | NewArray { dst, .. }
            | ANewArray { dst, .. }
            | ArrayLoad { dst, .. }
            | ArrayLength { dst, .. }
            | InstanceOf { dst, .. } => Some(*dst),
            Invoke { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Rewrites every read operand through `f` (writes untouched).
    pub fn map_reads(&mut self, mut f: impl FnMut(VReg) -> VReg) {
        use RInsn::*;
        match self {
            Const { .. } | Goto { .. } | New { .. } | GetStatic { .. } => {}
            Move { src, .. }
            | ArithImm { src, .. }
            | LogicImm { src, .. }
            | ShiftImm { src, .. }
            | Neg { src, .. }
            | Convert { src, .. }
            | PutStatic { src, .. }
            | AThrow { exc: src }
            | Monitor { obj: src, .. }
            | CheckCast { obj: src, .. }
            | InstanceOf { obj: src, .. }
            | ArrayLength { arr: src, .. }
            | NewArray { len: src, .. }
            | ANewArray { len: src, .. }
            | TableSwitch { on: src, .. }
            | LookupSwitch { on: src, .. }
            | GetField { obj: src, .. } => *src = f(*src),
            Arith { a, b, .. } | Shift { a, b, .. } | Logic { a, b, .. } | Cmp { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            If { a, b, .. } | IfRef { a, b, .. } => {
                *a = f(*a);
                if let Some(b) = b {
                    *b = f(*b);
                }
            }
            Return { src } => {
                if let Some(src) = src {
                    *src = f(*src);
                }
            }
            PutField { obj, src, .. } => {
                *obj = f(*obj);
                *src = f(*src);
            }
            Invoke { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            ArrayLoad { arr, index, .. } => {
                *arr = f(*arr);
                *index = f(*index);
            }
            ArrayStore {
                arr, index, src, ..
            } => {
                *arr = f(*arr);
                *index = f(*index);
                *src = f(*src);
            }
            Service { a, b, .. } => {
                if let SOp::Reg(r) = a {
                    *r = f(*r);
                }
                if let SOp::Reg(r) = b {
                    *r = f(*r);
                }
            }
        }
    }

    /// All explicit branch targets (IR indices).
    pub fn branch_targets(&self) -> Vec<usize> {
        use RInsn::*;
        match self {
            If { target, .. } | IfRef { target, .. } | Goto { target } => vec![*target],
            TableSwitch {
                targets, default, ..
            } => {
                let mut v = vec![*default];
                v.extend_from_slice(targets);
                v
            }
            LookupSwitch { pairs, default, .. } => {
                let mut v = vec![*default];
                v.extend(pairs.iter().map(|(_, t)| *t));
                v
            }
            _ => Vec::new(),
        }
    }

    /// Rewrites every branch target through `f`.
    pub fn map_targets(&mut self, mut f: impl FnMut(usize) -> usize) {
        use RInsn::*;
        match self {
            If { target, .. } | IfRef { target, .. } | Goto { target } => *target = f(*target),
            TableSwitch {
                targets, default, ..
            } => {
                *default = f(*default);
                for t in targets {
                    *t = f(*t);
                }
            }
            LookupSwitch { pairs, default, .. } => {
                *default = f(*default);
                for (_, t) in pairs {
                    *t = f(*t);
                }
            }
            _ => {}
        }
    }

    /// Returns `true` when control can continue to the next instruction.
    pub fn can_fall_through(&self) -> bool {
        !matches!(
            self,
            RInsn::Goto { .. }
                | RInsn::TableSwitch { .. }
                | RInsn::LookupSwitch { .. }
                | RInsn::Return { .. }
                | RInsn::AThrow { .. }
        )
    }

    /// Returns `true` when the instruction has no observable effect
    /// other than its register write: it cannot throw, touch the heap,
    /// call out, or invoke a service. Such an instruction may be deleted
    /// if its destination is dead.
    pub fn side_effect_free(&self) -> bool {
        use RInsn::*;
        match self {
            Const { .. }
            | Move { .. }
            | Neg { .. }
            | Shift { .. }
            | Logic { .. }
            | LogicImm { .. }
            | ShiftImm { .. }
            | ArithImm { .. }
            | Convert { .. }
            | Cmp { .. } => true,
            // Integer division and remainder can throw ArithmeticException.
            Arith { kind, op, .. } => {
                !(matches!(kind, NumKind::Int | NumKind::Long)
                    && matches!(op, ArithOp::Div | ArithOp::Rem))
            }
            _ => false,
        }
    }
}

/// An exception handler in IR-index form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RHandler {
    /// First protected IR instruction (inclusive).
    pub start: usize,
    /// End of the protected range (exclusive; may equal `insns.len()`).
    pub end: usize,
    /// IR index of the handler's first instruction. The unwinder
    /// deposits the thrown reference in register `max_locals` (stack
    /// depth 0) before jumping here.
    pub handler: usize,
    /// Constant-pool index of the caught class, or 0 for catch-all.
    pub catch_type: u16,
}

/// One lowered, optionally optimized method.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Method name.
    pub name: String,
    /// Method descriptor.
    pub descriptor: String,
    /// The instructions.
    pub insns: Vec<RInsn>,
    /// Exception handlers in IR-index form.
    pub handlers: Vec<RHandler>,
    /// Local-variable slot count (registers `0..max_locals`).
    pub max_locals: u16,
    /// Total registers the executor must allocate.
    pub num_regs: u16,
}

/// A whole class's worth of lowered methods — the unit the proxy caches
/// and ships.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassIr {
    /// Internal class name.
    pub class: String,
    /// Lowered methods. Methods that failed to lower are absent; they
    /// stay on the interpreter tier.
    pub methods: Vec<Function>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_writes_cover_operands() {
        let i = RInsn::Arith {
            kind: NumKind::Int,
            op: ArithOp::Add,
            dst: VReg(3),
            a: VReg(1),
            b: VReg(2),
        };
        assert_eq!(i.reads(), vec![VReg(1), VReg(2)]);
        assert_eq!(i.writes(), Some(VReg(3)));
        assert!(i.side_effect_free());
    }

    #[test]
    fn integer_division_is_not_side_effect_free() {
        let div = RInsn::Arith {
            kind: NumKind::Int,
            op: ArithOp::Div,
            dst: VReg(0),
            a: VReg(1),
            b: VReg(2),
        };
        assert!(!div.side_effect_free());
        let fdiv = RInsn::Arith {
            kind: NumKind::Float,
            op: ArithOp::Div,
            dst: VReg(0),
            a: VReg(1),
            b: VReg(2),
        };
        assert!(fdiv.side_effect_free());
    }

    #[test]
    fn target_mapping_round_trips() {
        let mut i = RInsn::TableSwitch {
            on: VReg(0),
            low: 0,
            targets: vec![1, 2],
            default: 9,
        };
        assert_eq!(i.branch_targets(), vec![9, 1, 2]);
        i.map_targets(|t| t + 5);
        assert_eq!(i.branch_targets(), vec![14, 6, 7]);
    }

    #[test]
    fn map_reads_leaves_writes_alone() {
        let mut i = RInsn::Move {
            dst: VReg(7),
            src: VReg(1),
        };
        i.map_reads(|_| VReg(9));
        assert_eq!(
            i,
            RInsn::Move {
                dst: VReg(7),
                src: VReg(9)
            }
        );
    }
}
