//! dvm-exec — the optimizing execution tier.
//!
//! The paper's pitch is that factoring compilation out of clients and
//! into the proxy lets clients run *better* code than they could produce
//! locally. This crate is that better code: it lowers verified stack
//! bytecode into a register IR ([`ir`]), optimizes it with a real pass
//! pipeline ([`passes`] — service-stub inlining, constant folding, copy
//! propagation, liveness dead-code elimination), and serializes the
//! result into cacheable packages ([`encode`]) that the proxy keys by
//! rewrite signature and ships to clients alongside the rewritten class.
//!
//! The executor itself lives in `dvm-jvm` (it needs the heap, the class
//! registry, and the dynamic services); this crate is deliberately
//! independent of the runtime so the proxy can compile without linking
//! a VM. Methods that use constructs the tier does not support lower to
//! a typed [`ExecError`] and simply stay on the interpreter tier — the
//! fallback contract that keeps the tier optional everywhere.

#![warn(missing_docs)]

pub mod encode;
pub mod error;
pub mod ir;
pub mod lower;
pub mod passes;

pub use encode::{decode, encode};
pub use error::{ExecError, Result};
pub use ir::{
    ClassIr, CmpKind, Function, InvokeKind, RConst, RHandler, RInsn, SOp, ServiceKind, VReg,
};
pub use lower::lower;
pub use passes::{optimize, PassStats};

use dvm_bytecode::Code;
use dvm_classfile::ClassFile;

/// What [`compile_class`] did, for telemetry and the bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Methods successfully lowered.
    pub lowered: usize,
    /// Methods left on the interpreter tier (no code, or lowering
    /// declined with a typed error).
    pub skipped: usize,
    /// Aggregate pass-pipeline work across all lowered methods.
    pub passes: PassStats,
}

/// Lowers and optimizes every method of a parsed class.
///
/// Individual methods that fail to lower are skipped — the executor
/// falls back to the interpreter per method — so this only errors when
/// the class itself is unusable (no name).
pub fn compile_class(cf: &ClassFile) -> Result<(ClassIr, CompileStats)> {
    let class = cf.name()?.to_owned();
    let mut stats = CompileStats::default();
    let mut methods = Vec::new();
    for m in &cf.methods {
        let (Ok(name), Ok(descriptor)) = (m.name(&cf.pool), m.descriptor(&cf.pool)) else {
            stats.skipped += 1;
            continue;
        };
        let Some(attr) = m.code() else {
            stats.skipped += 1; // native or abstract
            continue;
        };
        let lowered = Code::decode(attr)
            .map_err(ExecError::from)
            .and_then(|code| lower::lower(&code, &cf.pool, name, descriptor));
        match lowered {
            Ok(mut func) => {
                stats.passes.absorb(&passes::optimize(&mut func, &cf.pool));
                stats.lowered += 1;
                methods.push(func);
            }
            Err(_) => stats.skipped += 1,
        }
    }
    Ok((ClassIr { class, methods }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::asm::Asm;
    use dvm_bytecode::insn::Kind;
    use dvm_classfile::{AccessFlags, ClassBuilder, ConstPool};

    #[test]
    fn compiles_a_synthesized_class_end_to_end() {
        let mut a = Asm::new(2);
        a.iload(0).iload(1).iadd().ret_val(Kind::Int);
        let attr = a.finish().unwrap().encode(&ConstPool::new()).unwrap();
        let cf = ClassBuilder::new("t/Calc")
            .method(
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                "add",
                "(II)I",
                attr,
            )
            .build();
        let (ir, stats) = compile_class(&cf).unwrap();
        assert_eq!(ir.class, "t/Calc");
        assert_eq!(stats.lowered, 1);
        let f = ir.methods.iter().find(|m| m.name == "add").unwrap();
        // Optimized form: the two moves die, the add reads args directly.
        assert_eq!(f.insns.len(), 2);
        // And the package round-trips through the wire format.
        let decoded = decode(&encode(&ir)).unwrap();
        assert_eq!(decoded, ir);
    }
}
