//! Abstract-stack → register lowering.
//!
//! Verified bytecode reaches every instruction with one fixed
//! operand-stack *shape*, so lowering runs the same two-pass dataflow as
//! the network compiler's translator: pass 1 computes the shape (which
//! slots hold wide values) at every reachable instruction, erroring on
//! merge disagreement; pass 2 emits register instructions, with stack
//! slot `d` living in register `max_locals + d`. Exception handlers
//! enter with the thrown reference at stack depth 0 — register
//! `max_locals`.
//!
//! Lowering is total over hostile input: every malformed body —
//! truncated attributes, unreachable blocks, absurd stack depths, broken
//! wide pairs — produces a typed [`ExecError`], never a panic. The
//! constructs the tier does not lower (`jsr`/`ret` subroutines,
//! `multianewarray`, `ldc` of class constants) also error, leaving those
//! methods on the interpreter tier.

use dvm_bytecode::insn::{ArithOp, Insn, Kind};
use dvm_bytecode::Code;
use dvm_classfile::descriptor::MethodDescriptor;
use dvm_classfile::pool::{ConstPool, Constant};

use crate::error::{ExecError, Result};
use crate::ir::{CmpKind, Function, InvokeKind, RConst, RHandler, RInsn, VReg};

/// Stack-slot tags: a wide value occupies a base slot plus a tail slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tag {
    /// A one-slot value.
    Single,
    /// Base slot of a wide value.
    WideBase,
    /// Tail slot of a wide value.
    WideTail,
}

type Shape = Vec<Tag>;

struct Lower<'a> {
    pool: &'a ConstPool,
    max_locals: u16,
    ops: Vec<RInsn>,
    emit: bool,
    /// Highest register index used + 1, tracked as u32 to detect
    /// overflow of the 16-bit register namespace.
    peak: u32,
}

impl Lower<'_> {
    fn push(&mut self, op: RInsn) {
        if self.emit {
            self.ops.push(op);
        }
    }

    /// Register for stack slot `slot`, range-checked.
    fn sreg(&mut self, slot: usize) -> Result<VReg> {
        let idx = self.max_locals as u32 + slot as u32;
        if idx >= u16::MAX as u32 {
            return Err(ExecError::TooManyRegs(idx + 1));
        }
        self.peak = self.peak.max(idx + 1);
        Ok(VReg(idx as u16))
    }

    /// Register for local slot `slot`.
    fn lreg(&mut self, slot: u16) -> Result<VReg> {
        if slot >= self.max_locals {
            // Hostile bodies may index past max_locals; verified code
            // cannot.
            return Err(ExecError::BadStack {
                at: 0,
                reason: format!("local {slot} outside max_locals {}", self.max_locals),
            });
        }
        self.peak = self.peak.max(slot as u32 + 1);
        Ok(VReg(slot))
    }

    fn pop_value(&mut self, shape: &mut Shape, at: usize) -> Result<(VReg, bool)> {
        match shape.pop() {
            Some(Tag::Single) => Ok((self.sreg(shape.len())?, false)),
            Some(Tag::WideTail) => match shape.pop() {
                Some(Tag::WideBase) => Ok((self.sreg(shape.len())?, true)),
                _ => Err(ExecError::BadStack {
                    at,
                    reason: "broken wide pair".into(),
                }),
            },
            _ => Err(ExecError::BadStack {
                at,
                reason: "stack underflow".into(),
            }),
        }
    }

    fn push_value(&mut self, shape: &mut Shape, wide: bool) -> Result<VReg> {
        let r = self.sreg(shape.len())?;
        if wide {
            shape.push(Tag::WideBase);
            shape.push(Tag::WideTail);
        } else {
            shape.push(Tag::Single);
        }
        Ok(r)
    }

    /// Translates one instruction; mutates `shape` to the exit shape.
    #[allow(clippy::too_many_lines)]
    fn transfer(&mut self, at: usize, insn: &Insn, shape: &mut Shape) -> Result<()> {
        match insn {
            Insn::Nop => {}
            Insn::AConstNull => {
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::Const {
                    dst,
                    v: RConst::Null,
                });
            }
            Insn::IConst(v) => {
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::Const {
                    dst,
                    v: RConst::Int(*v),
                });
            }
            Insn::LConst(v) => {
                let dst = self.push_value(shape, true)?;
                self.push(RInsn::Const {
                    dst,
                    v: RConst::Long(*v),
                });
            }
            Insn::FConst(v) => {
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::Const {
                    dst,
                    v: RConst::Float(*v),
                });
            }
            Insn::DConst(v) => {
                let dst = self.push_value(shape, true)?;
                self.push(RInsn::Const {
                    dst,
                    v: RConst::Double(*v),
                });
            }
            Insn::Ldc(idx) => {
                let v = match self.pool.get(*idx)? {
                    Constant::Integer(v) => RConst::Int(*v),
                    Constant::Float(v) => RConst::Float(*v),
                    Constant::String { .. } => RConst::Str(*idx),
                    other => {
                        return Err(ExecError::Unsupported(format!("ldc of {}", other.kind())))
                    }
                };
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::Const { dst, v });
            }
            Insn::Ldc2(idx) => {
                let v = match self.pool.get(*idx)? {
                    Constant::Long(v) => RConst::Long(*v),
                    Constant::Double(v) => RConst::Double(*v),
                    other => {
                        return Err(ExecError::BadStack {
                            at,
                            reason: format!("ldc2 of {}", other.kind()),
                        })
                    }
                };
                let dst = self.push_value(shape, true)?;
                self.push(RInsn::Const { dst, v });
            }
            Insn::Load(kind, slot) => {
                let src = self.lreg(*slot)?;
                let wide = matches!(kind, Kind::Long | Kind::Double);
                let dst = self.push_value(shape, wide)?;
                self.push(RInsn::Move { dst, src });
            }
            Insn::Store(_, slot) => {
                let (src, _) = self.pop_value(shape, at)?;
                let dst = self.lreg(*slot)?;
                self.push(RInsn::Move { dst, src });
            }
            Insn::ArrayLoad(k) => {
                let (index, _) = self.pop_value(shape, at)?;
                let (arr, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, k.width() == 2)?;
                self.push(RInsn::ArrayLoad {
                    akind: *k,
                    arr,
                    index,
                    dst,
                });
            }
            Insn::ArrayStore(k) => {
                let (src, _) = self.pop_value(shape, at)?;
                let (index, _) = self.pop_value(shape, at)?;
                let (arr, _) = self.pop_value(shape, at)?;
                self.push(RInsn::ArrayStore {
                    akind: *k,
                    arr,
                    index,
                    src,
                });
            }
            Insn::Pop => {
                self.pop_value(shape, at)?;
            }
            Insn::Pop2 => {
                let (_, wide) = self.pop_value(shape, at)?;
                if !wide {
                    self.pop_value(shape, at)?;
                }
            }
            Insn::Dup => {
                if shape.last() != Some(&Tag::Single) {
                    return Err(ExecError::BadStack {
                        at,
                        reason: "dup of wide or empty stack".into(),
                    });
                }
                let src = self.sreg(shape.len() - 1)?;
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::Move { dst, src });
            }
            Insn::DupX1 | Insn::DupX2 | Insn::Dup2 | Insn::Dup2X1 | Insn::Dup2X2 => {
                self.dup_form(at, insn, shape)?;
            }
            Insn::Swap => {
                if shape.len() < 2 {
                    return Err(ExecError::BadStack {
                        at,
                        reason: "swap underflow".into(),
                    });
                }
                let a = self.sreg(shape.len() - 1)?;
                let b = self.sreg(shape.len() - 2)?;
                let t = self.sreg(shape.len())?;
                self.push(RInsn::Move { dst: t, src: a });
                self.push(RInsn::Move { dst: a, src: b });
                self.push(RInsn::Move { dst: b, src: t });
            }
            Insn::Arith(kind, op) => {
                if *op == ArithOp::Neg {
                    let (src, wide) = self.pop_value(shape, at)?;
                    let dst = self.push_value(shape, wide)?;
                    self.push(RInsn::Neg {
                        kind: *kind,
                        dst,
                        src,
                    });
                } else {
                    let (b, _) = self.pop_value(shape, at)?;
                    let (a, wide) = self.pop_value(shape, at)?;
                    let dst = self.push_value(shape, wide)?;
                    self.push(RInsn::Arith {
                        kind: *kind,
                        op: *op,
                        dst,
                        a,
                        b,
                    });
                }
            }
            Insn::Shift(kind, op) => {
                let (b, _) = self.pop_value(shape, at)?;
                let (a, wide) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, wide)?;
                self.push(RInsn::Shift {
                    kind: *kind,
                    op: *op,
                    dst,
                    a,
                    b,
                });
            }
            Insn::Logic(kind, op) => {
                let (b, _) = self.pop_value(shape, at)?;
                let (a, wide) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, wide)?;
                self.push(RInsn::Logic {
                    kind: *kind,
                    op: *op,
                    dst,
                    a,
                    b,
                });
            }
            Insn::IInc(slot, delta) => {
                let r = self.lreg(*slot)?;
                self.push(RInsn::ArithImm {
                    op: ArithOp::Add,
                    dst: r,
                    src: r,
                    imm: *delta as i32,
                });
            }
            Insn::Convert(from, to) => {
                let (src, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, to.width() == 2)?;
                self.push(RInsn::Convert {
                    from: *from,
                    to: *to,
                    dst,
                    src,
                });
            }
            Insn::LCmp => {
                let (b, _) = self.pop_value(shape, at)?;
                let (a, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::Cmp {
                    kind: CmpKind::Long,
                    dst,
                    a,
                    b,
                });
            }
            Insn::FCmp(g) => {
                let (b, _) = self.pop_value(shape, at)?;
                let (a, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::Cmp {
                    kind: CmpKind::Float(*g),
                    dst,
                    a,
                    b,
                });
            }
            Insn::DCmp(g) => {
                let (b, _) = self.pop_value(shape, at)?;
                let (a, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::Cmp {
                    kind: CmpKind::Double(*g),
                    dst,
                    a,
                    b,
                });
            }
            Insn::If(c, t) => {
                let (a, _) = self.pop_value(shape, at)?;
                self.push(RInsn::If {
                    cond: *c,
                    a,
                    b: None,
                    target: *t,
                });
            }
            Insn::IfICmp(c, t) => {
                let (b, _) = self.pop_value(shape, at)?;
                let (a, _) = self.pop_value(shape, at)?;
                self.push(RInsn::If {
                    cond: *c,
                    a,
                    b: Some(b),
                    target: *t,
                });
            }
            Insn::IfACmp(eq, t) => {
                let (b, _) = self.pop_value(shape, at)?;
                let (a, _) = self.pop_value(shape, at)?;
                self.push(RInsn::IfRef {
                    eq: *eq,
                    a,
                    b: Some(b),
                    target: *t,
                });
            }
            Insn::IfNull(t) => {
                let (a, _) = self.pop_value(shape, at)?;
                self.push(RInsn::IfRef {
                    eq: true,
                    a,
                    b: None,
                    target: *t,
                });
            }
            Insn::IfNonNull(t) => {
                let (a, _) = self.pop_value(shape, at)?;
                self.push(RInsn::IfRef {
                    eq: false,
                    a,
                    b: None,
                    target: *t,
                });
            }
            Insn::Goto(t) => self.push(RInsn::Goto { target: *t }),
            Insn::Jsr(_) | Insn::Ret(_) => {
                return Err(ExecError::Unsupported("jsr/ret subroutines".into()));
            }
            Insn::TableSwitch {
                default,
                low,
                targets,
            } => {
                let (on, _) = self.pop_value(shape, at)?;
                self.push(RInsn::TableSwitch {
                    on,
                    low: *low,
                    targets: targets.clone(),
                    default: *default,
                });
            }
            Insn::LookupSwitch { default, pairs } => {
                let (on, _) = self.pop_value(shape, at)?;
                self.push(RInsn::LookupSwitch {
                    on,
                    pairs: pairs.clone(),
                    default: *default,
                });
            }
            Insn::Return(kind) => {
                let src = match kind {
                    Some(_) => Some(self.pop_value(shape, at)?.0),
                    None => None,
                };
                self.push(RInsn::Return { src });
            }
            Insn::GetStatic(idx) => {
                let (_, _, d) = self.pool.get_member_ref(*idx)?;
                let wide = matches!(d.as_bytes().first(), Some(b'J' | b'D'));
                let dst = self.push_value(shape, wide)?;
                self.push(RInsn::GetStatic { idx: *idx, dst });
            }
            Insn::PutStatic(idx) => {
                let (src, _) = self.pop_value(shape, at)?;
                self.push(RInsn::PutStatic { idx: *idx, src });
            }
            Insn::GetField(idx) => {
                let (_, _, d) = self.pool.get_member_ref(*idx)?;
                let wide = matches!(d.as_bytes().first(), Some(b'J' | b'D'));
                let (obj, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, wide)?;
                self.push(RInsn::GetField {
                    idx: *idx,
                    obj,
                    dst,
                });
            }
            Insn::PutField(idx) => {
                let (src, _) = self.pop_value(shape, at)?;
                let (obj, _) = self.pop_value(shape, at)?;
                self.push(RInsn::PutField {
                    idx: *idx,
                    obj,
                    src,
                });
            }
            Insn::InvokeVirtual(idx) => self.call(at, *idx, shape, InvokeKind::Virtual)?,
            Insn::InvokeSpecial(idx) => self.call(at, *idx, shape, InvokeKind::Special)?,
            Insn::InvokeStatic(idx) => self.call(at, *idx, shape, InvokeKind::Static)?,
            Insn::InvokeInterface(idx) => self.call(at, *idx, shape, InvokeKind::Interface)?,
            Insn::New(idx) => {
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::New { idx: *idx, dst });
            }
            Insn::NewArray(k) => {
                let (len, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::NewArray {
                    akind: *k,
                    len,
                    dst,
                });
            }
            Insn::ANewArray(idx) => {
                let (len, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::ANewArray {
                    idx: *idx,
                    len,
                    dst,
                });
            }
            Insn::ArrayLength => {
                let (arr, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::ArrayLength { arr, dst });
            }
            Insn::AThrow => {
                let (exc, _) = self.pop_value(shape, at)?;
                self.push(RInsn::AThrow { exc });
            }
            Insn::CheckCast(idx) => {
                if shape.last() != Some(&Tag::Single) {
                    return Err(ExecError::BadStack {
                        at,
                        reason: "checkcast of wide or empty stack".into(),
                    });
                }
                let obj = self.sreg(shape.len() - 1)?;
                self.push(RInsn::CheckCast { idx: *idx, obj });
            }
            Insn::InstanceOf(idx) => {
                let (obj, _) = self.pop_value(shape, at)?;
                let dst = self.push_value(shape, false)?;
                self.push(RInsn::InstanceOf {
                    idx: *idx,
                    obj,
                    dst,
                });
            }
            Insn::MonitorEnter => {
                let (obj, _) = self.pop_value(shape, at)?;
                self.push(RInsn::Monitor { enter: true, obj });
            }
            Insn::MonitorExit => {
                let (obj, _) = self.pop_value(shape, at)?;
                self.push(RInsn::Monitor { enter: false, obj });
            }
            Insn::MultiANewArray(_, _) => {
                return Err(ExecError::Unsupported("multianewarray".into()));
            }
        }
        Ok(())
    }

    fn dup_form(&mut self, at: usize, insn: &Insn, shape: &mut Shape) -> Result<()> {
        // Pop the blocks, then re-push with moves mirroring the
        // interpreter's slot shuffling, staged through scratch registers
        // above the live stack.
        let top_slots: u16 = match insn {
            Insn::DupX1 | Insn::DupX2 => 1,
            _ => 2,
        };
        let mut block = Vec::new();
        let mut slots = 0;
        while slots < top_slots {
            let (r, wide) = self.pop_value(shape, at)?;
            slots += if wide { 2 } else { 1 };
            block.push((r, wide));
        }
        let mut skipped = Vec::new();
        match insn {
            Insn::Dup2 => {}
            Insn::DupX1 | Insn::Dup2X1 => {
                skipped.push(self.pop_value(shape, at)?);
            }
            Insn::DupX2 | Insn::Dup2X2 => {
                let (r, wide) = self.pop_value(shape, at)?;
                skipped.push((r, wide));
                if !wide {
                    skipped.push(self.pop_value(shape, at)?);
                }
            }
            _ => unreachable!(),
        }
        // Stage originals into scratch registers above everything.
        let scratch_base = shape.len()
            + block
                .iter()
                .chain(skipped.iter())
                .map(|(_, w)| if *w { 2 } else { 1 })
                .sum::<usize>()
                * 2
            + 4;
        let mut staged = Vec::new();
        for (i, (r, w)) in block.iter().chain(skipped.iter()).enumerate() {
            let s = self.sreg(scratch_base + i * 2)?;
            self.push(RInsn::Move { dst: s, src: *r });
            staged.push((s, *w));
        }
        let (staged_block, staged_skipped) = staged.split_at(block.len());
        // Final layout bottom-up: block copy, skipped, block.
        for group in [staged_block, staged_skipped, staged_block] {
            for (src, wide) in group.iter().rev() {
                let dst = self.push_value(shape, *wide)?;
                self.push(RInsn::Move { dst, src: *src });
            }
        }
        Ok(())
    }

    fn call(&mut self, at: usize, idx: u16, shape: &mut Shape, kind: InvokeKind) -> Result<()> {
        let (_, _, d) = self.pool.get_member_ref(idx)?;
        let desc = MethodDescriptor::parse(d)?;
        let mut args = Vec::new();
        for _ in 0..desc.params.len() {
            args.push(self.pop_value(shape, at)?.0);
        }
        if kind != InvokeKind::Static {
            args.push(self.pop_value(shape, at)?.0);
        }
        args.reverse();
        let dst = match &desc.ret {
            Some(rt) => Some(self.push_value(shape, rt.slot_width() == 2)?),
            None => None,
        };
        self.push(RInsn::Invoke {
            kind,
            idx,
            args,
            dst,
        });
        Ok(())
    }
}

/// Lowers one decoded method body into a register [`Function`].
///
/// The returned function is unoptimized; run it through
/// [`crate::passes::optimize`] before installing or caching it.
pub fn lower(code: &Code, pool: &ConstPool, name: &str, descriptor: &str) -> Result<Function> {
    let n = code.insns.len();
    if n == 0 {
        return Err(ExecError::EmptyBody);
    }
    // Degenerate local indices and branch targets error before any pass
    // can index out of range.
    code.validate_targets()?;

    // Pass 1: entry shapes by dataflow.
    let mut shapes: Vec<Option<Shape>> = vec![None; n];
    let mut work = vec![0usize];
    shapes[0] = Some(Vec::new());
    for h in &code.handlers {
        if h.handler < n && shapes[h.handler].is_none() {
            shapes[h.handler] = Some(vec![Tag::Single]);
            work.push(h.handler);
        }
    }
    let mut probe = Lower {
        pool,
        max_locals: code.max_locals,
        ops: Vec::new(),
        emit: false,
        peak: code.max_locals as u32,
    };
    while let Some(i) = work.pop() {
        let Some(entry) = shapes[i].clone() else {
            continue;
        };
        let insn = &code.insns[i];
        let mut shape = entry;
        probe.transfer(i, insn, &mut shape)?;
        let mut succ = insn.branch_targets();
        if insn.can_fall_through() {
            succ.push(i + 1);
        }
        for s in succ {
            if s >= n {
                return Err(ExecError::BadTarget { index: s, len: n });
            }
            match &shapes[s] {
                None => {
                    shapes[s] = Some(shape.clone());
                    work.push(s);
                }
                Some(existing) => {
                    if existing != &shape {
                        return Err(ExecError::BadStack {
                            at: s,
                            reason: "stack shape mismatch at merge".into(),
                        });
                    }
                }
            }
        }
    }

    // Pass 2: emit IR, recording where each bytecode instruction begins.
    let mut xl = Lower {
        pool,
        max_locals: code.max_locals,
        ops: Vec::new(),
        emit: true,
        peak: probe.peak,
    };
    let mut ir_start = vec![usize::MAX; n + 1];
    for (i, insn) in code.insns.iter().enumerate() {
        ir_start[i] = xl.ops.len();
        let Some(entry) = shapes[i].clone() else {
            // Unreachable bytecode: skip entirely.
            continue;
        };
        let mut shape = entry;
        xl.transfer(i, insn, &mut shape)?;
    }
    ir_start[n] = xl.ops.len();
    // A bytecode index whose translation is empty (nop, pop) maps
    // forward to the next emitted instruction.
    let mut resolved = ir_start.clone();
    for i in (0..n).rev() {
        if resolved[i] == usize::MAX || ir_start[i] == ir_start[i + 1] {
            resolved[i] = resolved[i + 1];
        }
    }
    let mut ops = xl.ops;
    let end = ops.len();
    for op in &mut ops {
        op.map_targets(|bc| resolved[bc]);
        for t in op.branch_targets() {
            if t >= end {
                // The branch falls off the end of the body after empty
                // translations; verified code cannot do this.
                return Err(ExecError::BadTarget { index: t, len: end });
            }
        }
    }

    let mut handlers = Vec::with_capacity(code.handlers.len());
    for h in &code.handlers {
        let (start, hend, target) = (resolved[h.start], resolved[h.end], resolved[h.handler]);
        if start >= hend {
            // Protected range lowered to nothing: the handler can never
            // fire.
            continue;
        }
        if target >= end {
            return Err(ExecError::BadTarget {
                index: target,
                len: end,
            });
        }
        handlers.push(RHandler {
            start,
            end: hend,
            handler: target,
            catch_type: h.catch_type,
        });
    }

    if xl.peak >= u16::MAX as u32 {
        return Err(ExecError::TooManyRegs(xl.peak));
    }
    Ok(Function {
        name: name.to_owned(),
        descriptor: descriptor.to_owned(),
        insns: ops,
        handlers,
        max_locals: code.max_locals,
        num_regs: xl.peak.max(code.max_locals as u32 + 1) as u16,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::asm::Asm;
    use dvm_bytecode::insn::ICond;

    #[test]
    fn straight_line_arithmetic() {
        let pool = ConstPool::new();
        let mut a = Asm::new(2);
        a.iload(0).iload(1).iadd().ret_val(Kind::Int);
        let code = a.finish().unwrap();
        let f = lower(&code, &pool, "add", "(II)I").unwrap();
        assert_eq!(f.insns.len(), 4);
        assert!(matches!(
            f.insns[2],
            RInsn::Arith {
                op: ArithOp::Add,
                ..
            }
        ));
        assert!(matches!(f.insns[3], RInsn::Return { src: Some(_) }));
        assert_eq!(f.max_locals, 2);
        assert!(f.num_regs >= 4);
    }

    #[test]
    fn loop_lowered_with_correct_targets() {
        let pool = ConstPool::new();
        let mut a = Asm::new(2);
        let top = a.new_label();
        let done = a.new_label();
        a.iconst(0).istore(1);
        a.place(top);
        a.iload(1).iconst(10).if_icmp(ICond::Ge, done);
        a.iinc(1, 1).goto(top);
        a.place(done);
        a.ret();
        let code = a.finish().unwrap();
        let f = lower(&code, &pool, "spin", "()V").unwrap();
        let gotos: Vec<usize> = f
            .insns
            .iter()
            .filter_map(|op| match op {
                RInsn::Goto { target } => Some(*target),
                _ => None,
            })
            .collect();
        assert_eq!(gotos, vec![2]); // const, move, [loop head]
        assert!(f
            .insns
            .iter()
            .any(|op| matches!(op, RInsn::ArithImm { imm: 1, .. })));
    }

    #[test]
    fn iinc_lowers_to_one_instruction() {
        let pool = ConstPool::new();
        let mut a = Asm::new(1);
        a.iinc(0, 5).ret();
        let code = a.finish().unwrap();
        let f = lower(&code, &pool, "bump", "()V").unwrap();
        assert_eq!(f.insns.len(), 2);
        assert_eq!(
            f.insns[0],
            RInsn::ArithImm {
                op: ArithOp::Add,
                dst: VReg(0),
                src: VReg(0),
                imm: 5
            }
        );
    }

    #[test]
    fn jsr_is_rejected_as_unsupported() {
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![Insn::Jsr(1), Insn::Return(None)],
            handlers: vec![],
            max_locals: 1,
        };
        assert!(matches!(
            lower(&code, &pool, "sub", "()V"),
            Err(ExecError::Unsupported(_))
        ));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![
                Insn::IConst(1),
                Insn::If(ICond::Eq, 3),
                Insn::IConst(7),
                Insn::Return(None),
            ],
            handlers: vec![],
            max_locals: 0,
        };
        assert!(matches!(
            lower(&code, &pool, "bad", "()V"),
            Err(ExecError::BadStack { .. })
        ));
    }

    #[test]
    fn underflow_is_a_typed_error() {
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![Insn::Pop, Insn::Return(None)],
            handlers: vec![],
            max_locals: 0,
        };
        assert!(matches!(
            lower(&code, &pool, "uf", "()V"),
            Err(ExecError::BadStack { .. })
        ));
    }

    #[test]
    fn empty_body_is_a_typed_error() {
        let pool = ConstPool::new();
        let code = Code::new(0);
        assert_eq!(lower(&code, &pool, "e", "()V"), Err(ExecError::EmptyBody));
    }

    #[test]
    fn out_of_range_target_is_a_typed_error() {
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![Insn::Goto(99)],
            handlers: vec![],
            max_locals: 0,
        };
        assert!(matches!(
            lower(&code, &pool, "oor", "()V"),
            Err(ExecError::Bytecode(_))
        ));
    }

    #[test]
    fn handlers_map_to_ir_ranges() {
        let mut pool = ConstPool::new();
        let exc = pool.class("java/lang/Exception").unwrap();
        let code = Code {
            insns: vec![
                Insn::IConst(1),
                Insn::Pop,
                Insn::Goto(4),
                Insn::Return(None), // handler: stack [exc]; unreachable fall-in
                Insn::Return(None),
            ],
            handlers: vec![dvm_bytecode::code::Handler {
                start: 0,
                end: 2,
                handler: 3,
                catch_type: exc,
            }],
            max_locals: 0,
        };
        // Handler at 3 enters with the exception at stack depth 0 and
        // returns void — underflow? No: Return(None) pops nothing.
        let f = lower(&code, &pool, "h", "()V").unwrap();
        assert_eq!(f.handlers.len(), 1);
        assert_eq!(f.handlers[0].catch_type, exc);
    }

    #[test]
    fn unreachable_code_is_skipped() {
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![
                Insn::Return(None),
                Insn::Pop, // unreachable; would underflow if analyzed
                Insn::Return(None),
            ],
            handlers: vec![],
            max_locals: 0,
        };
        let f = lower(&code, &pool, "ur", "()V").unwrap();
        assert_eq!(f.insns.len(), 1);
    }

    #[test]
    fn local_out_of_range_is_a_typed_error() {
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![Insn::Load(Kind::Int, 40), Insn::Return(Some(Kind::Int))],
            handlers: vec![],
            max_locals: 1,
        };
        assert!(matches!(
            lower(&code, &pool, "loc", "()I"),
            Err(ExecError::BadStack { .. })
        ));
    }
}
