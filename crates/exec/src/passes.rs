//! The optimization pass pipeline.
//!
//! Four passes run over a lowered [`Function`]:
//!
//! 1. **Service inlining** — the `invokestatic` stubs the proxy's
//!    rewriters inject (`dvm/rt/Enforcer.check`, `dvm/rt/Audit.*`,
//!    `dvm/rt/Profiler.*`) become [`RInsn::Service`] intrinsics, so
//!    self-servicing code stops paying a call dispatch per check.
//! 2. **Constant folding** — block-local constant tracking folds
//!    all-constant operations and, more importantly, rewrites
//!    one-constant `int` operations to immediate forms
//!    (`ArithImm`/`LogicImm`/`ShiftImm`) and service operands to
//!    immediates, collapsing the `load; const; op` triples stack
//!    lowering produces.
//! 3. **Copy propagation** — block-local; reroutes reads around the
//!    `Move` traffic left by `load`/`store` lowering.
//! 4. **Dead-code elimination** — backward liveness over the control
//!    flow graph; deletes side-effect-free instructions whose result is
//!    never observed (mostly the `Move`s pass 3 bypassed).
//!
//! Folding mirrors interpreter semantics exactly: wrapping `int`/`long`
//! arithmetic, masked shifts, and IEEE float behavior. Integer division
//! and remainder are *never* folded — they can throw — and conditional
//! branches are never folded away, keeping the pass pipeline's effect on
//! observable behavior nil. Functions with exception handlers only get
//! service inlining: handler entry states would make block-local
//! reasoning unsound, and the proxy's injected stubs never carry
//! handlers.

use std::collections::HashMap;

use dvm_bytecode::insn::{ArithOp, LogicOp, NumKind, NumType, ShiftOp};
use dvm_classfile::ConstPool;

use crate::ir::{CmpKind, Function, InvokeKind, RConst, RInsn, SOp, ServiceKind, VReg};

/// Upper bound on fold/copy/DCE fixpoint iterations.
pub const MAX_ITERATIONS: usize = 8;

/// Work done by one [`optimize`] run, for telemetry and the bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Dynamic-component stubs inlined to [`RInsn::Service`].
    pub services_inlined: usize,
    /// Instructions rewritten by constant folding.
    pub folded: usize,
    /// Operand reads rerouted by copy propagation.
    pub copies_propagated: usize,
    /// Instructions deleted as dead.
    pub eliminated: usize,
    /// Fixpoint iterations executed.
    pub iterations: usize,
}

impl PassStats {
    /// Accumulates another run's work into this one.
    pub fn absorb(&mut self, other: &PassStats) {
        self.services_inlined += other.services_inlined;
        self.folded += other.folded;
        self.copies_propagated += other.copies_propagated;
        self.eliminated += other.eliminated;
        self.iterations += other.iterations;
    }
}

/// Runs the full pipeline over `func` to a bounded fixpoint.
pub fn optimize(func: &mut Function, pool: &ConstPool) -> PassStats {
    let mut stats = PassStats {
        services_inlined: inline_services(func, pool),
        ..PassStats::default()
    };
    if !func.handlers.is_empty() {
        return stats;
    }
    for _ in 0..MAX_ITERATIONS {
        stats.iterations += 1;
        let folded = fold_constants(func);
        let copies = propagate_copies(func);
        let eliminated = eliminate_dead(func);
        stats.folded += folded;
        stats.copies_propagated += copies;
        stats.eliminated += eliminated;
        if folded + copies + eliminated == 0 {
            break;
        }
    }
    stats
}

/// Replaces rewriter-injected dynamic-component stub calls with
/// [`RInsn::Service`] intrinsics. Always safe: the replacement is 1:1
/// and the executor performs the identical service callback.
pub fn inline_services(func: &mut Function, pool: &ConstPool) -> usize {
    let mut inlined = 0;
    for insn in &mut func.insns {
        let RInsn::Invoke {
            kind: InvokeKind::Static,
            idx,
            args,
            dst: None,
        } = insn
        else {
            continue;
        };
        let Ok((class, name, desc)) = pool.get_member_ref(*idx) else {
            continue;
        };
        let kind = match (class, name, desc) {
            ("dvm/rt/Enforcer", "check", "(II)V") => ServiceKind::Security,
            ("dvm/rt/Audit", "enter", "(I)V") => ServiceKind::AuditEnter,
            ("dvm/rt/Audit", "exit", "(I)V") => ServiceKind::AuditExit,
            ("dvm/rt/Audit", "event", "(I)V") => ServiceKind::AuditEvent,
            ("dvm/rt/Profiler", "count", "(I)V") => ServiceKind::ProfileCount,
            ("dvm/rt/Profiler", "firstUse", "(I)V") => ServiceKind::ProfileFirstUse,
            _ => continue,
        };
        let expected = if kind == ServiceKind::Security { 2 } else { 1 };
        if args.len() != expected {
            continue;
        }
        let a = SOp::Reg(args[0]);
        let b = if kind == ServiceKind::Security {
            SOp::Reg(args[1])
        } else {
            SOp::Imm(0)
        };
        *insn = RInsn::Service { kind, a, b };
        inlined += 1;
    }
    inlined
}

/// Marks the first instruction of every basic block.
fn leaders(insns: &[RInsn]) -> Vec<bool> {
    let mut lead = vec![false; insns.len()];
    if let Some(first) = lead.first_mut() {
        *first = true;
    }
    for (i, insn) in insns.iter().enumerate() {
        let targets = insn.branch_targets();
        for &t in &targets {
            if t < lead.len() {
                lead[t] = true;
            }
        }
        if (!targets.is_empty() || !insn.can_fall_through()) && i + 1 < lead.len() {
            lead[i + 1] = true;
        }
    }
    lead
}

fn fold_sop(s: SOp, known: &HashMap<VReg, RConst>) -> SOp {
    if let SOp::Reg(r) = s {
        if let Some(RConst::Int(v)) = known.get(&r) {
            return SOp::Imm(*v);
        }
    }
    s
}

/// `f2i` saturation, mirroring the interpreter.
fn f2i(v: f64) -> i32 {
    if v.is_nan() {
        0
    } else if v >= i32::MAX as f64 {
        i32::MAX
    } else if v <= i32::MIN as f64 {
        i32::MIN
    } else {
        v as i32
    }
}

/// `f2l` saturation, mirroring the interpreter.
fn f2l(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

fn fcmp(a: f64, b: f64, g: bool) -> i32 {
    if a.is_nan() || b.is_nan() {
        if g {
            1
        } else {
            -1
        }
    } else if a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}

/// Folds a two-operand arithmetic op over constants. Integer
/// division/remainder return `None`: they can throw and must execute.
fn arith_const(kind: NumKind, op: ArithOp, a: RConst, b: RConst) -> Option<RConst> {
    match (kind, a, b) {
        (NumKind::Int, RConst::Int(a), RConst::Int(b)) => Some(RConst::Int(match op {
            ArithOp::Add => a.wrapping_add(b),
            ArithOp::Sub => a.wrapping_sub(b),
            ArithOp::Mul => a.wrapping_mul(b),
            _ => return None,
        })),
        (NumKind::Long, RConst::Long(a), RConst::Long(b)) => Some(RConst::Long(match op {
            ArithOp::Add => a.wrapping_add(b),
            ArithOp::Sub => a.wrapping_sub(b),
            ArithOp::Mul => a.wrapping_mul(b),
            _ => return None,
        })),
        (NumKind::Float, RConst::Float(a), RConst::Float(b)) => Some(RConst::Float(match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
            ArithOp::Rem => a % b,
            ArithOp::Neg => return None,
        })),
        (NumKind::Double, RConst::Double(a), RConst::Double(b)) => Some(RConst::Double(match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
            ArithOp::Rem => a % b,
            ArithOp::Neg => return None,
        })),
        _ => None,
    }
}

fn shift_const(kind: NumKind, op: ShiftOp, v: RConst, amount: RConst) -> Option<RConst> {
    let RConst::Int(amount) = amount else {
        return None;
    };
    match (kind, v) {
        (NumKind::Int, RConst::Int(v)) => {
            let s = (amount & 0x1F) as u32;
            Some(RConst::Int(match op {
                ShiftOp::Shl => v.wrapping_shl(s),
                ShiftOp::Shr => v.wrapping_shr(s),
                ShiftOp::Ushr => ((v as u32).wrapping_shr(s)) as i32,
            }))
        }
        (NumKind::Long, RConst::Long(v)) => {
            let s = (amount & 0x3F) as u32;
            Some(RConst::Long(match op {
                ShiftOp::Shl => v.wrapping_shl(s),
                ShiftOp::Shr => v.wrapping_shr(s),
                ShiftOp::Ushr => ((v as u64).wrapping_shr(s)) as i64,
            }))
        }
        _ => None,
    }
}

fn logic_const(kind: NumKind, op: LogicOp, a: RConst, b: RConst) -> Option<RConst> {
    match (kind, a, b) {
        (NumKind::Int, RConst::Int(a), RConst::Int(b)) => Some(RConst::Int(match op {
            LogicOp::And => a & b,
            LogicOp::Or => a | b,
            LogicOp::Xor => a ^ b,
        })),
        (NumKind::Long, RConst::Long(a), RConst::Long(b)) => Some(RConst::Long(match op {
            LogicOp::And => a & b,
            LogicOp::Or => a | b,
            LogicOp::Xor => a ^ b,
        })),
        _ => None,
    }
}

fn convert_const(from: NumType, to: NumType, v: RConst) -> Option<RConst> {
    Some(match (from, to, v) {
        (NumType::Int, NumType::Long, RConst::Int(v)) => RConst::Long(v as i64),
        (NumType::Int, NumType::Float, RConst::Int(v)) => RConst::Float(v as f32),
        (NumType::Int, NumType::Double, RConst::Int(v)) => RConst::Double(v as f64),
        (NumType::Int, NumType::Byte, RConst::Int(v)) => RConst::Int(v as i8 as i32),
        (NumType::Int, NumType::Char, RConst::Int(v)) => RConst::Int(v as u16 as i32),
        (NumType::Int, NumType::Short, RConst::Int(v)) => RConst::Int(v as i16 as i32),
        (NumType::Long, NumType::Int, RConst::Long(v)) => RConst::Int(v as i32),
        (NumType::Long, NumType::Float, RConst::Long(v)) => RConst::Float(v as f32),
        (NumType::Long, NumType::Double, RConst::Long(v)) => RConst::Double(v as f64),
        (NumType::Float, NumType::Int, RConst::Float(v)) => RConst::Int(f2i(v as f64)),
        (NumType::Float, NumType::Long, RConst::Float(v)) => RConst::Long(f2l(v as f64)),
        (NumType::Float, NumType::Double, RConst::Float(v)) => RConst::Double(v as f64),
        (NumType::Double, NumType::Int, RConst::Double(v)) => RConst::Int(f2i(v)),
        (NumType::Double, NumType::Long, RConst::Double(v)) => RConst::Long(f2l(v)),
        (NumType::Double, NumType::Float, RConst::Double(v)) => RConst::Float(v as f32),
        _ => return None,
    })
}

fn cmp_const(kind: CmpKind, a: RConst, b: RConst) -> Option<RConst> {
    Some(RConst::Int(match (kind, a, b) {
        (CmpKind::Long, RConst::Long(a), RConst::Long(b)) => match a.cmp(&b) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        },
        (CmpKind::Float(g), RConst::Float(a), RConst::Float(b)) => fcmp(a as f64, b as f64, g),
        (CmpKind::Double(g), RConst::Double(a), RConst::Double(b)) => fcmp(a, b, g),
        _ => return None,
    }))
}

/// The per-instruction rewrite of the folding pass; returns the
/// replacement when the instruction can be strengthened.
fn fold_one(insn: &RInsn, known: &HashMap<VReg, RConst>) -> Option<RInsn> {
    let k = |r: &VReg| known.get(r).copied();
    match insn {
        RInsn::Move { dst, src } => Some(RInsn::Const {
            dst: *dst,
            v: k(src)?,
        }),
        RInsn::Arith {
            kind,
            op,
            dst,
            a,
            b,
        } => {
            if matches!(kind, NumKind::Int | NumKind::Long)
                && matches!(op, ArithOp::Div | ArithOp::Rem)
            {
                return None;
            }
            if let (Some(ka), Some(kb)) = (k(a), k(b)) {
                return Some(RInsn::Const {
                    dst: *dst,
                    v: arith_const(*kind, *op, ka, kb)?,
                });
            }
            // One-constant int peepholes → immediate forms.
            if *kind != NumKind::Int {
                return None;
            }
            match (op, k(a), k(b)) {
                (ArithOp::Add, Some(RConst::Int(imm)), None) => Some(RInsn::ArithImm {
                    op: ArithOp::Add,
                    dst: *dst,
                    src: *b,
                    imm,
                }),
                (ArithOp::Add, None, Some(RConst::Int(imm))) => Some(RInsn::ArithImm {
                    op: ArithOp::Add,
                    dst: *dst,
                    src: *a,
                    imm,
                }),
                (ArithOp::Sub, None, Some(RConst::Int(imm))) => Some(RInsn::ArithImm {
                    op: ArithOp::Add,
                    dst: *dst,
                    src: *a,
                    imm: imm.wrapping_neg(),
                }),
                (ArithOp::Mul, Some(RConst::Int(imm)), None) => Some(RInsn::ArithImm {
                    op: ArithOp::Mul,
                    dst: *dst,
                    src: *b,
                    imm,
                }),
                (ArithOp::Mul, None, Some(RConst::Int(imm))) => Some(RInsn::ArithImm {
                    op: ArithOp::Mul,
                    dst: *dst,
                    src: *a,
                    imm,
                }),
                _ => None,
            }
        }
        RInsn::ArithImm { op, dst, src, imm } => {
            let RConst::Int(v) = k(src)? else { return None };
            Some(RInsn::Const {
                dst: *dst,
                v: RConst::Int(match op {
                    ArithOp::Add => v.wrapping_add(*imm),
                    ArithOp::Mul => v.wrapping_mul(*imm),
                    _ => return None,
                }),
            })
        }
        RInsn::Neg { kind, dst, src } => {
            let v = match (kind, k(src)?) {
                (NumKind::Int, RConst::Int(v)) => RConst::Int(v.wrapping_neg()),
                (NumKind::Long, RConst::Long(v)) => RConst::Long(v.wrapping_neg()),
                (NumKind::Float, RConst::Float(v)) => RConst::Float(-v),
                (NumKind::Double, RConst::Double(v)) => RConst::Double(-v),
                _ => return None,
            };
            Some(RInsn::Const { dst: *dst, v })
        }
        RInsn::Shift {
            kind,
            op,
            dst,
            a,
            b,
        } => {
            if let (Some(ka), Some(kb)) = (k(a), k(b)) {
                return Some(RInsn::Const {
                    dst: *dst,
                    v: shift_const(*kind, *op, ka, kb)?,
                });
            }
            if *kind == NumKind::Int {
                if let Some(RConst::Int(imm)) = k(b) {
                    return Some(RInsn::ShiftImm {
                        op: *op,
                        dst: *dst,
                        src: *a,
                        imm,
                    });
                }
            }
            None
        }
        RInsn::ShiftImm { op, dst, src, imm } => Some(RInsn::Const {
            dst: *dst,
            v: shift_const(NumKind::Int, *op, k(src)?, RConst::Int(*imm))?,
        }),
        RInsn::Logic {
            kind,
            op,
            dst,
            a,
            b,
        } => {
            if let (Some(ka), Some(kb)) = (k(a), k(b)) {
                return Some(RInsn::Const {
                    dst: *dst,
                    v: logic_const(*kind, *op, ka, kb)?,
                });
            }
            if *kind == NumKind::Int {
                // And/Or/Xor are commutative.
                let (imm, src) = match (k(a), k(b)) {
                    (Some(RConst::Int(imm)), None) => (imm, *b),
                    (None, Some(RConst::Int(imm))) => (imm, *a),
                    _ => return None,
                };
                return Some(RInsn::LogicImm {
                    op: *op,
                    dst: *dst,
                    src,
                    imm,
                });
            }
            None
        }
        RInsn::LogicImm { op, dst, src, imm } => Some(RInsn::Const {
            dst: *dst,
            v: logic_const(NumKind::Int, *op, k(src)?, RConst::Int(*imm))?,
        }),
        RInsn::Convert { from, to, dst, src } => Some(RInsn::Const {
            dst: *dst,
            v: convert_const(*from, *to, k(src)?)?,
        }),
        RInsn::Cmp { kind, dst, a, b } => Some(RInsn::Const {
            dst: *dst,
            v: cmp_const(*kind, k(a)?, k(b)?)?,
        }),
        RInsn::Service { kind, a, b } => {
            let (fa, fb) = (fold_sop(*a, known), fold_sop(*b, known));
            if fa != *a || fb != *b {
                Some(RInsn::Service {
                    kind: *kind,
                    a: fa,
                    b: fb,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Block-local constant folding and immediate-form strengthening.
pub fn fold_constants(func: &mut Function) -> usize {
    let lead = leaders(&func.insns);
    let mut known: HashMap<VReg, RConst> = HashMap::new();
    let mut changed = 0;
    for (i, insn) in func.insns.iter_mut().enumerate() {
        if lead[i] {
            known.clear();
        }
        if let Some(new) = fold_one(insn, &known) {
            *insn = new;
            changed += 1;
        }
        if let RInsn::Const { dst, v } = insn {
            known.insert(*dst, *v);
        } else if let Some(dst) = insn.writes() {
            known.remove(&dst);
        }
    }
    changed
}

/// Block-local copy propagation: reads of a `Move` destination are
/// rerouted to its (transitively resolved) source.
pub fn propagate_copies(func: &mut Function) -> usize {
    let lead = leaders(&func.insns);
    let mut copy_of: HashMap<VReg, VReg> = HashMap::new();
    let mut changed = 0;
    for (i, insn) in func.insns.iter_mut().enumerate() {
        if lead[i] {
            copy_of.clear();
        }
        insn.map_reads(|r| match copy_of.get(&r) {
            Some(&root) => {
                changed += 1;
                root
            }
            None => r,
        });
        if let Some(dst) = insn.writes() {
            copy_of.retain(|k, v| *k != dst && *v != dst);
            // Source reads were already rerouted above, so `src` is a
            // propagation root.
            if let RInsn::Move { dst, src } = insn {
                if dst != src {
                    copy_of.insert(*dst, *src);
                }
            }
        }
    }
    changed
}

/// Liveness-based dead-code elimination over the whole body.
///
/// Computes backward liveness across basic blocks, then deletes
/// side-effect-free instructions whose destination is dead (plus
/// identity moves), repairing branch targets afterwards. Returns the
/// number of instructions removed. Bodies with handlers are left alone.
pub fn eliminate_dead(func: &mut Function) -> usize {
    if !func.handlers.is_empty() || func.insns.is_empty() {
        return 0;
    }
    let n = func.insns.len();
    let nr = func.num_regs as usize + 1;
    let lead = leaders(&func.insns);
    let starts: Vec<usize> = (0..n).filter(|&i| lead[i]).collect();
    let nb = starts.len();
    let mut block_of = vec![0usize; n];
    {
        let mut cur = 0;
        for (i, b) in block_of.iter_mut().enumerate() {
            if i > 0 && lead[i] {
                cur += 1;
            }
            *b = cur;
        }
    }
    let end_of = |bi: usize| if bi + 1 < nb { starts[bi + 1] } else { n };
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for (bi, s) in succ.iter_mut().enumerate() {
        let last = end_of(bi) - 1;
        let insn = &func.insns[last];
        for t in insn.branch_targets() {
            s.push(block_of[t]);
        }
        if insn.can_fall_through() && last + 1 < n {
            s.push(block_of[last + 1]);
        }
    }

    // reg() clamps into the bitset so a malformed register index can
    // never panic the pass; lowering guarantees indices < num_regs.
    let reg = |r: VReg| (r.0 as usize).min(nr - 1);
    let back_apply = |insns: &[RInsn], mut live: Vec<bool>| -> Vec<bool> {
        for insn in insns.iter().rev() {
            if let Some(d) = insn.writes() {
                live[reg(d)] = false;
            }
            for r in insn.reads() {
                live[reg(r)] = true;
            }
        }
        live
    };
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; nr]; nb];
    loop {
        let mut stable = true;
        for bi in (0..nb).rev() {
            let mut out = vec![false; nr];
            for &s in &succ[bi] {
                for (o, i) in out.iter_mut().zip(&live_in[s]) {
                    *o |= *i;
                }
            }
            let new_in = back_apply(&func.insns[starts[bi]..end_of(bi)], out);
            if new_in != live_in[bi] {
                live_in[bi] = new_in;
                stable = false;
            }
        }
        if stable {
            break;
        }
    }

    let mut keep = vec![true; n];
    let mut removed = 0;
    for bi in 0..nb {
        let mut live = vec![false; nr];
        for &s in &succ[bi] {
            for (l, i) in live.iter_mut().zip(&live_in[s]) {
                *l |= *i;
            }
        }
        for i in (starts[bi]..end_of(bi)).rev() {
            let insn = &func.insns[i];
            let dead = match insn.writes() {
                Some(d) if insn.side_effect_free() => {
                    let identity = matches!(insn, RInsn::Move { dst, src } if dst == src);
                    identity || !live[reg(d)]
                }
                _ => false,
            };
            if dead {
                keep[i] = false;
                removed += 1;
                continue;
            }
            if let Some(d) = insn.writes() {
                live[reg(d)] = false;
            }
            for r in insn.reads() {
                live[reg(r)] = true;
            }
        }
    }
    if removed == 0 {
        return 0;
    }
    // Compact and repair targets: a target maps to the position its
    // instruction (or, if removed, the next surviving one) now holds.
    let mut new_index = vec![0usize; n + 1];
    let mut c = 0;
    for i in 0..n {
        new_index[i] = c;
        if keep[i] {
            c += 1;
        }
    }
    new_index[n] = c;
    let old = std::mem::take(&mut func.insns);
    for (i, mut insn) in old.into_iter().enumerate() {
        if !keep[i] {
            continue;
        }
        insn.map_targets(|t| new_index[t]);
        func.insns.push(insn);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func(insns: Vec<RInsn>, max_locals: u16, num_regs: u16) -> Function {
        Function {
            name: "t".into(),
            descriptor: "()V".into(),
            insns,
            handlers: Vec::new(),
            max_locals,
            num_regs,
        }
    }

    #[test]
    fn folds_constant_arithmetic_to_one_const() {
        let mut f = func(
            vec![
                RInsn::Const {
                    dst: VReg(1),
                    v: RConst::Int(5),
                },
                RInsn::Const {
                    dst: VReg(2),
                    v: RConst::Int(7),
                },
                RInsn::Arith {
                    kind: NumKind::Int,
                    op: ArithOp::Add,
                    dst: VReg(3),
                    a: VReg(1),
                    b: VReg(2),
                },
                RInsn::Return { src: Some(VReg(3)) },
            ],
            1,
            4,
        );
        let pool = ConstPool::new();
        let stats = optimize(&mut f, &pool);
        assert_eq!(
            f.insns,
            vec![
                RInsn::Const {
                    dst: VReg(3),
                    v: RConst::Int(12)
                },
                RInsn::Return { src: Some(VReg(3)) },
            ]
        );
        assert!(stats.folded >= 1);
        assert_eq!(stats.eliminated, 2);
    }

    #[test]
    fn strengthens_one_const_add_to_immediate_form() {
        // r2 = arg; r3 = 1; r4 = r2 + r3  ==>  r4 = r2 + #1
        let mut f = func(
            vec![
                RInsn::Const {
                    dst: VReg(3),
                    v: RConst::Int(1),
                },
                RInsn::Arith {
                    kind: NumKind::Int,
                    op: ArithOp::Add,
                    dst: VReg(4),
                    a: VReg(2),
                    b: VReg(3),
                },
                RInsn::Return { src: Some(VReg(4)) },
            ],
            3,
            5,
        );
        let pool = ConstPool::new();
        optimize(&mut f, &pool);
        assert_eq!(
            f.insns,
            vec![
                RInsn::ArithImm {
                    op: ArithOp::Add,
                    dst: VReg(4),
                    src: VReg(2),
                    imm: 1
                },
                RInsn::Return { src: Some(VReg(4)) },
            ]
        );
    }

    #[test]
    fn subtraction_folds_to_add_of_negation() {
        let mut f = func(
            vec![
                RInsn::Const {
                    dst: VReg(3),
                    v: RConst::Int(10),
                },
                RInsn::Arith {
                    kind: NumKind::Int,
                    op: ArithOp::Sub,
                    dst: VReg(4),
                    a: VReg(2),
                    b: VReg(3),
                },
                RInsn::Return { src: Some(VReg(4)) },
            ],
            3,
            5,
        );
        let pool = ConstPool::new();
        optimize(&mut f, &pool);
        assert_eq!(
            f.insns[0],
            RInsn::ArithImm {
                op: ArithOp::Add,
                dst: VReg(4),
                src: VReg(2),
                imm: -10
            }
        );
    }

    #[test]
    fn never_folds_integer_division() {
        let insns = vec![
            RInsn::Const {
                dst: VReg(1),
                v: RConst::Int(10),
            },
            RInsn::Const {
                dst: VReg(2),
                v: RConst::Int(0),
            },
            RInsn::Arith {
                kind: NumKind::Int,
                op: ArithOp::Div,
                dst: VReg(3),
                a: VReg(1),
                b: VReg(2),
            },
            RInsn::Return { src: Some(VReg(3)) },
        ];
        let mut f = func(insns.clone(), 1, 4);
        let pool = ConstPool::new();
        optimize(&mut f, &pool);
        // The division (which must throw at run time) survives.
        assert!(f.insns.iter().any(|i| matches!(
            i,
            RInsn::Arith {
                op: ArithOp::Div,
                ..
            }
        )));
    }

    #[test]
    fn copy_propagation_reroutes_move_traffic() {
        // Classic lowering shape: stack = local; stack2 = stack + stack;
        // local = stack2; return local.
        let mut f = func(
            vec![
                RInsn::Move {
                    dst: VReg(2),
                    src: VReg(0),
                },
                RInsn::Arith {
                    kind: NumKind::Int,
                    op: ArithOp::Add,
                    dst: VReg(3),
                    a: VReg(2),
                    b: VReg(2),
                },
                RInsn::Move {
                    dst: VReg(0),
                    src: VReg(3),
                },
                RInsn::Return { src: Some(VReg(0)) },
            ],
            2,
            4,
        );
        let pool = ConstPool::new();
        let stats = optimize(&mut f, &pool);
        assert_eq!(
            f.insns,
            vec![
                RInsn::Arith {
                    kind: NumKind::Int,
                    op: ArithOp::Add,
                    dst: VReg(3),
                    a: VReg(0),
                    b: VReg(0),
                },
                RInsn::Return { src: Some(VReg(3)) },
            ]
        );
        assert!(stats.copies_propagated >= 2);
        assert_eq!(stats.eliminated, 2);
    }

    #[test]
    fn dce_repairs_branch_targets() {
        // 0: dead const; 1: goto 3; 2: dead const (unreachable but kept
        // shape-wise); 3: return.
        let mut f = func(
            vec![
                RInsn::Const {
                    dst: VReg(1),
                    v: RConst::Int(1),
                },
                RInsn::Goto { target: 3 },
                RInsn::Const {
                    dst: VReg(1),
                    v: RConst::Int(2),
                },
                RInsn::Return { src: None },
            ],
            1,
            2,
        );
        let removed = eliminate_dead(&mut f);
        assert_eq!(removed, 2);
        assert_eq!(
            f.insns,
            vec![RInsn::Goto { target: 1 }, RInsn::Return { src: None }]
        );
    }

    #[test]
    fn liveness_keeps_values_read_across_blocks() {
        // r1 written in block 0, read in block 1 after a branch: the
        // write must survive even though no read follows in-block.
        let mut f = func(
            vec![
                RInsn::Const {
                    dst: VReg(1),
                    v: RConst::Int(9),
                },
                RInsn::Goto { target: 2 },
                RInsn::Return { src: Some(VReg(1)) },
            ],
            1,
            2,
        );
        assert_eq!(eliminate_dead(&mut f), 0);
        assert_eq!(f.insns.len(), 3);
    }

    #[test]
    fn loop_carried_liveness_survives() {
        // 0: r1 = 0; 1: r1 = r1 + 1; 2: if r1 < 10 goto 1; 3: return r1
        let mut f = func(
            vec![
                RInsn::Const {
                    dst: VReg(1),
                    v: RConst::Int(0),
                },
                RInsn::ArithImm {
                    op: ArithOp::Add,
                    dst: VReg(1),
                    src: VReg(1),
                    imm: 1,
                },
                RInsn::Const {
                    dst: VReg(2),
                    v: RConst::Int(10),
                },
                RInsn::Arith {
                    kind: NumKind::Int,
                    op: ArithOp::Sub,
                    dst: VReg(3),
                    a: VReg(1),
                    b: VReg(2),
                },
                RInsn::If {
                    cond: dvm_bytecode::insn::ICond::Lt,
                    a: VReg(3),
                    b: None,
                    target: 1,
                },
                RInsn::Return { src: Some(VReg(1)) },
            ],
            1,
            4,
        );
        let pool = ConstPool::new();
        optimize(&mut f, &pool);
        // The loop body must keep the increment and the comparison.
        assert!(f
            .insns
            .iter()
            .any(|i| matches!(i, RInsn::ArithImm { imm: 1, .. })));
        assert!(f.insns.iter().any(|i| matches!(i, RInsn::If { .. })));
    }

    #[test]
    fn service_stub_calls_inline_and_fold_to_immediates() {
        let mut pool = ConstPool::new();
        let check = pool.methodref("dvm/rt/Enforcer", "check", "(II)V").unwrap();
        let count = pool.methodref("dvm/rt/Profiler", "count", "(I)V").unwrap();
        let mut f = func(
            vec![
                RInsn::Const {
                    dst: VReg(1),
                    v: RConst::Int(7),
                },
                RInsn::Const {
                    dst: VReg(2),
                    v: RConst::Int(3),
                },
                RInsn::Invoke {
                    kind: InvokeKind::Static,
                    idx: check,
                    args: vec![VReg(1), VReg(2)],
                    dst: None,
                },
                RInsn::Const {
                    dst: VReg(1),
                    v: RConst::Int(7),
                },
                RInsn::Invoke {
                    kind: InvokeKind::Static,
                    idx: count,
                    args: vec![VReg(1)],
                    dst: None,
                },
                RInsn::Return { src: None },
            ],
            1,
            3,
        );
        let stats = optimize(&mut f, &pool);
        assert_eq!(stats.services_inlined, 2);
        // Three bytecode instructions per check collapse to one Service
        // with pure immediates.
        assert_eq!(
            f.insns,
            vec![
                RInsn::Service {
                    kind: ServiceKind::Security,
                    a: SOp::Imm(7),
                    b: SOp::Imm(3),
                },
                RInsn::Service {
                    kind: ServiceKind::ProfileCount,
                    a: SOp::Imm(7),
                    b: SOp::Imm(0),
                },
                RInsn::Return { src: None },
            ]
        );
    }

    #[test]
    fn handlers_restrict_the_pipeline_to_service_inlining() {
        let pool = ConstPool::new();
        let mut f = func(
            vec![
                RInsn::Const {
                    dst: VReg(1),
                    v: RConst::Int(1),
                },
                RInsn::Return { src: None },
            ],
            1,
            2,
        );
        f.handlers.push(crate::ir::RHandler {
            start: 0,
            end: 1,
            handler: 1,
            catch_type: 0,
        });
        let stats = optimize(&mut f, &pool);
        assert_eq!(stats.iterations, 0);
        assert_eq!(f.insns.len(), 2);
    }
}
