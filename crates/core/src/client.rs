//! The DVM client: a thin VM whose classes arrive through the proxy and
//! whose dynamic service components are wired to the organization's
//! servers.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dvm_cluster::ClusterClassProvider;
use dvm_exec::ClassIr;
use dvm_jvm::{AuditKind, ClassProvider, Completion, DynamicServices, SecurityDecision, Value, Vm};
use dvm_monitor::{AuditSink, EventKind, ProfileCollector, SiteId};
use dvm_net::NetClassProvider;
use dvm_netsim::SimTime;
use dvm_proxy::{Proxy, RequestContext, ServedFrom, Signer};
use dvm_security::{EnforcementManager, PermissionId, SecurityId};
use dvm_telemetry::{Histogram, SpanId, Telemetry, TraceContext, TraceId};

use crate::config::CostModel;

/// One class transfer observed by the client.
#[derive(Debug, Clone)]
pub struct TransferRecord {
    /// Class internal name.
    pub class: String,
    /// Bytes received.
    pub bytes: usize,
    /// Where the proxy served it from.
    pub served_from: ServedFrom,
}

/// Compiled-IR packages deposited by a provider for the VM's execution
/// tier to bind as their classes finish linking (the VM's pending map,
/// shared via [`dvm_jvm::ExecTier::adopt_pending`]).
type IrPending = Arc<Mutex<HashMap<String, ClassIr>>>;

/// The provider that fetches classes through the proxy.
struct ProxyProvider {
    proxy: Arc<Proxy>,
    ctx: RequestContext,
    signer: Option<Signer>,
    transfers: Arc<Mutex<Vec<TransferRecord>>>,
    telemetry: Arc<Telemetry>,
    fetch_ns: Arc<Histogram>,
    ir_pending: IrPending,
}

impl ProxyProvider {
    /// Fetches and deposits the compiled-IR package belonging to the
    /// served payload `served`. Every absence (no producer on the proxy,
    /// unparseable package, bad signature) leaves the class on the
    /// interpreter tier — the tier is an optimization, never a
    /// requirement.
    fn fetch_ir(&mut self, served: &[u8]) {
        let key = dvm_proxy::ir_key(served);
        let Ok(response) = self.proxy.handle_request_detailed(&key, &self.ctx) else {
            return;
        };
        let payload = match &self.signer {
            Some(s) => {
                let (check, payload) = s.detach(&response.bytes);
                if check != dvm_proxy::SignatureCheck::Valid {
                    return;
                }
                match payload {
                    Some(p) => p.to_vec(),
                    None => return,
                }
            }
            None => response.bytes.to_vec(),
        };
        if let Ok(ir) = dvm_exec::decode(&payload) {
            self.telemetry
                .registry()
                .counter("client.ir_installs")
                .inc();
            self.ir_pending.lock().insert(ir.class.clone(), ir);
        }
    }
}

impl ClassProvider for ProxyProvider {
    fn load(&mut self, name: &str) -> Option<Vec<u8>> {
        let url = format!("class://{name}");
        // Root a trace per fetch; the in-process proxy records its spans
        // (handle, stages, origin) into its own recorder, exactly as a
        // remote shard would.
        let trace = TraceId::generate();
        let root = SpanId::generate();
        self.ctx.trace = Some(TraceContext {
            trace,
            parent: root,
        });
        let start = self.telemetry.recorder().now_ns();
        let response = self.proxy.handle_request_detailed(&url, &self.ctx);
        let end = self.telemetry.recorder().now_ns();
        self.fetch_ns.record(end.saturating_sub(start));
        self.telemetry.recorder().record_span(
            trace,
            root,
            SpanId::NONE,
            "client.fetch",
            start,
            end.saturating_sub(start),
        );
        let response = response.ok()?;
        self.fetch_ir(&response.bytes);
        let bytes = match &self.signer {
            // Clients "redirect incorrectly signed or unsigned code to the
            // centralized services"; in this provider a bad signature
            // simply fails the load.
            Some(s) => {
                let (check, payload) = s.detach(&response.bytes);
                if check != dvm_proxy::SignatureCheck::Valid {
                    return None;
                }
                payload?.to_vec()
            }
            None => response.bytes.to_vec(),
        };
        self.transfers.lock().push(TransferRecord {
            class: name.to_owned(),
            bytes: bytes.len(),
            served_from: response.served_from,
        });
        Some(bytes)
    }
}

/// The client-resident dynamic service components, adapted to the VM's
/// hook interface.
struct ClientServices {
    enforcement: Option<EnforcementManager>,
    sid: SecurityId,
    audit: Option<Box<dyn AuditSink>>,
    profile: Arc<Mutex<ProfileCollector>>,
}

impl DynamicServices for ClientServices {
    fn security_check(&mut self, sid: i32, perm: i32) -> SecurityDecision {
        match &mut self.enforcement {
            Some(em) => {
                // Rewritten code carries the SID chosen at rewrite time;
                // the enforcement manager still verifies it against the
                // session's SID (they agree in this reproduction).
                let sid = if sid >= 0 {
                    SecurityId(sid as u32)
                } else {
                    self.sid
                };
                let (allowed, cost) = em.check(sid, PermissionId(perm as u32));
                if allowed {
                    SecurityDecision::Allow { cost_cycles: cost }
                } else {
                    SecurityDecision::Deny { cost_cycles: cost }
                }
            }
            None => SecurityDecision::Allow { cost_cycles: 0 },
        }
    }

    fn audit_event(&mut self, site: i32, kind: AuditKind) {
        if let Some(sink) = &mut self.audit {
            let kind = match kind {
                AuditKind::Enter => EventKind::Enter,
                AuditKind::Exit => EventKind::Exit,
                AuditKind::Event => EventKind::Event,
            };
            sink.record(SiteId(site), kind);
        }
    }

    fn profile_count(&mut self, site: i32) {
        self.profile.lock().count(SiteId(site));
    }

    fn first_use(&mut self, site: i32) {
        self.profile.lock().first_use(SiteId(site));
    }
}

/// Timing breakdown of one application run (all simulated).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// How the program completed.
    pub completion: Completion,
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Client CPU time (execution, including dynamic service components).
    pub exec_time: SimTime,
    /// LAN transfer time for all classes fetched.
    pub network_time: SimTime,
    /// Proxy processing time (rewrites and cache fetches).
    pub proxy_time: SimTime,
    /// End-to-end time.
    pub total_time: SimTime,
    /// Per-class transfers.
    pub transfers: Vec<TransferRecord>,
    /// Runtime link checks executed (`dvm/rt/RTVerifier`).
    pub dynamic_verify_checks: u64,
    /// Time spent in those checks (the DVM side of Figure 7).
    pub dynamic_verify_time: SimTime,
    /// Access checks executed.
    pub security_checks: u64,
    /// Uncaught-exception description, if any.
    pub exception: Option<(String, String)>,
}

/// Cycles one `dvm/rt/RTVerifier` check costs (matches the natives).
pub const DYNAMIC_CHECK_CYCLES: u64 = 40;

/// A DVM client attached to an organization.
pub struct DvmClient {
    /// The underlying engine (exposed for inspection in experiments).
    pub vm: Vm,
    profile: Arc<Mutex<ProfileCollector>>,
    transfers: Arc<Mutex<Vec<TransferRecord>>>,
    cost: CostModel,
    telemetry: Arc<Telemetry>,
}

impl DvmClient {
    /// Builds a client wired to the given in-process organization
    /// services.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn wire(
        proxy: Arc<Proxy>,
        ctx: RequestContext,
        signer: Option<Signer>,
        enforcement: Option<EnforcementManager>,
        sid: SecurityId,
        audit: Option<Box<dyn AuditSink>>,
        cost: CostModel,
    ) -> dvm_jvm::Result<DvmClient> {
        let transfers = Arc::new(Mutex::new(Vec::new()));
        let telemetry = Arc::new(Telemetry::new(&format!("client:{}", ctx.client)));
        let fetch_ns = telemetry.registry().histogram("client.fetch_ns");
        let ir_pending: IrPending = Arc::new(Mutex::new(HashMap::new()));
        let provider = ProxyProvider {
            proxy,
            ctx,
            signer,
            transfers: transfers.clone(),
            telemetry: telemetry.clone(),
            fetch_ns,
            ir_pending: ir_pending.clone(),
        };
        Self::assemble(
            Box::new(provider),
            enforcement,
            sid,
            audit,
            transfers,
            cost,
            telemetry,
            Some(ir_pending),
        )
    }

    /// Builds a client whose classes arrive over a live socket: the same
    /// wiring as [`DvmClient::wire`], but the provider is a
    /// [`NetClassProvider`] talking to a `ProxyServer`. The provider has
    /// already verified signatures; a transfer hook feeds the same
    /// [`TransferRecord`] accounting the in-process path uses.
    pub fn wire_remote(
        mut provider: NetClassProvider,
        enforcement: Option<EnforcementManager>,
        sid: SecurityId,
        audit: Option<Box<dyn AuditSink>>,
        cost: CostModel,
    ) -> dvm_jvm::Result<DvmClient> {
        let transfers = Arc::new(Mutex::new(Vec::new()));
        let sink = transfers.clone();
        provider.set_transfer_hook(Box::new(move |t: &dvm_net::NetTransfer| {
            // The transfer manifest is per-class, like the in-process
            // provider's; IR-package fetches ride alongside and are
            // accounted by the `net.client.ir_*` counters instead.
            if t.url.starts_with(dvm_proxy::IR_SCHEME) {
                return;
            }
            let class = t.url.strip_prefix("class://").unwrap_or(&t.url).to_owned();
            sink.lock().push(TransferRecord {
                class,
                bytes: t.bytes,
                served_from: t.served_from,
            });
        }));
        let ir_pending: IrPending = Arc::new(Mutex::new(HashMap::new()));
        let ir_sink = ir_pending.clone();
        provider.set_ir_hook(Box::new(move |_name: &str, payload: &[u8]| {
            if let Ok(ir) = dvm_exec::decode(payload) {
                ir_sink.lock().insert(ir.class.clone(), ir);
            }
        }));
        let telemetry = provider.telemetry();
        Self::assemble(
            Box::new(provider),
            enforcement,
            sid,
            audit,
            transfers,
            cost,
            telemetry,
            Some(ir_pending),
        )
    }

    /// Builds a client over a shard cluster: the same wiring as
    /// [`DvmClient::wire_remote`], but the provider is a
    /// [`ClusterClassProvider`] that routes each fetch on the shared
    /// consistent-hash ring and fails over across shards.
    pub fn wire_cluster(
        mut provider: ClusterClassProvider,
        enforcement: Option<EnforcementManager>,
        sid: SecurityId,
        audit: Option<Box<dyn AuditSink>>,
        cost: CostModel,
    ) -> dvm_jvm::Result<DvmClient> {
        let transfers = Arc::new(Mutex::new(Vec::new()));
        let sink = transfers.clone();
        provider.set_transfer_hook(Box::new(move |t: &dvm_net::NetTransfer| {
            let class = t.url.strip_prefix("class://").unwrap_or(&t.url).to_owned();
            sink.lock().push(TransferRecord {
                class,
                bytes: t.bytes,
                served_from: t.served_from,
            });
        }));
        let telemetry = provider.telemetry();
        Self::assemble(
            Box::new(provider),
            enforcement,
            sid,
            audit,
            transfers,
            cost,
            telemetry,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        provider: Box<dyn ClassProvider>,
        enforcement: Option<EnforcementManager>,
        sid: SecurityId,
        audit: Option<Box<dyn AuditSink>>,
        transfers: Arc<Mutex<Vec<TransferRecord>>>,
        cost: CostModel,
        telemetry: Arc<Telemetry>,
        ir_pending: Option<IrPending>,
    ) -> dvm_jvm::Result<DvmClient> {
        let profile = Arc::new(Mutex::new(ProfileCollector::new()));
        let services = ClientServices {
            enforcement,
            sid,
            audit,
            profile: profile.clone(),
        };
        let mut vm = Vm::with_services(provider, Box::new(services))?;
        if let Some(pending) = ir_pending {
            // The provider deposits fetched IR packages into this map
            // mid-load; adopting it lets the VM bind each package the
            // moment its class links.
            vm.exec.adopt_pending(pending);
        }
        Ok(DvmClient {
            vm,
            profile,
            transfers,
            cost,
            telemetry,
        })
    }

    /// This client's telemetry plane: its fetch latency histogram and
    /// the root spans of every trace it started (shared with the
    /// provider — a cluster client's failover counters live here too).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.telemetry.clone()
    }

    /// Runs `main` of `class`, producing the timing report.
    pub fn run_main(&mut self, class: &str) -> dvm_jvm::Result<RunReport> {
        let cycles_before = self.vm.stats.cycles;
        let completion = self.vm.run_main(class)?;
        Ok(self.report(completion, cycles_before))
    }

    /// Runs an arbitrary static method.
    pub fn run_static(
        &mut self,
        class: &str,
        method: &str,
        descriptor: &str,
        args: Vec<Value>,
    ) -> dvm_jvm::Result<RunReport> {
        let cycles_before = self.vm.stats.cycles;
        let completion = self.vm.run_static(class, method, descriptor, args)?;
        Ok(self.report(completion, cycles_before))
    }

    /// Read access to the profile collected so far.
    pub fn profile(&self) -> Arc<Mutex<ProfileCollector>> {
        self.profile.clone()
    }

    fn report(&self, completion: Completion, cycles_before: u64) -> RunReport {
        let stats = &self.vm.stats;
        let exec_cycles = stats.cycles - cycles_before;
        let transfers = self.transfers.lock().clone();
        let mut network = SimTime::ZERO;
        let mut proxy = SimTime::ZERO;
        for t in &transfers {
            // Request plus response over the LAN.
            network += self.cost.lan.transfer_time(t.bytes as u64) + self.cost.lan.latency;
            proxy += match t.served_from {
                ServedFrom::Rewritten => self
                    .cost
                    .cpu
                    .time_for(t.bytes as u64 * self.cost.proxy_cycles_per_byte),
                ServedFrom::DiskCache => self.cost.cpu.time_for(self.cost.cache_disk_cycles),
                ServedFrom::MemoryCache => SimTime::from_micros(200),
                // Filled from a peer shard's cache: a disk-cache-grade
                // fetch plus one extra LAN hop between shards.
                ServedFrom::Peer => {
                    self.cost.cpu.time_for(self.cost.cache_disk_cycles) + self.cost.lan.latency
                }
            };
        }
        let exec_time = self.cost.cpu.time_for(exec_cycles);
        let exception = match &completion {
            Completion::Exception(e) => self.vm.exception_message(*e),
            Completion::Normal(_) => None,
        };
        RunReport {
            completion,
            instructions: stats.instructions,
            exec_time,
            network_time: network,
            proxy_time: proxy,
            total_time: exec_time + network + proxy,
            transfers,
            dynamic_verify_checks: stats.dynamic_verify_checks,
            dynamic_verify_time: self
                .cost
                .cpu
                .time_for(stats.dynamic_verify_checks * DYNAMIC_CHECK_CYCLES),
            security_checks: stats.security_checks,
            exception,
        }
    }
}
