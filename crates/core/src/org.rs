//! The organization: one set of centralized services, many clients.

use std::sync::Arc;

use parking_lot::Mutex;

use dvm_classfile::ClassFile;
use dvm_cluster::{ClusterClassProvider, ClusterClientConfig, ClusterOptions, ProxyCluster};
use dvm_compiler::{ExecCompiler, ExecCompilerStats, NetworkCompiler};
use dvm_membership::{MembershipOptions, MembershipPlane};
use dvm_monitor::{
    AdminConsole, AuditSink, ClientDescription, ConsoleSink, ProfileMode, SiteTable,
};
use dvm_net::{Hello, NetClassProvider, NetConfig, ProxyServer, RemoteConsole, ServerConfig};
use dvm_proxy::{
    CodeOrigin, IrProducer, IrProduct, MapOrigin, Pipeline, Proxy, RequestContext, RewriteCost,
    Signer,
};
use dvm_security::{EnforcementManager, Policy, SecurityId, SecurityServer};
use dvm_telemetry::{StatsReport, Telemetry};
use dvm_verifier::{MapEnvironment, StaticVerifier};
use dvm_watch::{Watch, WatchConfig};

use crate::client::DvmClient;
use crate::config::{CostModel, ServiceConfig};
use crate::filters::{
    AuditFilter, ProfileFilter, SecurityFilter, StaticServiceStats, VerifierFilter,
};

/// An organization running a distributed virtual machine: centralized
/// static services on a proxy, a security server, an administration
/// console, a network compiler, and any number of clients.
pub struct Organization {
    /// The code proxy hosting the static service pipeline.
    pub proxy: Arc<Proxy>,
    /// The centralized security service.
    pub security: Arc<Mutex<SecurityServer>>,
    /// The remote administration console.
    pub console: Arc<Mutex<AdminConsole>>,
    /// Instrumentation site table shared by rewriters and clients.
    pub sites: Arc<Mutex<SiteTable>>,
    /// The centralized network compiler.
    pub compiler: Mutex<NetworkCompiler>,
    /// Aggregated static-service statistics.
    pub service_stats: Arc<Mutex<StaticServiceStats>>,
    policy: Arc<Mutex<Policy>>,
    signer: Option<Signer>,
    services: ServiceConfig,
    // Shared by the primary proxy and any cluster shards built later.
    origin: Arc<dyn CodeOrigin>,
    // The IR compiler every proxy shard shares (one per-signature cache
    // for the whole organization); `None` with the exec tier disabled.
    ir_producer: Option<Arc<ExecIrProducer>>,
    // Memoized continuous-observability plane over the primary proxy
    // (created on first `watch()` call).
    watch: Mutex<Option<Arc<Watch>>>,
    /// The cost model all timing derives from.
    pub cost: CostModel,
}

/// Adapts the `dvm-compiler` IR service to the proxy's producer hook:
/// the rewritten payload's MD5 is the compilation-cache signature, and
/// the pass-pipeline statistics become `exec.opt.<pass>` span work.
struct ExecIrProducer {
    compiler: Mutex<ExecCompiler>,
}

impl ExecIrProducer {
    fn new() -> ExecIrProducer {
        ExecIrProducer {
            compiler: Mutex::new(ExecCompiler::new()),
        }
    }

    fn stats(&self) -> ExecCompilerStats {
        self.compiler.lock().stats
    }
}

impl IrProducer for ExecIrProducer {
    fn produce(&self, class_bytes: &[u8]) -> Option<IrProduct> {
        let signature = dvm_proxy::md5::hex(&dvm_proxy::md5::md5(class_bytes));
        let pkg = self.compiler.lock().compile(&signature, class_bytes).ok()?;
        if pkg.methods_compiled == 0 {
            return None;
        }
        let p = &pkg.passes;
        Some(IrProduct {
            bytes: pkg.bytes.clone(),
            pass_work: vec![
                ("inline".to_owned(), p.services_inlined as u64),
                ("fold".to_owned(), p.folded as u64),
                ("copy".to_owned(), p.copies_propagated as u64),
                ("dce".to_owned(), p.eliminated as u64),
            ],
            compile_cycles: pkg.compile_cycles,
        })
    }
}

/// Builds one static-service filter pipeline per `config`. Filters hold
/// `Box`es, so a pipeline cannot be shared — each proxy shard gets its
/// own, but all pipelines share the same policy, site table, and
/// statistics sinks, which is what makes N shards one logical service.
fn build_pipeline(
    config: &ServiceConfig,
    policy: &Arc<Mutex<Policy>>,
    sites: &Arc<Mutex<SiteTable>>,
    service_stats: &Arc<Mutex<StaticServiceStats>>,
) -> Pipeline {
    let default_sid = SecurityId(1);
    let mut pipeline = Pipeline::new();
    if config.verify {
        let verifier = StaticVerifier::new(MapEnvironment::with_bootstrap());
        pipeline.push(Box::new(VerifierFilter::new(
            verifier,
            service_stats.clone(),
        )));
    }
    if config.security {
        pipeline.push(Box::new(SecurityFilter::new(
            policy.clone(),
            default_sid,
            service_stats.clone(),
        )));
    }
    if config.audit {
        pipeline.push(Box::new(AuditFilter::new(
            sites.clone(),
            service_stats.clone(),
        )));
    }
    if config.profile {
        pipeline.push(Box::new(ProfileFilter::new(
            sites.clone(),
            ProfileMode::Method,
            service_stats.clone(),
        )));
    }
    pipeline
}

impl Organization {
    /// Builds an organization whose origin serves `classes` and whose
    /// services follow `config`.
    pub fn new(
        classes: &[ClassFile],
        policy: Policy,
        config: ServiceConfig,
        cost: CostModel,
    ) -> dvm_classfile::Result<Organization> {
        let mut origin = MapOrigin::new();
        for cf in classes {
            let mut cf = cf.clone();
            let name = cf.name()?.to_owned();
            origin.insert(&format!("class://{name}"), cf.to_bytes()?);
        }
        Ok(Self::with_origin(Box::new(origin), policy, config, cost))
    }

    /// Builds an organization over an arbitrary code origin.
    pub fn with_origin(
        origin: Box<dyn dvm_proxy::CodeOrigin>,
        policy: Policy,
        config: ServiceConfig,
        cost: CostModel,
    ) -> Organization {
        let service_stats = Arc::new(Mutex::new(StaticServiceStats::default()));
        let sites = Arc::new(Mutex::new(SiteTable::new()));
        let policy = Arc::new(Mutex::new(policy));
        let origin: Arc<dyn CodeOrigin> = Arc::from(origin);

        let pipeline = build_pipeline(&config, &policy, &sites, &service_stats);
        let signer = if config.signing {
            Some(Signer::new(b"dvm-org-key"))
        } else {
            None
        };
        let proxy = Arc::new(
            Proxy::new(
                Box::new(origin.clone()),
                pipeline,
                8 << 20,
                config.caching,
                signer.clone(),
            )
            .with_rewrite_cost(RewriteCost {
                cycles_per_byte: cost.proxy_cycles_per_byte,
                cpu: cost.cpu,
            }),
        );
        let ir_producer = if config.exec_tier {
            let producer = Arc::new(ExecIrProducer::new());
            proxy.set_ir_producer(producer.clone());
            Some(producer)
        } else {
            None
        };
        let security = Arc::new(Mutex::new(SecurityServer::new(policy.lock().clone())));
        Organization {
            proxy,
            security,
            console: Arc::new(Mutex::new(AdminConsole::new())),
            sites,
            compiler: Mutex::new(NetworkCompiler::new()),
            service_stats,
            policy,
            signer,
            services: config,
            origin,
            ir_producer,
            watch: Mutex::new(None),
            cost,
        }
    }

    /// This organization's continuous-observability plane: a
    /// [`Watch`] over the primary proxy's telemetry, created on first
    /// call (with default tuning and no objectives) and shared
    /// thereafter. Callers drive it with [`Watch::tick_at`] or a
    /// [`dvm_watch::WatchDriver`]; for per-shard watches on a cluster
    /// use [`ClusterOptions`]'s `watch` field instead.
    pub fn watch(&self) -> Arc<Watch> {
        self.watch_with(WatchConfig::default())
    }

    /// [`Organization::watch`] with explicit tuning and objectives.
    /// The first caller's configuration wins; later calls return the
    /// already-created watch unchanged.
    pub fn watch_with(&self, config: WatchConfig) -> Arc<Watch> {
        let mut slot = self.watch.lock();
        if let Some(w) = slot.as_ref() {
            return w.clone();
        }
        let w = Watch::new(self.proxy.telemetry(), config);
        *slot = Some(w.clone());
        w
    }

    /// Statistics of the shared IR compilation service, when the exec
    /// tier is enabled.
    pub fn exec_compiler_stats(&self) -> Option<ExecCompilerStats> {
        self.ir_producer.as_ref().map(|p| p.stats())
    }

    /// Builds one additional proxy shard: its own pipeline and rewrite
    /// cache over the same origin, signer, policy, site table, and
    /// statistics sinks as the primary proxy. N shards built this way
    /// are the paper's proxy scaled out — byte-identical (and
    /// identically signed) responses from every shard.
    pub fn shard_proxy(&self) -> Arc<Proxy> {
        self.shard_proxy_named("proxy")
    }

    /// [`Organization::shard_proxy`] with the shard's telemetry plane
    /// named `node` (e.g. `"shard2"`), so stats pulled from a fleet stay
    /// attributable to the shard that produced them.
    pub fn shard_proxy_named(&self, node: &str) -> Arc<Proxy> {
        let pipeline = build_pipeline(
            &self.services,
            &self.policy,
            &self.sites,
            &self.service_stats,
        );
        let proxy = Arc::new(
            Proxy::new(
                Box::new(self.origin.clone()),
                pipeline,
                8 << 20,
                self.services.caching,
                self.signer.clone(),
            )
            .with_rewrite_cost(RewriteCost {
                cycles_per_byte: self.cost.proxy_cycles_per_byte,
                cpu: self.cost.cpu,
            })
            .with_telemetry(Arc::new(Telemetry::new(node))),
        );
        if let Some(producer) = &self.ir_producer {
            // All shards share one compilation cache: a signature
            // compiled anywhere in the fleet is compiled once.
            proxy.set_ir_producer(producer.clone());
        }
        proxy
    }

    /// The primary proxy's observable state: its metrics snapshot plus
    /// its recent spans. Cluster deployments aggregate instead via
    /// [`ProxyCluster::stats_reports`] (in-process) or
    /// [`dvm_cluster::collect_fleet_stats`] (over the wire).
    pub fn stats(&self) -> StatsReport {
        self.proxy.telemetry().report()
    }

    /// Read access to the policy.
    pub fn policy(&self) -> Arc<Mutex<Policy>> {
        self.policy.clone()
    }

    /// §3.4 ahead-of-time compilation: translates `classes` for every
    /// native format that clients have declared in their handshakes,
    /// returning the number of images now cached. Repeat calls (and
    /// additional clients with the same format) are served from the image
    /// cache — the amortization the paper's network compiler exists for.
    pub fn compile_for_known_formats(&self, classes: &[ClassFile]) -> dvm_compiler::Result<u64> {
        let formats = self.console.lock().native_formats();
        let mut compiler = self.compiler.lock();
        let mut images = 0;
        for f in formats {
            let Some(target) = dvm_compiler::Target::from_format(&f) else {
                continue;
            };
            for cf in classes {
                compiler.compile(cf, target)?;
                images += 1;
            }
        }
        Ok(images)
    }

    /// Creates a new DVM client for `user` running code as `principal`.
    ///
    /// The client performs the §3.3 handshake with the administration
    /// console (credentials, hardware, native format) and registers with
    /// the security server's invalidation protocol.
    pub fn client(&self, user: &str, principal: &str) -> dvm_jvm::Result<DvmClient> {
        let session = self.console.lock().handshake(ClientDescription {
            user: user.to_owned(),
            hardware: "x86/200MHz/64MB".to_owned(),
            native_format: "x86".to_owned(),
            jvm_version: "dvm-repro-0.1".to_owned(),
        });
        let (sid, enforcement) = self.principal_wiring(principal);
        let ctx = RequestContext {
            client: user.to_owned(),
            principal: principal.to_owned(),
            url: String::new(),
            trace: None,
        };
        let audit: Box<dyn AuditSink> = Box::new(ConsoleSink::new(self.console.clone(), session));
        DvmClient::wire(
            self.proxy.clone(),
            ctx,
            self.signer.clone(),
            enforcement,
            sid,
            Some(audit),
            self.cost,
        )
    }

    fn principal_wiring(&self, principal: &str) -> (SecurityId, Option<EnforcementManager>) {
        let sid = self
            .policy
            .lock()
            .principals
            .get(principal)
            .copied()
            .unwrap_or(SecurityId(1));
        let enforcement = if self.services.security {
            Some(EnforcementManager::register(self.security.clone()))
        } else {
            None
        };
        (sid, enforcement)
    }

    /// Puts this organization's proxy and console behind a live TCP
    /// socket (e.g. `"127.0.0.1:0"` for an ephemeral port). Remote
    /// clients built with [`Organization::remote_client`] connect to
    /// [`ProxyServer::addr`].
    pub fn serve(&self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<ProxyServer> {
        self.serve_with(addr, ServerConfig::default())
    }

    /// [`Organization::serve`] with explicit server tuning (connection
    /// limit, poll interval, fault injection).
    pub fn serve_with(
        &self,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<ProxyServer> {
        ProxyServer::bind(addr, self.proxy.clone(), Some(self.console.clone()), config)
    }

    /// Creates a DVM client whose classes arrive over TCP from the
    /// server at `addr` (see [`Organization::serve`]).
    ///
    /// The handshake happens on the wire: the provider connection and
    /// the audit channel each present credentials and receive their own
    /// console session. Signature verification uses the organization's
    /// key, exactly as the in-process client does.
    pub fn remote_client(
        &self,
        addr: std::net::SocketAddr,
        user: &str,
        principal: &str,
    ) -> std::io::Result<DvmClient> {
        self.remote_client_with(addr, user, principal, NetConfig::default())
    }

    /// [`Organization::remote_client`] with explicit client tuning
    /// (timeouts, retry budget, backoff).
    pub fn remote_client_with(
        &self,
        addr: std::net::SocketAddr,
        user: &str,
        principal: &str,
        net: NetConfig,
    ) -> std::io::Result<DvmClient> {
        let hello = Hello {
            user: user.to_owned(),
            principal: principal.to_owned(),
            hardware: "x86/200MHz/64MB".to_owned(),
            native_format: "x86".to_owned(),
            jvm_version: "dvm-repro-0.1".to_owned(),
        };
        let provider = NetClassProvider::new(addr, hello.clone(), self.signer.clone(), net)?;
        let audit: Box<dyn AuditSink> =
            Box::new(RemoteConsole::connect(addr, hello, net).map_err(std::io::Error::other)?);
        let (sid, enforcement) = self.principal_wiring(principal);
        DvmClient::wire_remote(provider, enforcement, sid, Some(audit), self.cost)
            .map_err(std::io::Error::other)
    }

    /// Scales this organization's proxy out to `shards` socket-backed
    /// shards acting as one logical proxy (consistent-hash routed, with
    /// peer cache-fill between shards). Every shard reports into this
    /// organization's console. Clients come from
    /// [`Organization::cluster_client`].
    pub fn serve_cluster(&self, shards: usize) -> std::io::Result<ProxyCluster> {
        self.serve_cluster_with(shards, ClusterOptions::default())
    }

    /// [`Organization::serve_cluster`] with explicit cluster tuning
    /// (ring seed and vnodes, per-shard server config, peer-fill toggle).
    pub fn serve_cluster_with(
        &self,
        shards: usize,
        opts: ClusterOptions,
    ) -> std::io::Result<ProxyCluster> {
        let proxies = (0..shards)
            .map(|i| self.shard_proxy_named(&format!("shard{i}")))
            .collect();
        ProxyCluster::start(proxies, Some(self.console.clone()), opts)
    }

    /// [`Organization::serve_cluster_with`] wrapped in a
    /// [`dvm_membership::MembershipPlane`]: the cluster starts at
    /// `shards` shards and can then grow ([`Organization::grow_cluster`]),
    /// shrink ([`Organization::shrink_cluster`]), and self-heal (gossip
    /// failure detection) at runtime while clients keep fetching.
    pub fn serve_elastic(
        &self,
        shards: usize,
        opts: ClusterOptions,
        membership: MembershipOptions,
    ) -> std::io::Result<MembershipPlane> {
        let cluster = self.serve_cluster_with(shards, opts)?;
        Ok(MembershipPlane::new(cluster, membership))
    }

    /// Grows an elastic cluster by one shard built from this
    /// organization's substrate (same policy, signer, console, and
    /// rewrite pipeline as every other shard). The new shard pulls its
    /// key range out of the current owners before this returns, so its
    /// first fetches hit warm cache.
    pub fn grow_cluster(
        &self,
        plane: &mut MembershipPlane,
    ) -> std::io::Result<dvm_membership::JoinReport> {
        let id = plane.cluster().len();
        let proxy = self.shard_proxy_named(&format!("shard{id}"));
        plane.join(proxy)
    }

    /// Shrinks an elastic cluster by retiring `shard`: its keys drain
    /// to the survivors first, then its server shuts down and the new
    /// epoch is published.
    pub fn shrink_cluster(
        &self,
        plane: &mut MembershipPlane,
        shard: u32,
    ) -> dvm_membership::RetireReport {
        plane.retire(shard)
    }

    /// Backs the primary proxy's rewrite cache with a persistent store
    /// at `dir`: rewrites cached from now on survive a kill, and a new
    /// organization built over the same classes and `dir` serves them
    /// from the disk tier without re-rewriting.
    pub fn persist(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let store = dvm_store::Store::open(dir, dvm_store::StoreConfig::default())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        self.proxy.attach_store(store);
        Ok(())
    }

    /// [`Organization::serve_cluster_with`] with per-shard persistent
    /// data directories under `data_dir` (`shard0`, `shard1`, …): the
    /// warm-restart deployment shape. Restarting a cluster over the
    /// same directory serves previously rewritten classes from disk.
    pub fn serve_cluster_persistent(
        &self,
        shards: usize,
        mut opts: ClusterOptions,
        data_dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<ProxyCluster> {
        opts.data_dir = Some(data_dir.into());
        self.serve_cluster_with(shards, opts)
    }

    /// Creates a DVM client whose classes arrive from the shard cluster:
    /// each fetch is routed by the shared ring and fails over to replica
    /// shards on transport failures or typed overload rejections.
    pub fn cluster_client(
        &self,
        cluster: &ProxyCluster,
        user: &str,
        principal: &str,
    ) -> std::io::Result<DvmClient> {
        self.cluster_client_with(cluster, user, principal, ClusterClientConfig::default())
    }

    /// [`Organization::cluster_client`] with explicit client tuning
    /// (per-shard net config, circuit-breaker thresholds, rounds).
    pub fn cluster_client_with(
        &self,
        cluster: &ProxyCluster,
        user: &str,
        principal: &str,
        config: ClusterClientConfig,
    ) -> std::io::Result<DvmClient> {
        let hello = Hello {
            user: user.to_owned(),
            principal: principal.to_owned(),
            hardware: "x86/200MHz/64MB".to_owned(),
            native_format: "x86".to_owned(),
            jvm_version: "dvm-repro-0.1".to_owned(),
        };
        let provider = ClusterClassProvider::new(
            cluster.addrs().to_vec(),
            cluster.ring().clone(),
            hello.clone(),
            self.signer.clone(),
            config,
        );
        // The audit channel is fire-and-forget, so it pins one shard
        // (spread across clients by user name) rather than failing over
        // per event; all shards ingest into the same console. Connecting
        // does walk the shards, though — a client must still come up
        // when its preferred audit shard is down.
        let preferred = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in user.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            (h % cluster.addrs().len() as u64) as usize
        };
        let mut console = None;
        let mut last_err = None;
        for i in 0..cluster.addrs().len() {
            let shard = (preferred + i) % cluster.addrs().len();
            match RemoteConsole::connect(cluster.addrs()[shard], hello.clone(), config.net) {
                Ok(c) => {
                    console = Some(c);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let audit: Box<dyn AuditSink> = Box::new(console.ok_or_else(|| {
            std::io::Error::other(last_err.expect("cluster has at least one shard"))
        })?);
        let (sid, enforcement) = self.principal_wiring(principal);
        DvmClient::wire_cluster(provider, enforcement, sid, Some(audit), self.cost)
            .map_err(std::io::Error::other)
    }
}
