//! The static service components, packaged as proxy pipeline filters.
//!
//! Each service crate exposes its transformation; this module adapts them
//! to the proxy's stackable [`Filter`] API and aggregates the service
//! statistics the experiments report (static check counts for Figure 8,
//! instrumentation counts, etc.).

use std::sync::Arc;

use parking_lot::Mutex;

use dvm_classfile::ClassFile;
use dvm_monitor::{ProfileMode, SiteTable};
use dvm_proxy::{Filter, FilterError, RequestContext};
use dvm_security::{Policy, SecurityId};
use dvm_verifier::StaticVerifier;

/// Aggregated static-service statistics across all processed classes.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticServiceStats {
    /// Verifier: checks performed statically.
    pub static_checks: u64,
    /// Verifier: runtime checks injected.
    pub dynamic_checks_injected: u64,
    /// Verifier: classes replaced due to verification failure.
    pub replacements: u64,
    /// Security: access checks inserted.
    pub security_checks_inserted: u64,
    /// Audit: probes inserted.
    pub audit_probes: u64,
    /// Profile: probes inserted.
    pub profile_probes: u64,
    /// Total instructions examined by rewriting services.
    pub instructions_examined: u64,
}

/// The verification service as a filter (static phases + Figure 3 split).
pub struct VerifierFilter {
    verifier: Mutex<StaticVerifier>,
    stats: Arc<Mutex<StaticServiceStats>>,
}

impl VerifierFilter {
    /// Creates the filter around a verifier and a shared stats sink.
    pub fn new(verifier: StaticVerifier, stats: Arc<Mutex<StaticServiceStats>>) -> Self {
        VerifierFilter {
            verifier: Mutex::new(verifier),
            stats,
        }
    }
}

impl Filter for VerifierFilter {
    fn name(&self) -> &str {
        "verifier"
    }

    fn apply(&self, class: ClassFile, _ctx: &RequestContext) -> Result<ClassFile, FilterError> {
        let mut v = self.verifier.lock();
        // The proxy sees every class of the organization flow through it;
        // learning signatures lets later classes discharge more statically.
        v.learn(&class);
        let (mut out, report) = v.verify_or_replace(class);
        // §4.3 reflection service: ship a self-describing digest so
        // injected checks avoid the slow client reflection path.
        let _ = dvm_verifier::attach_self_describing(&mut out);
        let mut s = self.stats.lock();
        s.static_checks += report.static_checks;
        s.dynamic_checks_injected += report.dynamic_checks_injected;
        if report.static_checks == 0 {
            s.replacements += 1;
        }
        drop(s);
        Ok(out)
    }
}

/// The security service as a filter.
pub struct SecurityFilter {
    policy: Arc<Mutex<Policy>>,
    default_sid: SecurityId,
    stats: Arc<Mutex<StaticServiceStats>>,
}

impl SecurityFilter {
    /// Creates the filter. `default_sid` is used when the request context
    /// names no known principal.
    pub fn new(
        policy: Arc<Mutex<Policy>>,
        default_sid: SecurityId,
        stats: Arc<Mutex<StaticServiceStats>>,
    ) -> Self {
        SecurityFilter {
            policy,
            default_sid,
            stats,
        }
    }
}

impl Filter for SecurityFilter {
    fn name(&self) -> &str {
        "security"
    }

    fn apply(&self, mut class: ClassFile, ctx: &RequestContext) -> Result<ClassFile, FilterError> {
        let policy = self.policy.lock();
        let sid = policy
            .principals
            .get(&ctx.principal)
            .copied()
            .unwrap_or(self.default_sid);
        let rw = dvm_security::secure_class(&mut class, &policy, sid).map_err(|e| FilterError {
            filter: "security".into(),
            reason: e.to_string(),
        })?;
        let mut s = self.stats.lock();
        s.security_checks_inserted += rw.checks_inserted;
        s.instructions_examined += rw.instructions_examined;
        Ok(class)
    }
}

/// Methods below this body size are not audit-instrumented (tiny leaf
/// accessors are not noteworthy events; every instruction is still
/// examined statically).
pub const AUDIT_MIN_INSNS: usize = 20;

/// The audit instrumentation service as a filter.
pub struct AuditFilter {
    sites: Arc<Mutex<SiteTable>>,
    stats: Arc<Mutex<StaticServiceStats>>,
}

impl AuditFilter {
    /// Creates the filter around the shared site table.
    pub fn new(sites: Arc<Mutex<SiteTable>>, stats: Arc<Mutex<StaticServiceStats>>) -> Self {
        AuditFilter { sites, stats }
    }
}

impl Filter for AuditFilter {
    fn name(&self) -> &str {
        "audit"
    }

    fn apply(&self, mut class: ClassFile, _ctx: &RequestContext) -> Result<ClassFile, FilterError> {
        let st =
            dvm_monitor::audit_class_filtered(&mut class, &mut self.sites.lock(), AUDIT_MIN_INSNS)
                .map_err(|e| FilterError {
                    filter: "audit".into(),
                    reason: e.to_string(),
                })?;
        let mut s = self.stats.lock();
        s.audit_probes += st.probes;
        s.instructions_examined += st.instructions_examined;
        Ok(class)
    }
}

/// The profiling instrumentation service as a filter.
pub struct ProfileFilter {
    sites: Arc<Mutex<SiteTable>>,
    mode: ProfileMode,
    stats: Arc<Mutex<StaticServiceStats>>,
}

impl ProfileFilter {
    /// Creates the filter.
    pub fn new(
        sites: Arc<Mutex<SiteTable>>,
        mode: ProfileMode,
        stats: Arc<Mutex<StaticServiceStats>>,
    ) -> Self {
        ProfileFilter { sites, mode, stats }
    }
}

impl Filter for ProfileFilter {
    fn name(&self) -> &str {
        "profiler"
    }

    fn apply(&self, mut class: ClassFile, _ctx: &RequestContext) -> Result<ClassFile, FilterError> {
        let st = dvm_monitor::profile_class(&mut class, &mut self.sites.lock(), self.mode)
            .map_err(|e| FilterError {
                filter: "profiler".into(),
                reason: e.to_string(),
            })?;
        let mut s = self.stats.lock();
        s.profile_probes += st.probes;
        s.instructions_examined += st.instructions_examined;
        Ok(class)
    }
}
