//! The monolithic baseline: all virtual-machine services execute on the
//! client.
//!
//! Matches the paper's comparison configuration: the proxy acts as a null
//! proxy, the client parses and verifies every class locally (all four
//! phases against its own namespace), and security checks are the ones
//! hardwired into the library at the sites the JDK developers anticipated
//! (stack introspection).

use std::collections::HashMap;

use dvm_classfile::ClassFile;
use dvm_jvm::{BuiltinChecks, Completion, MapProvider, Value, Vm};
use dvm_netsim::SimTime;
use dvm_security::introspection::{ProtectionDomain, StackIntrospection};
use dvm_security::PermissionId;
use dvm_verifier::{monolithic_verify, MapEnvironment};

use crate::config::CostModel;

/// Timing breakdown of a monolithic run (all simulated).
#[derive(Debug, Clone)]
pub struct MonolithicReport {
    /// How the program completed.
    pub completion: Completion,
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Client CPU time for execution.
    pub exec_time: SimTime,
    /// Client CPU time for parsing loaded classes.
    pub parse_time: SimTime,
    /// Client CPU time for local verification (the monolithic side of
    /// Figure 7).
    pub verify_time: SimTime,
    /// LAN transfer time (classes come straight from the server).
    pub network_time: SimTime,
    /// End-to-end time.
    pub total_time: SimTime,
    /// Verification checks performed locally.
    pub verify_checks: u64,
    /// Built-in (stack-introspection) security checks executed.
    pub security_checks: u64,
    /// Uncaught-exception description, if any.
    pub exception: Option<(String, String)>,
}

/// A client running the monolithic service architecture.
pub struct MonolithicClient {
    /// The underlying engine.
    pub vm: Vm,
    classes: HashMap<String, ClassFile>,
    cost: CostModel,
}

/// Depth of the protection-domain stack a typical library call runs
/// under (application frames plus library frames).
pub const TYPICAL_STACK_DEPTH: usize = 6;

impl MonolithicClient {
    /// Creates the client over the application's (untransformed) classes.
    pub fn new(classes: &[ClassFile], cost: CostModel) -> dvm_jvm::Result<MonolithicClient> {
        let mut provider = MapProvider::new();
        let mut map = HashMap::new();
        for cf in classes {
            let mut cf = cf.clone();
            let name = cf.name()?.to_owned();
            provider.insert_class(&mut cf)?;
            map.insert(name, cf);
        }
        let mut vm = Vm::new(Box::new(provider))?;
        // JDK-style anticipated checks, costed by the stack-introspection
        // model: property access, file open, thread ops are checked; file
        // read is not (Figure 9's N/A row).
        let perm = PermissionId(1);
        let domain = ProtectionDomain::new([perm]);
        let stack: Vec<&ProtectionDomain> =
            std::iter::repeat_n(&domain, TYPICAL_STACK_DEPTH).collect();
        let sm = StackIntrospection::new([perm]);
        let (_, base_cost) = sm.check_permission(&stack, perm).expect("anticipated");
        // Opening a file additionally canonicalizes the path and consults
        // the policy file, which dominates (the paper's 7.2 ms overhead).
        let mut open_sm = StackIntrospection::new([perm]);
        open_sm.set_extra_cost(perm, 1_400_000);
        let (_, open_cost) = open_sm.check_permission(&stack, perm).expect("anticipated");
        vm.builtin_checks = BuiltinChecks {
            get_property: Some(base_cost),
            open_file: Some(open_cost),
            set_priority: Some(base_cost / 8),
            read_file: None,
        };
        Ok(MonolithicClient {
            vm,
            classes: map,
            cost,
        })
    }

    /// Runs `main` of `class` with full local servicing.
    pub fn run_main(&mut self, class: &str) -> dvm_jvm::Result<MonolithicReport> {
        let completion = self.vm.run_main(class)?;
        Ok(self.report(completion))
    }

    /// Runs an arbitrary static method.
    pub fn run_static(
        &mut self,
        class: &str,
        method: &str,
        descriptor: &str,
        args: Vec<Value>,
    ) -> dvm_jvm::Result<MonolithicReport> {
        let completion = self.vm.run_static(class, method, descriptor, args)?;
        Ok(self.report(completion))
    }

    fn report(&self, completion: Completion) -> MonolithicReport {
        let stats = &self.vm.stats;
        // Local verification of every class the run loaded, against the
        // client's own full namespace.
        let mut env = MapEnvironment::with_bootstrap();
        for cf in self.classes.values() {
            env.add(cf);
        }
        let mut verify_checks = 0u64;
        let mut parsed_bytes = 0u64;
        let mut network = SimTime::ZERO;
        for (name, bytes) in &stats.classes_loaded {
            parsed_bytes += *bytes as u64;
            network += self.cost.lan.transfer_time(*bytes as u64) + self.cost.lan.latency;
            if let Some(cf) = self.classes.get(name) {
                if let Ok(checks) = monolithic_verify(cf, &env) {
                    verify_checks += checks;
                }
            }
        }
        let exec_time = self.cost.cpu.time_for(stats.cycles);
        let parse_time = self
            .cost
            .cpu
            .time_for(parsed_bytes * self.cost.client_parse_cycles_per_byte);
        let verify_time = self
            .cost
            .cpu
            .time_for(verify_checks * self.cost.verify_cycles_per_check);
        let exception = match &completion {
            Completion::Exception(e) => self.vm.exception_message(*e),
            Completion::Normal(_) => None,
        };
        MonolithicReport {
            completion,
            instructions: stats.instructions,
            exec_time,
            parse_time,
            verify_time,
            network_time: network,
            total_time: exec_time + parse_time + verify_time + network,
            verify_checks,
            security_checks: stats.security_checks,
            exception,
        }
    }
}
