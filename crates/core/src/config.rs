//! Cost model and organization configuration.

use dvm_netsim::{presets, CycleModel, Link};

/// Simulated cost model calibrated to the paper's testbed (200 MHz
/// PentiumPro clients and servers, 10 Mb/s Ethernet).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// CPU model for both clients and the proxy host (the paper used
    /// identical hardware "to eliminate any biases").
    pub cpu: CycleModel,
    /// LAN between clients and the proxy.
    pub lan: Link,
    /// Proxy-side cycles to parse + instrument + regenerate one byte of
    /// class file (≈6.5 ms/KB at 200 MHz: the paper's ~265 ms average
    /// applet rewrite over a ~40 KB mean applet, and the source of its
    /// ~11% Figure 6 overhead).
    pub proxy_cycles_per_byte: u64,
    /// Client-side cycles to parse one byte of class file (monolithic
    /// clients parse before verifying).
    pub client_parse_cycles_per_byte: u64,
    /// Client-side cycles per monolithic verification check (phases 1–4
    /// run locally on the client in the monolithic architecture).
    pub verify_cycles_per_check: u64,
    /// Disk-tier cache fetch time in simulated cycles (the paper's 338 ms
    /// cached applet fetch is dominated by proxy disk + LAN).
    pub cache_disk_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu: CycleModel::PENTIUM_PRO_200,
            lan: presets::ethernet_10mbps(),
            proxy_cycles_per_byte: 1_300,
            client_parse_cycles_per_byte: 500,
            verify_cycles_per_check: 350,
            cache_disk_cycles: 2_000_000, // 10 ms
        }
    }
}

/// Which static services the proxy pipeline runs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Verification service (§3.1).
    pub verify: bool,
    /// Security rewriting (§3.2).
    pub security: bool,
    /// Audit instrumentation (§3.3).
    pub audit: bool,
    /// Profiling instrumentation (§3.3/§5).
    pub profile: bool,
    /// Proxy rewrite cache.
    pub caching: bool,
    /// Attach signatures to rewritten code.
    pub signing: bool,
    /// Proxy-side IR compilation for the client's optimizing execution
    /// tier (`dvm-exec`): rewritten classes are lowered, optimized, and
    /// cached as `ir://` packages clients install next to the class.
    pub exec_tier: bool,
}

impl ServiceConfig {
    /// The full DVM configuration used in Figure 6 ("verification,
    /// security enforcement, and auditing").
    pub fn dvm() -> ServiceConfig {
        ServiceConfig {
            verify: true,
            security: true,
            audit: true,
            profile: false,
            caching: true,
            signing: false,
            exec_tier: true,
        }
    }

    /// The null-proxy configuration: services performed in the clients.
    pub fn monolithic() -> ServiceConfig {
        ServiceConfig {
            verify: false,
            security: false,
            audit: false,
            profile: false,
            caching: false,
            signing: false,
            exec_tier: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_matches_paper_magnitudes() {
        let m = CostModel::default();
        // Rewriting a mean-sized (~40 KB) applet should cost roughly 265 ms.
        let cycles = 40_960 * m.proxy_cycles_per_byte;
        let t = m.cpu.time_for(cycles);
        let ms = t.as_millis_f64();
        assert!((200.0..350.0).contains(&ms), "applet rewrite {ms} ms");
    }

    #[test]
    fn configs_differ() {
        assert!(ServiceConfig::dvm().verify);
        assert!(!ServiceConfig::monolithic().verify);
    }
}
