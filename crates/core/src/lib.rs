//! The distributed virtual machine, assembled.
//!
//! This crate is the paper's primary contribution in executable form: an
//! [`Organization`] hosts the centralized static services (verification,
//! security, auditing, profiling) as a filter pipeline on a transparent
//! code proxy, plus the security server, administration console, and
//! network compiler; [`DvmClient`]s fetch all code through the proxy and
//! run the small dynamic service components locally; the
//! [`MonolithicClient`] baseline performs every service on the client, as
//! the systems the paper compares against did.
//!
//! # Examples
//!
//! ```
//! use dvm_core::{CostModel, Organization, ServiceConfig};
//! use dvm_security::Policy;
//! use dvm_workload::{figure5_apps, generate};
//!
//! let spec = figure5_apps().remove(0).scaled(1, 20000);
//! let app = generate(&spec);
//! let org = Organization::new(
//!     &app.classes,
//!     Policy::parse(dvm_security::policy::example_policy()).unwrap(),
//!     ServiceConfig::dvm(),
//!     CostModel::default(),
//! )
//! .unwrap();
//! let mut client = org.client("alice", "applets").unwrap();
//! let report = client.run_main(&app.main_class).unwrap();
//! assert!(report.total_time.as_nanos() > 0);
//! ```

pub mod client;
pub mod config;
pub mod filters;
pub mod monolithic;
pub mod org;

pub use client::{DvmClient, RunReport, TransferRecord, DYNAMIC_CHECK_CYCLES};
pub use config::{CostModel, ServiceConfig};
pub use filters::StaticServiceStats;
pub use monolithic::{MonolithicClient, MonolithicReport};
pub use org::Organization;
