//! End-to-end tests for the optimizing execution tier: a DVM client
//! fetches rewritten classes, installs the proxy-compiled IR packages
//! served next to them, and actually executes on the IR tier.

use dvm_core::{CostModel, MonolithicClient, Organization, ServiceConfig};
use dvm_jvm::Completion;
use dvm_security::{policy::example_policy, Policy};
use dvm_workload::{figure5_apps, generate};

fn small_spec() -> dvm_workload::AppSpec {
    figure5_apps().remove(0).scaled(1, 20000)
}

fn org(config: ServiceConfig) -> (Organization, String) {
    let app = generate(&small_spec());
    let org = Organization::new(
        &app.classes,
        Policy::parse(example_policy()).unwrap(),
        config,
        CostModel::default(),
    )
    .unwrap();
    (org, app.main_class)
}

#[test]
fn dvm_client_executes_on_the_ir_tier() {
    let (org, main) = org(ServiceConfig::dvm());
    let mut client = org.client("alice", "applets").unwrap();
    let report = client.run_main(&main).unwrap();
    assert!(
        matches!(report.completion, Completion::Normal(_)),
        "{:?}",
        report.exception
    );
    let stats = client.vm.exec.stats;
    assert!(
        stats.installed_classes > 0,
        "proxy-compiled IR should have been installed: {stats:?}"
    );
    assert!(
        stats.ir_invocations > 0,
        "compiled methods should have run on the IR tier: {stats:?}"
    );
    let cstats = org.exec_compiler_stats().expect("exec tier enabled");
    assert!(cstats.compilations > 0, "{cstats:?}");
    assert!(cstats.methods_compiled > 0, "{cstats:?}");
}

#[test]
fn second_client_reuses_cached_ir_packages() {
    let (org, main) = org(ServiceConfig::dvm());
    let mut c1 = org.client("alice", "applets").unwrap();
    c1.run_main(&main).unwrap();
    let compiled_once = org.exec_compiler_stats().unwrap().compilations;
    assert!(compiled_once > 0);

    let mut c2 = org.client("bob", "applets").unwrap();
    let r2 = c2.run_main(&main).unwrap();
    assert!(matches!(r2.completion, Completion::Normal(_)));
    assert!(c2.vm.exec.stats.ir_invocations > 0);
    // The second client's classes come from the proxy cache, so no new
    // compilations happen; the IR packages are served from cache too.
    assert_eq!(
        org.exec_compiler_stats().unwrap().compilations,
        compiled_once
    );
}

#[test]
fn ir_tier_preserves_program_output() {
    let app = generate(&small_spec());
    let orgn = Organization::new(
        &app.classes,
        Policy::parse(example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();
    let mut tiered = orgn.client("alice", "applets").unwrap();
    let r = tiered.run_main(&app.main_class).unwrap();
    assert!(matches!(r.completion, Completion::Normal(_)));
    assert!(tiered.vm.exec.stats.ir_invocations > 0);

    let mut mono = MonolithicClient::new(&app.classes, CostModel::default()).unwrap();
    let m = mono.run_main(&app.main_class).unwrap();
    assert!(matches!(m.completion, Completion::Normal(_)));
    assert_eq!(mono.vm.exec.stats.ir_invocations, 0);
    assert_eq!(
        tiered.vm.stdout, mono.vm.stdout,
        "the IR tier must not change program output"
    );
}

#[test]
fn disabling_the_exec_tier_keeps_everything_interpreted() {
    let mut config = ServiceConfig::dvm();
    config.exec_tier = false;
    let (org, main) = org(config);
    let mut client = org.client("alice", "applets").unwrap();
    let report = client.run_main(&main).unwrap();
    assert!(matches!(report.completion, Completion::Normal(_)));
    assert_eq!(client.vm.exec.stats.installed_classes, 0);
    assert_eq!(client.vm.exec.stats.ir_invocations, 0);
    assert!(org.exec_compiler_stats().is_none());
}
