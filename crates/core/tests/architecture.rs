//! Architecture-level integration tests: the claims of §2–§4 hold on the
//! assembled system.

use dvm_core::{CostModel, MonolithicClient, Organization, ServiceConfig};
use dvm_jvm::Completion;
use dvm_proxy::ServedFrom;
use dvm_security::{policy::example_policy, Policy};
use dvm_workload::{figure5_apps, generate};

fn small_spec() -> dvm_workload::AppSpec {
    figure5_apps().remove(0).scaled(1, 20000)
}

fn org(config: ServiceConfig) -> (Organization, String) {
    let app = generate(&small_spec());
    let org = Organization::new(
        &app.classes,
        Policy::parse(example_policy()).unwrap(),
        config,
        CostModel::default(),
    )
    .unwrap();
    (org, app.main_class)
}

#[test]
fn dvm_client_runs_rewritten_app_to_completion() {
    let (org, main) = org(ServiceConfig::dvm());
    let mut client = org.client("alice", "applets").unwrap();
    let report = client.run_main(&main).unwrap();
    assert!(
        matches!(report.completion, Completion::Normal(_)),
        "{:?}",
        report.exception
    );
    assert!(!report.transfers.is_empty());
    // The audit service recorded method activity centrally.
    assert!(org.console.lock().total_events() > 0);
    // The security rewriter inserted checks... none in this app (no
    // protected operations), but the static stats were collected.
    let stats = *org.service_stats.lock();
    assert!(stats.static_checks > 0);
    assert!(stats.audit_probes > 0);
}

#[test]
fn second_client_benefits_from_proxy_cache() {
    let (org, main) = org(ServiceConfig::dvm());
    let mut c1 = org.client("alice", "applets").unwrap();
    let r1 = c1.run_main(&main).unwrap();
    let mut c2 = org.client("bob", "applets").unwrap();
    let r2 = c2.run_main(&main).unwrap();
    assert!(r1
        .transfers
        .iter()
        .all(|t| t.served_from == ServedFrom::Rewritten));
    assert!(r2
        .transfers
        .iter()
        .all(|t| t.served_from != ServedFrom::Rewritten));
    assert!(
        r2.proxy_time < r1.proxy_time,
        "cached run should spend less proxy time: {} vs {}",
        r2.proxy_time,
        r1.proxy_time
    );
}

#[test]
fn monolithic_and_dvm_compute_identical_results() {
    let app = generate(&small_spec());
    let orgn = Organization::new(
        &app.classes,
        Policy::parse(example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();
    let mut dvm = orgn.client("alice", "applets").unwrap();
    let r = dvm.run_main(&app.main_class).unwrap();
    assert!(matches!(r.completion, Completion::Normal(_)));
    let dvm_out = dvm.vm.stdout.clone();

    let mut mono = MonolithicClient::new(&app.classes, CostModel::default()).unwrap();
    let m = mono.run_main(&app.main_class).unwrap();
    assert!(matches!(m.completion, Completion::Normal(_)));
    assert_eq!(
        dvm_out, mono.vm.stdout,
        "architectures must not change results"
    );
}

#[test]
fn monolithic_client_verifies_locally_dvm_client_does_not() {
    let app = generate(&small_spec());
    let orgn = Organization::new(
        &app.classes,
        Policy::parse(example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();
    let mut dvm = orgn.client("alice", "applets").unwrap();
    let r = dvm.run_main(&app.main_class).unwrap();
    let mut mono = MonolithicClient::new(&app.classes, CostModel::default()).unwrap();
    let m = mono.run_main(&app.main_class).unwrap();

    // Figure 7's claim: client verification effort moves to the server.
    assert!(
        m.verify_checks > 1_000,
        "monolithic checks: {}",
        m.verify_checks
    );
    assert!(
        r.dynamic_verify_time < m.verify_time,
        "DVM client verification {} must be below monolithic {}",
        r.dynamic_verify_time,
        m.verify_time
    );
}

#[test]
fn security_revocation_propagates_to_running_clients() {
    // An app that reads a property (a protected operation).
    use dvm_bytecode::Asm;
    use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, MemberInfo};
    let mut cf = ClassBuilder::new("t/PropReader").build();
    let getprop = cf
        .pool
        .methodref(
            "java/lang/System",
            "getProperty",
            "(Ljava/lang/String;)Ljava/lang/String;",
        )
        .unwrap();
    let key = cf.pool.string("os.name").unwrap();
    let mut a = Asm::new(0);
    a.ldc(key).invokestatic(getprop).pop().ret();
    let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
    let n = cf.pool.utf8("main").unwrap();
    let d = cf.pool.utf8("()V").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });

    let orgn = Organization::new(
        &[cf],
        Policy::parse(example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();
    let (sid, perm) = {
        let p = orgn.policy();
        let p = p.lock();
        (p.principals["applets"], p.permissions["prop.read"])
    };

    // Allowed at first.
    let mut c1 = orgn.client("alice", "applets").unwrap();
    let r1 = c1.run_main("t/PropReader").unwrap();
    assert!(
        matches!(r1.completion, Completion::Normal(_)),
        "{:?}",
        r1.exception
    );
    assert!(r1.security_checks > 0, "the injected check must have run");

    // Revoke centrally; a fresh run of the *same rewritten code* is denied.
    orgn.security.lock().revoke(sid, perm);
    let mut c2 = orgn.client("bob", "applets").unwrap();
    let r2 = c2.run_main("t/PropReader").unwrap();
    match &r2.completion {
        Completion::Exception(_) => {
            let (class, _) = r2.exception.clone().unwrap();
            assert_eq!(class, "java/lang/SecurityException");
        }
        other => panic!("expected SecurityException, got {other:?}"),
    }
}

#[test]
fn unverifiable_code_is_replaced_and_raises_verifyerror() {
    use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, CodeAttribute, MemberInfo};
    // A malformed class: stack underflow in its only method.
    let mut bad = ClassBuilder::new("t/Evil").build();
    let attr = CodeAttribute {
        max_stack: 1,
        max_locals: 0,
        code: vec![0x57, 0xB1], // pop; return
        ..Default::default()
    };
    let n = bad.pool.utf8("main").unwrap();
    let d = bad.pool.utf8("()V").unwrap();
    bad.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });

    let orgn = Organization::new(
        &[bad],
        Policy::parse(example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();
    let mut client = orgn.client("alice", "applets").unwrap();
    let r = client.run_main("t/Evil").unwrap();
    let (class, _) = r.exception.expect("must raise");
    assert_eq!(class, "java/lang/VerifyError");
}

#[test]
fn signed_transport_round_trips() {
    let app = generate(&small_spec());
    let mut config = ServiceConfig::dvm();
    config.signing = true;
    let orgn = Organization::new(
        &app.classes,
        Policy::parse(example_policy()).unwrap(),
        config,
        CostModel::default(),
    )
    .unwrap();
    let mut client = orgn.client("alice", "applets").unwrap();
    let r = client.run_main(&app.main_class).unwrap();
    assert!(
        matches!(r.completion, Completion::Normal(_)),
        "{:?}",
        r.exception
    );
}

#[test]
fn profiling_service_collects_first_use_graph() {
    let app = generate(&small_spec());
    let mut config = ServiceConfig::dvm();
    config.profile = true;
    let orgn = Organization::new(
        &app.classes,
        Policy::parse(example_policy()).unwrap(),
        config,
        CostModel::default(),
    )
    .unwrap();
    let mut client = orgn.client("alice", "applets").unwrap();
    client.run_main(&app.main_class).unwrap();
    let profile = client.profile();
    let profile = profile.lock();
    assert!(
        profile.first_use_order().len() > 5,
        "profiled {} methods",
        profile.first_use_order().len()
    );
    // Dead methods never appear.
    let sites = orgn.sites.lock();
    let dead: Vec<_> = app
        .truth
        .iter()
        .filter(|(_, _, d)| *d == dvm_workload::Disposition::Dead)
        .collect();
    assert!(!dead.is_empty());
    for (class, method, _) in dead {
        if let Some((id, _, _)) = sites.iter().find(|(_, c, m)| c == class && m == method) {
            assert!(!profile.was_used(id), "{class}.{method} should be dead");
        }
    }
}

#[test]
fn network_compiler_serves_handshake_formats_ahead_of_time() {
    let app = generate(&small_spec());
    let orgn = Organization::new(
        &app.classes,
        Policy::parse(example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();
    // Two clients handshake (both declare the x86 native format).
    let _c1 = orgn.client("alice", "applets").unwrap();
    let _c2 = orgn.client("bob", "applets").unwrap();
    let images = orgn.compile_for_known_formats(&app.classes).unwrap();
    assert_eq!(
        images as usize,
        app.classes.len(),
        "one image per class per format"
    );
    let stats = orgn.compiler.lock().stats;
    assert_eq!(stats.compilations as usize, app.classes.len());
    // A later client with the same format costs nothing: all cache hits.
    let again = orgn.compile_for_known_formats(&app.classes).unwrap();
    assert_eq!(again, images);
    let stats = orgn.compiler.lock().stats;
    assert_eq!(
        stats.compilations as usize,
        app.classes.len(),
        "no recompilation"
    );
    assert!(stats.cache_hits as usize >= app.classes.len());
}

#[test]
fn null_proxy_configuration_leaves_code_unserviced() {
    // The monolithic measurement configuration: the proxy forwards code
    // without transformation and no central services run.
    let app = generate(&small_spec());
    let orgn = Organization::new(
        &app.classes,
        Policy::parse(example_policy()).unwrap(),
        ServiceConfig::monolithic(),
        CostModel::default(),
    )
    .unwrap();
    let mut client = orgn.client("alice", "applets").unwrap();
    let report = client.run_main(&app.main_class).unwrap();
    assert!(matches!(report.completion, Completion::Normal(_)));
    // No service activity anywhere.
    let stats = *orgn.service_stats.lock();
    assert_eq!(stats.static_checks, 0);
    assert_eq!(stats.audit_probes, 0);
    assert_eq!(report.dynamic_verify_checks, 0);
    assert_eq!(report.security_checks, 0);
    assert_eq!(orgn.console.lock().total_events(), 0);
}
