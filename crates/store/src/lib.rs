//! `dvm-store`: a crash-safe, log-structured persistent store.
//!
//! The paper's proxy is organized around a shared rewrite cache and an
//! audit trail to a remote administration console (§3, §4.1.2); both
//! need state that outlives the proxy process. This crate is the
//! persistence layer under them: a from-scratch, single-writer,
//! key→bytes store in the log-structured tradition —
//!
//! - **append-only segment files** of length-prefixed records, each
//!   CRC32-checked and sealed by a commit marker ([`record`]);
//! - **recovery by scan**: [`Store::open`] replays committed records
//!   into an in-memory index and truncates the first torn write it
//!   meets, so a crash mid-append costs at most the uncommitted tail;
//! - **tombstone deletes** and **size-triggered compaction** into
//!   fresh segments, so dead weight is reclaimed without ever updating
//!   a byte in place;
//! - **fsync batching** under a configurable [`Durability`] policy.
//!
//! Everything is `std` + `parking_lot` only; the CRC is written here
//! ([`crc`]), not imported. Upstack, the proxy's `RewriteCache` disk
//! tier and the monitor's audit spool are both thin layers over
//! [`Store`].

pub mod crc;
pub mod record;
mod store;

pub use crc::crc32;
pub use store::{Durability, ExportPage, Store, StoreConfig, StoreError, StoreStats};

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use dvm_telemetry::Telemetry;

    /// A unique, self-cleaning temp dir per test.
    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("dvm-store-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn open(dir: &TempDir) -> Store {
        Store::open(&dir.0, StoreConfig::default()).unwrap()
    }

    #[test]
    fn put_get_delete_round_trip() {
        let tmp = TempDir::new("basic");
        let mut s = open(&tmp);
        assert_eq!(s.get("k").unwrap(), None);
        s.put("k", b"v1").unwrap();
        assert_eq!(s.get("k").unwrap().as_deref(), Some(&b"v1"[..]));
        s.put("k", b"v2").unwrap();
        assert_eq!(s.get("k").unwrap().as_deref(), Some(&b"v2"[..]));
        assert!(s.delete("k").unwrap());
        assert!(!s.delete("k").unwrap());
        assert_eq!(s.get("k").unwrap(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn reopen_recovers_puts_and_tombstones() {
        let tmp = TempDir::new("reopen");
        {
            let mut s = open(&tmp);
            s.put("a", b"alpha").unwrap();
            s.put("b", b"beta").unwrap();
            s.put("a", b"alpha2").unwrap();
            s.delete("b").unwrap();
            s.put("c", b"gamma").unwrap();
            // No flush: write_all alone must survive a process drop.
        }
        let mut s = open(&tmp);
        assert_eq!(s.stats().recovered_records, 5);
        assert_eq!(s.stats().truncated_bytes, 0);
        assert_eq!(s.get("a").unwrap().as_deref(), Some(&b"alpha2"[..]));
        assert_eq!(s.get("b").unwrap(), None);
        assert_eq!(s.get("c").unwrap().as_deref(), Some(&b"gamma"[..]));
        assert_eq!(s.keys(), vec!["a".to_string(), "c".to_string()]);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_committed_prefix() {
        let tmp = TempDir::new("torn");
        {
            let mut s = open(&tmp);
            s.put("good", b"committed").unwrap();
        }
        // Simulate a torn write: append half a record to the segment.
        let seg = fs::read_dir(&tmp.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "seg"))
            .unwrap();
        let full = record::encode_record(record::KIND_PUT, "half", b"never committed");
        let mut bytes = fs::read(&seg).unwrap();
        let committed_len = bytes.len();
        bytes.extend_from_slice(&full[..full.len() / 2]);
        fs::write(&seg, &bytes).unwrap();

        let mut s = open(&tmp);
        assert_eq!(s.stats().recovered_records, 1);
        assert_eq!(s.stats().truncated_bytes, (full.len() / 2) as u64);
        assert_eq!(s.get("good").unwrap().as_deref(), Some(&b"committed"[..]));
        assert_eq!(s.get("half").unwrap(), None);
        assert_eq!(fs::metadata(&seg).unwrap().len(), committed_len as u64);
        // And the truncated store keeps working.
        s.put("after", b"recovery").unwrap();
        drop(s);
        let mut s = open(&tmp);
        assert_eq!(s.get("after").unwrap().as_deref(), Some(&b"recovery"[..]));
    }

    #[test]
    fn segments_roll_at_the_size_cap_and_reads_span_them() {
        let tmp = TempDir::new("roll");
        let cfg = StoreConfig {
            segment_max_bytes: 256,
            compact_min_bytes: u64::MAX, // disable auto-compaction
            ..StoreConfig::default()
        };
        let mut s = Store::open(&tmp.0, cfg.clone()).unwrap();
        for i in 0..32 {
            s.put(&format!("key{i:02}"), &[i as u8; 40]).unwrap();
        }
        assert!(s.stats().segments > 1, "expected a segment roll");
        for i in 0..32 {
            assert_eq!(
                s.get(&format!("key{i:02}")).unwrap().as_deref(),
                Some(&[i as u8; 40][..])
            );
        }
        drop(s);
        let mut s = Store::open(&tmp.0, cfg).unwrap();
        assert_eq!(s.len(), 32);
        assert_eq!(s.get("key31").unwrap().as_deref(), Some(&[31u8; 40][..]));
    }

    #[test]
    fn compaction_drops_dead_weight_and_preserves_live_data() {
        let tmp = TempDir::new("compact");
        let cfg = StoreConfig {
            segment_max_bytes: 512,
            compact_min_bytes: u64::MAX,
            ..StoreConfig::default()
        };
        let mut s = Store::open(&tmp.0, cfg.clone()).unwrap();
        for round in 0..8 {
            for i in 0..8 {
                s.put(&format!("k{i}"), &[round as u8; 64]).unwrap();
            }
        }
        s.delete("k7").unwrap();
        let before = s.stats();
        assert!(before.dead_bytes > 0);
        s.compact().unwrap();
        let after = s.stats();
        assert_eq!(after.compactions, 1);
        assert_eq!(after.dead_bytes, 0);
        assert!(after.segments < before.segments);
        assert_eq!(s.len(), 7);
        for i in 0..7 {
            assert_eq!(
                s.get(&format!("k{i}")).unwrap().as_deref(),
                Some(&[7u8; 64][..])
            );
        }
        // A reopen after compaction sees exactly the live set.
        drop(s);
        let mut s = Store::open(&tmp.0, cfg).unwrap();
        assert_eq!(s.len(), 7);
        assert_eq!(s.get("k0").unwrap().as_deref(), Some(&[7u8; 64][..]));
        assert_eq!(s.get("k7").unwrap(), None);
    }

    #[test]
    fn auto_compaction_triggers_on_dead_ratio() {
        let tmp = TempDir::new("autocompact");
        let cfg = StoreConfig {
            segment_max_bytes: 1 << 20,
            compact_min_bytes: 2_000,
            compact_min_dead_ratio: 0.5,
            ..StoreConfig::default()
        };
        let mut s = Store::open(&tmp.0, cfg).unwrap();
        for _ in 0..64 {
            s.put("same-key", &[0xAB; 64]).unwrap();
        }
        assert!(
            s.stats().compactions >= 1,
            "rewriting one key should compact"
        );
        assert_eq!(s.get("same-key").unwrap().as_deref(), Some(&[0xAB; 64][..]));
    }

    #[test]
    fn durability_always_syncs_every_append() {
        let tmp = TempDir::new("durable");
        let cfg = StoreConfig {
            durability: Durability::Always,
            ..StoreConfig::default()
        };
        let mut s = Store::open(&tmp.0, cfg).unwrap();
        let base = s.stats().fsyncs;
        s.put("a", b"1").unwrap();
        s.put("b", b"2").unwrap();
        assert_eq!(s.stats().fsyncs, base + 2);
    }

    #[test]
    fn durability_batch_syncs_every_n_appends() {
        let tmp = TempDir::new("batch");
        let cfg = StoreConfig {
            durability: Durability::Batch(4),
            ..StoreConfig::default()
        };
        let mut s = Store::open(&tmp.0, cfg).unwrap();
        let base = s.stats().fsyncs;
        for i in 0..7 {
            s.put(&format!("k{i}"), b"v").unwrap();
        }
        assert_eq!(s.stats().fsyncs, base + 1, "7 appends at Batch(4) = 1 sync");
        s.flush().unwrap();
        assert_eq!(s.stats().fsyncs, base + 2);
    }

    #[test]
    fn flipped_bit_on_disk_degrades_to_a_miss_not_a_wrong_value() {
        let tmp = TempDir::new("bitrot");
        let mut s = open(&tmp);
        s.put("victim", b"precious payload bytes").unwrap();
        s.flush().unwrap();
        // Flip one bit inside the stored value, behind the store's back.
        let seg = fs::read_dir(&tmp.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "seg"))
            .unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0x10;
        fs::write(&seg, &bytes).unwrap();
        drop(s);
        // A fresh open truncates it away entirely…
        let mut s = open(&tmp);
        assert_eq!(s.get("victim").unwrap(), None);
        drop(s);
        // …and a *live* store that reads a rotted record degrades to a
        // miss (read-path re-verification).
        let tmp = TempDir::new("bitrot-live");
        let mut s = open(&tmp);
        s.put("victim", b"precious payload bytes").unwrap();
        s.flush().unwrap();
        let seg = fs::read_dir(&tmp.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "seg"))
            .unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0x10;
        fs::write(&seg, &bytes).unwrap();
        assert_eq!(s.get("victim").unwrap(), None);
        assert_eq!(s.stats().read_corruptions, 1);
    }

    #[test]
    fn telemetry_attach_is_late_binding_and_counts_from_then_on() {
        let tmp = TempDir::new("telemetry");
        let mut s = open(&tmp);
        s.put("early", b"before attach").unwrap();
        let t = Arc::new(Telemetry::new("store-test"));
        s.set_telemetry(&t);
        s.put("late", b"after attach").unwrap();
        let snap = t.registry().snapshot();
        assert_eq!(
            snap.counter("store.appends"),
            2,
            "pre-attach totals folded in"
        );
        assert_eq!(snap.gauge("store.live_records"), 2);
        assert!(snap.gauge("store.segments") >= 1);
        let spans = t.recorder().dump();
        assert!(
            spans.iter().any(|sp| sp.name == "store.open"),
            "store.open span recorded retroactively"
        );
        s.compact().unwrap();
        let spans = t.recorder().dump();
        assert!(spans.iter().any(|sp| sp.name == "store.compact"));
        assert_eq!(t.registry().snapshot().counter("store.compactions"), 1);
    }

    #[test]
    fn export_after_pages_the_key_space_in_order() {
        let tmp = TempDir::new("export");
        let mut s = open(&tmp);
        for i in 0..10 {
            s.put(&format!("k{i}"), &[i as u8; 8]).unwrap();
        }
        // First page from the start.
        let (page, complete) = s.export_after("", 4).unwrap();
        assert!(!complete);
        let keys: Vec<&str> = page.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["k0", "k1", "k2", "k3"]);
        assert_eq!(page[2].1, vec![2u8; 8]);
        // Resume strictly after the last key seen.
        let (page, complete) = s.export_after("k3", 100).unwrap();
        assert!(complete);
        assert_eq!(page.len(), 6);
        assert_eq!(page[0].0, "k4");
        assert_eq!(page[5].0, "k9");
        // Past the end: empty and complete.
        let (page, complete) = s.export_after("k9", 4).unwrap();
        assert!(page.is_empty());
        assert!(complete);
        // Exactly max remaining counts as complete.
        let (page, complete) = s.export_after("k7", 2).unwrap();
        assert_eq!(page.len(), 2);
        assert!(complete);
    }

    #[test]
    fn empty_dir_and_double_open_are_fine() {
        let tmp = TempDir::new("empty");
        {
            let s = open(&tmp);
            assert!(s.is_empty());
            assert_eq!(s.stats().segments, 1);
        }
        let s = open(&tmp);
        assert!(s.is_empty());
    }

    #[test]
    fn corrupt_segment_header_drops_that_segment_and_later_ones() {
        let tmp = TempDir::new("badheader");
        let cfg = StoreConfig {
            segment_max_bytes: 200,
            compact_min_bytes: u64::MAX,
            ..StoreConfig::default()
        };
        {
            let mut s = Store::open(&tmp.0, cfg.clone()).unwrap();
            for i in 0..12 {
                s.put(&format!("k{i:02}"), &[i as u8; 50]).unwrap();
            }
            assert!(s.stats().segments >= 3);
        }
        // Corrupt the magic of the *second* segment.
        let mut segs: Vec<PathBuf> = fs::read_dir(&tmp.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        segs.sort();
        let mut bytes = fs::read(&segs[1]).unwrap();
        bytes[0] = b'X';
        fs::write(&segs[1], &bytes).unwrap();

        let s = Store::open(&tmp.0, cfg).unwrap();
        // Only records from segment 0 survive; the bad segment and all
        // later ones are gone from disk.
        let remaining: Vec<PathBuf> = fs::read_dir(&tmp.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        assert!(remaining.iter().all(|p| !segs[2..].contains(p)));
        assert!(s.stats().truncated_bytes > 0);
        for key in s.keys() {
            assert!(key.starts_with('k'));
        }
    }
}
