//! The store proper: segmented append-only log + in-memory index.
//!
//! Single-writer by construction: every method takes `&mut self`, and
//! the one process that owns the data directory owns the `Store`. The
//! DVM wraps it in the same mutex that already serializes the rewrite
//! cache, so the discipline costs nothing extra.
//!
//! ## Recovery
//!
//! [`Store::open`] scans segment files in id order and replays every
//! committed record into the index. The first defective record — short
//! header, overrunning length, CRC mismatch, missing commit marker,
//! malformed body — ends the committed prefix: the segment is truncated
//! at that offset and **all later segments are deleted**, so the store
//! never resurrects a record written after a torn one (that would
//! reorder history). A defective segment *header* drops that whole
//! segment the same way.
//!
//! ## Durability
//!
//! Appends go through `write_all` immediately; [`Durability`] only
//! controls when `fsync` is issued. `Always` syncs every append,
//! `Batch(n)` every `n` appends, `Never` leaves it to the OS. An
//! in-process crash (the SIGKILL-equivalent the tests use) loses
//! nothing that `write_all` returned for; a machine crash loses at most
//! the unsynced tail, which recovery then truncates cleanly.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use dvm_telemetry::{Counter, Gauge, SpanId, Telemetry, TraceId};

use crate::record::{
    encode_record, encode_segment_header, parse_record, parse_segment_header, KIND_PUT,
    KIND_TOMBSTONE, SEGMENT_HEADER_LEN,
};

/// When appends are flushed to the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// `fsync` after every append. Slowest, loses nothing.
    Always,
    /// `fsync` every `n` appends (and on [`Store::flush`]/segment roll).
    Batch(u32),
    /// Never `fsync`; the OS decides. Survives process death, not power loss.
    Never,
}

impl Default for Durability {
    fn default() -> Durability {
        Durability::Batch(16)
    }
}

/// Tuning knobs for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Roll to a fresh segment once the active one reaches this size.
    pub segment_max_bytes: u64,
    /// Fsync policy for appends.
    pub durability: Durability,
    /// Auto-compact when `dead / (live + dead)` reaches this ratio…
    pub compact_min_dead_ratio: f64,
    /// …and the log holds at least this many bytes (so tiny stores
    /// don't churn).
    pub compact_min_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            segment_max_bytes: 4 << 20,
            durability: Durability::default(),
            compact_min_dead_ratio: 0.5,
            compact_min_bytes: 1 << 20,
        }
    }
}

/// Store failures. Corruption found on *open* never errors — recovery
/// truncates it away; `Corrupt` is reserved for invariant breaks that
/// recovery cannot express (none today — reads degrade to misses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    Io(std::io::ErrorKind, String),
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(kind, detail) => write!(f, "store io error ({kind:?}): {detail}"),
            StoreError::Corrupt(detail) => write!(f, "store corruption: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e.kind(), e.to_string())
    }
}

/// Running totals a store keeps about itself (mirrored into telemetry
/// counters when a plane is attached).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended (puts + tombstones) since open.
    pub appends: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Committed records replayed by the last open.
    pub recovered_records: u64,
    /// Bytes discarded by recovery (torn tails + dropped segments).
    pub truncated_bytes: u64,
    /// Compaction passes completed.
    pub compactions: u64,
    /// Value reads served from disk.
    pub reads: u64,
    /// Reads that failed re-verification and were degraded to misses.
    pub read_corruptions: u64,
    /// Live segment files.
    pub segments: u64,
    /// Keys currently live in the index.
    pub live_records: u64,
    /// Framed bytes owed to superseded records and tombstones.
    pub dead_bytes: u64,
}

/// Pre-registered telemetry handles (hot path touches only atomics).
struct StoreMetrics {
    appends: Arc<Counter>,
    fsyncs: Arc<Counter>,
    recovered_records: Arc<Counter>,
    truncated_bytes: Arc<Counter>,
    compactions: Arc<Counter>,
    reads: Arc<Counter>,
    read_corruptions: Arc<Counter>,
    segments: Arc<Gauge>,
    live_records: Arc<Gauge>,
    dead_bytes: Arc<Gauge>,
}

impl StoreMetrics {
    fn register(t: &Telemetry) -> StoreMetrics {
        let r = t.registry();
        StoreMetrics {
            appends: r.counter("store.appends"),
            fsyncs: r.counter("store.fsyncs"),
            recovered_records: r.counter("store.recovered_records"),
            truncated_bytes: r.counter("store.truncated_bytes"),
            compactions: r.counter("store.compactions"),
            reads: r.counter("store.reads"),
            read_corruptions: r.counter("store.read_corruptions"),
            segments: r.gauge("store.segments"),
            live_records: r.gauge("store.live_records"),
            dead_bytes: r.gauge("store.dead_bytes"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    segment: u64,
    offset: u64,
    total_len: u32,
}

struct Segment {
    file: File,
    path: PathBuf,
    len: u64,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{id:016x}.seg"))
}

/// One page of a key-ordered export: the `(key, value)` pairs plus a
/// flag that is `true` when the requested range is exhausted.
pub type ExportPage = (Vec<(String, Vec<u8>)>, bool);

/// A crash-safe, log-structured key→bytes store. See the module docs
/// for the on-disk format and recovery rules.
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    index: HashMap<String, IndexEntry>,
    segments: BTreeMap<u64, Segment>,
    active: u64,
    appends_since_sync: u32,
    live_bytes: u64,
    dead_bytes: u64,
    stats: StoreStats,
    metrics: Option<StoreMetrics>,
    telemetry: Option<Arc<Telemetry>>,
    open_wall_ns: u64,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("keys", &self.index.len())
            .field("segments", &self.segments.len())
            .finish()
    }
}

impl Store {
    /// Opens (creating if needed) the store rooted at `dir`, replaying
    /// every committed record and truncating any torn tail.
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<Store, StoreError> {
        let started = Instant::now();
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut ids = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_suffix(".seg") {
                if let Ok(id) = u64::from_str_radix(hex, 16) {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();

        let mut store = Store {
            dir,
            config,
            index: HashMap::new(),
            segments: BTreeMap::new(),
            active: 0,
            appends_since_sync: 0,
            live_bytes: 0,
            dead_bytes: 0,
            stats: StoreStats::default(),
            metrics: None,
            telemetry: None,
            open_wall_ns: 0,
        };
        store.recover(&ids)?;

        // Reopen (or create) the active segment for appends.
        match store.segments.keys().next_back().copied() {
            Some(last) if store.segments[&last].len < store.config.segment_max_bytes => {
                store.active = last;
            }
            Some(last) => {
                store.create_segment(last + 1)?;
            }
            None => {
                store.create_segment(0)?;
            }
        }
        store.refresh_gauges();
        store.open_wall_ns = started.elapsed().as_nanos() as u64;
        Ok(store)
    }

    /// Replays segments `ids` (sorted ascending) into the index,
    /// truncating at the first defect and deleting everything after it.
    fn recover(&mut self, ids: &[u64]) -> Result<(), StoreError> {
        for (pos, &id) in ids.iter().enumerate() {
            let path = segment_path(&self.dir, id);
            let buf = fs::read(&path)?;
            let header_ok = parse_segment_header(&buf) == Some(id);
            if !header_ok {
                dvm_fuzz::cov!("store.recover.bad_header");
                // Nothing in this segment is trustworthy; it and every
                // later segment leave the committed prefix.
                self.stats.truncated_bytes += buf.len() as u64;
                fs::remove_file(&path)?;
                self.drop_trailing_segments(&ids[pos + 1..])?;
                return Ok(());
            }
            let mut offset = SEGMENT_HEADER_LEN;
            let mut torn = false;
            while offset < buf.len() {
                match parse_record(&buf, offset) {
                    Some(rec) => {
                        dvm_fuzz::cov!("store.recover.record");
                        self.stats.recovered_records += 1;
                        let entry = IndexEntry {
                            segment: id,
                            offset: offset as u64,
                            total_len: rec.total_len as u32,
                        };
                        match rec.kind {
                            KIND_PUT => {
                                if let Some(old) = self.index.insert(rec.key, entry) {
                                    self.live_bytes -= old.total_len as u64;
                                    self.dead_bytes += old.total_len as u64;
                                }
                                self.live_bytes += rec.total_len as u64;
                            }
                            _ => {
                                if let Some(old) = self.index.remove(&rec.key) {
                                    self.live_bytes -= old.total_len as u64;
                                    self.dead_bytes += old.total_len as u64;
                                }
                                self.dead_bytes += rec.total_len as u64;
                            }
                        }
                        offset += rec.total_len;
                    }
                    None => {
                        dvm_fuzz::cov!("store.recover.torn");
                        // Torn tail: truncate here, drop later segments.
                        self.stats.truncated_bytes += (buf.len() - offset) as u64;
                        let f = OpenOptions::new().write(true).open(&path)?;
                        f.set_len(offset as u64)?;
                        f.sync_all()?;
                        self.stats.fsyncs += 1;
                        torn = true;
                        break;
                    }
                }
            }
            let final_len = if torn {
                offset as u64
            } else {
                buf.len() as u64
            };
            let file = OpenOptions::new().read(true).append(true).open(&path)?;
            self.segments.insert(
                id,
                Segment {
                    file,
                    path,
                    len: final_len,
                },
            );
            if torn {
                self.drop_trailing_segments(&ids[pos + 1..])?;
                return Ok(());
            }
        }
        Ok(())
    }

    fn drop_trailing_segments(&mut self, ids: &[u64]) -> Result<(), StoreError> {
        for &id in ids {
            let path = segment_path(&self.dir, id);
            if let Ok(meta) = fs::metadata(&path) {
                self.stats.truncated_bytes += meta.len();
            }
            fs::remove_file(&path)?;
        }
        if !ids.is_empty() {
            self.sync_dir()?;
        }
        Ok(())
    }

    fn create_segment(&mut self, id: u64) -> Result<(), StoreError> {
        let path = segment_path(&self.dir, id);
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(&encode_segment_header(id))?;
        self.segments.insert(
            id,
            Segment {
                file,
                path,
                len: SEGMENT_HEADER_LEN as u64,
            },
        );
        self.active = id;
        self.sync_dir()?;
        Ok(())
    }

    fn sync_dir(&mut self) -> Result<(), StoreError> {
        File::open(&self.dir)?.sync_all()?;
        self.stats.fsyncs += 1;
        if let Some(m) = &self.metrics {
            m.fsyncs.inc();
        }
        Ok(())
    }

    /// Attaches a telemetry plane: registers `store.*` counters/gauges,
    /// folds in totals accumulated before attachment, and records the
    /// `store.open` span retroactively.
    pub fn set_telemetry(&mut self, telemetry: &Arc<Telemetry>) {
        let m = StoreMetrics::register(telemetry);
        m.appends.add(self.stats.appends);
        m.fsyncs.add(self.stats.fsyncs);
        m.recovered_records.add(self.stats.recovered_records);
        m.truncated_bytes.add(self.stats.truncated_bytes);
        m.compactions.add(self.stats.compactions);
        m.reads.add(self.stats.reads);
        m.read_corruptions.add(self.stats.read_corruptions);
        self.metrics = Some(m);
        self.telemetry = Some(Arc::clone(telemetry));
        self.refresh_gauges();
        let rec = telemetry.recorder();
        let start = rec.now_ns().saturating_sub(self.open_wall_ns);
        rec.record_span(
            TraceId::generate(),
            SpanId::generate(),
            SpanId::NONE,
            "store.open",
            start,
            self.open_wall_ns,
        );
    }

    fn refresh_gauges(&mut self) {
        self.stats.segments = self.segments.len() as u64;
        self.stats.live_records = self.index.len() as u64;
        self.stats.dead_bytes = self.dead_bytes;
        if let Some(m) = &self.metrics {
            m.segments.set(self.segments.len() as i64);
            m.live_records.set(self.index.len() as i64);
            m.dead_bytes.set(self.dead_bytes as i64);
        }
    }

    /// Appends `key → value`. The previous value (if any) becomes dead
    /// weight until compaction.
    pub fn put(&mut self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        let rec = encode_record(KIND_PUT, key, value);
        let entry = self.append(&rec)?;
        if let Some(old) = self.index.insert(key.to_owned(), entry) {
            self.live_bytes -= old.total_len as u64;
            self.dead_bytes += old.total_len as u64;
        }
        self.live_bytes += rec.len() as u64;
        self.after_append()?;
        Ok(())
    }

    /// Deletes `key`, appending a tombstone so the delete survives
    /// restart. Returns whether the key was present.
    pub fn delete(&mut self, key: &str) -> Result<bool, StoreError> {
        let Some(old) = self.index.remove(key) else {
            return Ok(false);
        };
        let rec = encode_record(KIND_TOMBSTONE, key, b"");
        self.append(&rec)?;
        self.live_bytes -= old.total_len as u64;
        self.dead_bytes += old.total_len as u64 + rec.len() as u64;
        self.after_append()?;
        Ok(true)
    }

    fn append(&mut self, rec: &[u8]) -> Result<IndexEntry, StoreError> {
        let id = self.active;
        let seg = self.segments.get_mut(&id).expect("active segment exists");
        let offset = seg.len;
        seg.file.write_all(rec)?;
        seg.len += rec.len() as u64;
        self.stats.appends += 1;
        if let Some(m) = &self.metrics {
            m.appends.inc();
        }
        match self.config.durability {
            Durability::Always => self.sync_active()?,
            Durability::Batch(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n.max(1) {
                    self.sync_active()?;
                }
            }
            Durability::Never => {}
        }
        Ok(IndexEntry {
            segment: id,
            offset,
            total_len: rec.len() as u32,
        })
    }

    /// Post-append housekeeping: segment roll and auto-compaction.
    fn after_append(&mut self) -> Result<(), StoreError> {
        if self.segments[&self.active].len >= self.config.segment_max_bytes {
            self.sync_active()?;
            self.create_segment(self.active + 1)?;
        }
        let total = self.live_bytes + self.dead_bytes;
        if total >= self.config.compact_min_bytes
            && self.dead_bytes as f64 >= total as f64 * self.config.compact_min_dead_ratio
        {
            self.compact()?;
        }
        self.refresh_gauges();
        Ok(())
    }

    fn sync_active(&mut self) -> Result<(), StoreError> {
        let seg = self.segments.get_mut(&self.active).expect("active segment");
        seg.file.sync_all()?;
        self.appends_since_sync = 0;
        self.stats.fsyncs += 1;
        if let Some(m) = &self.metrics {
            m.fsyncs.inc();
        }
        Ok(())
    }

    /// Forces everything appended so far to the platter.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.sync_active()
    }

    /// Reads the value for `key`, re-verifying the record's CRC and
    /// commit marker. A record that no longer verifies is dropped from
    /// the index and reported as a miss (never served corrupt).
    pub fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(entry) = self.index.get(key).copied() else {
            return Ok(None);
        };
        self.stats.reads += 1;
        if let Some(m) = &self.metrics {
            m.reads.inc();
        }
        match self.read_entry(key, entry)? {
            Some(value) => Ok(Some(value)),
            None => {
                self.stats.read_corruptions += 1;
                if let Some(m) = &self.metrics {
                    m.read_corruptions.inc();
                }
                if let Some(old) = self.index.remove(key) {
                    self.live_bytes -= old.total_len as u64;
                    self.dead_bytes += old.total_len as u64;
                    self.refresh_gauges();
                }
                Ok(None)
            }
        }
    }

    /// Reads and fully re-validates one framed record; `None` when it
    /// no longer parses or the key does not match the index.
    fn read_entry(&mut self, key: &str, entry: IndexEntry) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(seg) = self.segments.get_mut(&entry.segment) else {
            return Ok(None);
        };
        let mut buf = vec![0u8; entry.total_len as usize];
        seg.file.seek(SeekFrom::Start(entry.offset))?;
        if seg.file.read_exact(&mut buf).is_err() {
            return Ok(None);
        }
        match parse_record(&buf, 0) {
            Some(rec) if rec.key == key && rec.total_len == buf.len() => Ok(Some(
                buf[rec.value_start..rec.value_start + rec.value_len].to_vec(),
            )),
            _ => Ok(None),
        }
    }

    /// Whether `key` is live (index only; no disk access).
    pub fn contains(&self, key: &str) -> bool {
        self.index.contains_key(key)
    }

    /// Live key count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// All live keys, sorted (the audit spool replays in this order).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.index.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Up to `max` live `(key, value)` pairs in ascending key order,
    /// strictly after `after` (empty string = from the first key), each
    /// value re-validated like [`Store::get`] — records that no longer
    /// verify are skipped, not served. The second return is `true` when
    /// the range is exhausted. This is the source side of live cache
    /// migration: resumable (the caller passes back the last key it
    /// ingested) and bounded (never pins more than `max` values).
    pub fn export_after(&mut self, after: &str, max: usize) -> Result<ExportPage, StoreError> {
        let keys: Vec<String> = {
            let mut keys: Vec<&String> = self.index.keys().filter(|k| k.as_str() > after).collect();
            keys.sort();
            keys.into_iter().cloned().collect()
        };
        let complete = keys.len() <= max;
        let mut out = Vec::with_capacity(keys.len().min(max));
        for key in keys.into_iter().take(max) {
            if let Some(value) = self.get(&key)? {
                out.push((key, value));
            }
        }
        Ok((out, complete))
    }

    /// Rewrites every live record into fresh segments and deletes the
    /// old files. Crash-safe: new segments are written and synced
    /// before any old file is unlinked, and recovery replays in id
    /// order, so a crash at any point yields either the old view or
    /// the new one — never a mix that loses a key.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let started = Instant::now();
        let reclaimable = self.dead_bytes;
        let mut live: Vec<(String, IndexEntry)> =
            self.index.iter().map(|(k, e)| (k.clone(), *e)).collect();
        live.sort_by(|a, b| a.0.cmp(&b.0));

        let mut values = Vec::with_capacity(live.len());
        for (key, entry) in &live {
            match self.read_entry(key, *entry)? {
                Some(v) => values.push((key.clone(), v)),
                None => {
                    self.stats.read_corruptions += 1;
                    if let Some(m) = &self.metrics {
                        m.read_corruptions.inc();
                    }
                }
            }
        }

        let old_ids: Vec<u64> = self.segments.keys().copied().collect();
        let next = old_ids.last().map_or(0, |last| last + 1);

        self.index.clear();
        self.live_bytes = 0;
        self.dead_bytes = 0;
        self.create_segment(next)?;
        for (key, value) in &values {
            let rec = encode_record(KIND_PUT, key, value);
            if self.segments[&self.active].len + rec.len() as u64 > self.config.segment_max_bytes
                && self.segments[&self.active].len > SEGMENT_HEADER_LEN as u64
            {
                self.sync_active()?;
                self.create_segment(self.active + 1)?;
            }
            let entry = self.append_uncounted(&rec)?;
            self.index.insert(key.clone(), entry);
            self.live_bytes += rec.len() as u64;
        }
        self.sync_active()?;
        for id in old_ids {
            let seg = self.segments.remove(&id).expect("old segment present");
            fs::remove_file(&seg.path)?;
        }
        self.sync_dir()?;
        self.stats.compactions += 1;
        if let Some(m) = &self.metrics {
            m.compactions.inc();
        }
        self.refresh_gauges();
        if let Some(t) = &self.telemetry {
            let rec = t.recorder();
            let dur = started.elapsed().as_nanos() as u64;
            rec.record_span(
                TraceId::generate(),
                SpanId::generate(),
                SpanId::NONE,
                "store.compact",
                rec.now_ns().saturating_sub(dur),
                dur,
            );
            t.record_event(dvm_telemetry::JournalKind::StoreCompaction {
                live: self.index.len() as u64,
                reclaimed: reclaimable,
            });
        }
        Ok(())
    }

    /// Append without the durability bookkeeping (compaction syncs
    /// explicitly at its own barriers).
    fn append_uncounted(&mut self, rec: &[u8]) -> Result<IndexEntry, StoreError> {
        let id = self.active;
        let seg = self.segments.get_mut(&id).expect("active segment exists");
        let offset = seg.len;
        seg.file.write_all(rec)?;
        seg.len += rec.len() as u64;
        Ok(IndexEntry {
            segment: id,
            offset,
            total_len: rec.len() as u32,
        })
    }

    /// Running totals (gauge fields are refreshed before returning).
    pub fn stats(&self) -> StoreStats {
        let mut s = self.stats.clone();
        s.segments = self.segments.len() as u64;
        s.live_records = self.index.len() as u64;
        s.dead_bytes = self.dead_bytes;
        s
    }

    /// The data directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }
}
