//! On-disk framing for segment files: headers, records, commit markers.
//!
//! A segment file is a 20-byte header followed by zero or more records:
//!
//! ```text
//! segment  := header record*
//! header   := magic "DVMSTOR1" (8) | version u32 LE | segment_id u64 LE
//! record   := body_len u32 LE | crc32(body) u32 LE | body | commit 0xC7
//! body     := kind u8 | key_len u32 LE | key (UTF-8) | value
//! kind     := 1 (put) | 2 (tombstone; value empty)
//! ```
//!
//! The commit marker is written *after* the body in the same
//! `write_all`; a record is only considered durable when its length,
//! CRC, body, and trailing `0xC7` all check out. Anything else — a
//! short header, a length that overruns the file, a CRC mismatch, a
//! missing marker — is a torn write, and recovery truncates the file
//! at that record's offset.

/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 8] = *b"DVMSTOR1";

/// On-disk format version.
pub const VERSION: u32 = 1;

/// Bytes of `MAGIC` + version + segment id.
pub const SEGMENT_HEADER_LEN: usize = 20;

/// Bytes of the per-record length + CRC prefix.
pub const RECORD_HEADER_LEN: usize = 8;

/// The commit marker byte sealing every record.
pub const COMMIT: u8 = 0xC7;

/// Record kinds.
pub const KIND_PUT: u8 = 1;
pub const KIND_TOMBSTONE: u8 = 2;

/// Upper bound on a record body; lengths beyond this are treated as
/// corruption rather than honoured with a multi-gigabyte allocation.
pub const MAX_BODY_LEN: u32 = 256 << 20;

/// Encodes a segment header for segment `id`.
pub fn encode_segment_header(id: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&id.to_le_bytes());
    h
}

/// Parses a segment header, returning the segment id, or `None` when
/// the magic/version do not match or the buffer is short.
pub fn parse_segment_header(buf: &[u8]) -> Option<u64> {
    if buf.len() < SEGMENT_HEADER_LEN || buf[..8] != MAGIC {
        dvm_fuzz::cov!("store.header.bad");
        return None;
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if version != VERSION {
        dvm_fuzz::cov!("store.header.bad_version");
        return None;
    }
    dvm_fuzz::cov!("store.header.ok");
    Some(u64::from_le_bytes(buf[12..20].try_into().unwrap()))
}

/// Encodes one complete framed record (header + body + commit marker).
/// `value` must be empty for tombstones.
pub fn encode_record(kind: u8, key: &str, value: &[u8]) -> Vec<u8> {
    debug_assert!(kind == KIND_PUT || kind == KIND_TOMBSTONE);
    let body_len = 1 + 4 + key.len() + value.len();
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + body_len + 1);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]); // CRC placeholder
    out.push(kind);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(value);
    let crc = crate::crc::crc32(&out[RECORD_HEADER_LEN..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out.push(COMMIT);
    out
}

/// A record parsed (and fully validated) out of a segment buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRecord {
    pub kind: u8,
    pub key: String,
    /// Absolute offset of the value bytes within the parsed buffer.
    pub value_start: usize,
    pub value_len: usize,
    /// Total framed length: header + body + commit marker.
    pub total_len: usize,
}

/// Attempts to parse one committed record at `buf[offset..]`. Returns
/// `None` on *any* defect — short header, oversized or overrunning
/// length, CRC mismatch, missing commit marker, malformed body — which
/// recovery treats as the end of the committed prefix.
pub fn parse_record(buf: &[u8], offset: usize) -> Option<ParsedRecord> {
    let rest = buf.get(offset..)?;
    if rest.len() < RECORD_HEADER_LEN {
        dvm_fuzz::cov!("store.record.short_header");
        return None;
    }
    let body_len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    if body_len > MAX_BODY_LEN {
        dvm_fuzz::cov!("store.record.oversized");
        return None;
    }
    let body_len = body_len as usize;
    let total_len = RECORD_HEADER_LEN + body_len + 1;
    if rest.len() < total_len {
        dvm_fuzz::cov!("store.record.overrun");
        return None;
    }
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let body = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + body_len];
    if rest[RECORD_HEADER_LEN + body_len] != COMMIT || crate::crc::crc32(body) != crc {
        dvm_fuzz::cov!("store.record.uncommitted");
        return None;
    }
    // Body: kind | key_len | key | value.
    if body.len() < 5 {
        dvm_fuzz::cov!("store.record.short_body");
        return None;
    }
    let kind = body[0];
    if kind != KIND_PUT && kind != KIND_TOMBSTONE {
        dvm_fuzz::cov!("store.record.bad_kind");
        return None;
    }
    let key_len = u32::from_le_bytes(body[1..5].try_into().unwrap()) as usize;
    if 5 + key_len > body.len() {
        dvm_fuzz::cov!("store.record.key_overrun");
        return None;
    }
    let key = match std::str::from_utf8(&body[5..5 + key_len]) {
        Ok(k) => k,
        Err(_) => {
            dvm_fuzz::cov!("store.record.bad_utf8");
            return None;
        }
    };
    if kind == KIND_TOMBSTONE && body.len() != 5 + key_len {
        dvm_fuzz::cov!("store.record.fat_tombstone");
        return None;
    }
    dvm_fuzz::cov!("store.record.ok");
    Some(ParsedRecord {
        kind,
        key: key.to_owned(),
        value_start: offset + RECORD_HEADER_LEN + 5 + key_len,
        value_len: body_len - 5 - key_len,
        total_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips() {
        let rec = encode_record(KIND_PUT, "class://Mandel", b"payload-bytes");
        let p = parse_record(&rec, 0).unwrap();
        assert_eq!(p.kind, KIND_PUT);
        assert_eq!(p.key, "class://Mandel");
        assert_eq!(
            &rec[p.value_start..p.value_start + p.value_len],
            b"payload-bytes"
        );
        assert_eq!(p.total_len, rec.len());
    }

    #[test]
    fn tombstone_round_trips() {
        let rec = encode_record(KIND_TOMBSTONE, "k", b"");
        let p = parse_record(&rec, 0).unwrap();
        assert_eq!(p.kind, KIND_TOMBSTONE);
        assert_eq!(p.value_len, 0);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let rec = encode_record(KIND_PUT, "key", b"value");
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 0x40;
            let parsed = parse_record(&bad, 0);
            // A flip may still parse if it lands in the length prefix in
            // a way that shortens the record *and* the shorter body still
            // checks out — impossible here because the CRC covers the
            // body and the commit byte must land exactly at the end.
            assert!(parsed.is_none(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let rec = encode_record(KIND_PUT, "key", b"some value");
        for cut in 0..rec.len() {
            assert!(parse_record(&rec[..cut], 0).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn segment_header_round_trips() {
        let h = encode_segment_header(42);
        assert_eq!(parse_segment_header(&h), Some(42));
        let mut bad = h;
        bad[0] ^= 1;
        assert_eq!(parse_segment_header(&bad), None);
    }
}
