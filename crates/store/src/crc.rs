//! CRC32 (IEEE 802.3 polynomial), table-driven, from scratch.
//!
//! Every record body in a segment file carries a CRC32 so recovery can
//! distinguish "the writer stopped mid-record" from "this record made
//! it to the platter". The polynomial is the ubiquitous reflected
//! 0xEDB88320 — the same one zip/gzip/ethernet use — so corpus files
//! can be cross-checked against any external tool.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// CRC32 of `data` (initial value all-ones, final xor all-ones — the
/// standard presentation, matching `zlib`'s `crc32(0, data)`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_the_crc() {
        let a = b"the quick brown fox".to_vec();
        let mut b = a.clone();
        b[7] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
