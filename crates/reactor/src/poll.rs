//! [`Poller`]: a thin safe wrapper over one epoll instance, plus
//! [`Waker`], an eventfd that can pull a blocked [`Poller::wait`] out of
//! its sleep from any thread.
//!
//! Registration is level-triggered: a socket with unread input (or
//! writable space, when write interest is armed) keeps reporting until
//! the condition clears, so a loop iteration may do bounded work per
//! connection and rely on the next `wait` to resume where it stopped.

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

use crate::sys;

/// One readiness event, decoded from the kernel's report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration token (`u64` chosen by the caller at `add`).
    pub token: u64,
    /// Input readable (or a peer hang-up that read will observe as EOF).
    pub readable: bool,
    /// Output writable.
    pub writable: bool,
    /// Error or hang-up condition (`EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP`).
    pub hangup: bool,
}

/// A safe epoll handle. Dropping it closes the epoll fd; registered
/// sockets are unaffected (the kernel drops their registrations).
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
        })
    }

    fn mask(readable: bool, writable: bool) -> u32 {
        let mut events = sys::EPOLLRDHUP;
        if readable {
            events |= sys::EPOLLIN;
        }
        if writable {
            events |= sys::EPOLLOUT;
        }
        events
    }

    /// Registers `fd` with interest flags; `token` comes back verbatim
    /// in every [`Event`] for this registration.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        sys::epoll_add(self.epfd, fd, Self::mask(readable, writable), token)
    }

    /// Replaces the interest flags of an existing registration.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        sys::epoll_mod(self.epfd, fd, Self::mask(readable, writable), token)
    }

    /// Removes a registration (best-effort; the kernel also drops it
    /// when the fd closes).
    pub fn remove(&self, fd: RawFd) {
        let _ = sys::epoll_del(self.epfd, fd);
    }

    /// Blocks until readiness or `timeout` (forever when `None`),
    /// filling `out` with the ready set. `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = sys::epoll_wait_events(self.epfd, &mut raw, timeout_ms)?;
        for ev in &raw[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// Wakes a [`Poller`] blocked in `wait` from another thread. Register
/// the waker's fd with read interest under a reserved token; on that
/// token's event, call [`Waker::drain`].
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: sys::eventfd_new()?,
        })
    }

    /// Makes the waker fd readable (idempotent until drained).
    pub fn wake(&self) {
        sys::eventfd_signal(self.fd);
    }

    /// Consumes pending wakes so the fd stops reporting readable.
    pub fn drain(&self) {
        sys::eventfd_drain(self.fd);
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_interrupts_an_indefinite_wait() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.as_raw_fd(), 7, true, false).unwrap();
        waker.wake();
        let mut events = Vec::new();
        poller.wait(&mut events, None).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        // Drained: a short poll now times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readability_reports_registered_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 99, true, false).unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
    }
}
