//! `dvm-reactor`: a from-scratch nonblocking event loop for the DVM's
//! network trust boundary (C10K and beyond on one loop thread).
//!
//! The thread-per-connection server spends a thread's stack and a
//! scheduler slot per client, and its short read timeouts turn ten
//! thousand mostly-idle connections into a permanent poll storm. This
//! crate replaces that shape with the classic reactor architecture,
//! built directly on raw `epoll`/`eventfd`/`accept4` syscalls ([`sys`])
//! with no external dependencies:
//!
//! - **One loop thread** owns every connection: accepts, reads, frame
//!   segmentation, and writes all happen on it, so connection state
//!   needs no locks.
//! - **Readiness-driven frame state machines**: bytes accumulate in a
//!   per-connection read buffer; the [`Handler`] tells the loop where
//!   frame boundaries fall ([`Handler::frame_boundary`]) and receives
//!   exactly-complete frames ([`Handler::on_frame`]). Hostile chunk
//!   boundaries (one byte at a time, frames split mid-prefix) never
//!   change what the handler sees.
//! - **Write coalescing**: replies append to a per-connection output
//!   buffer and flush in one batched pass; a partial write arms
//!   `EPOLLOUT` and the flush resumes when the socket drains.
//! - **Backpressure, not just shedding**: when a connection's output
//!   buffer crosses `write_buf_limit`, the loop stops polling its
//!   `EPOLLIN` until the peer drains half the backlog — a slow reader
//!   throttles itself instead of ballooning server memory.
//! - **Bounded worker pool + wake queue**: request *execution* (the
//!   rewrite pipeline, store I/O) must not block the loop, so handlers
//!   defer it ([`Io::defer`]) to a fixed pool; completed [`JobOutput`]s
//!   queue back and an `eventfd` wakes the loop to deliver them —
//!   ownership of the connection never leaves the loop thread.
//! - **Idle reaping**: with an `idle_deadline` configured, connections
//!   with no read/write progress (slowloris: one byte then silence) are
//!   closed by a periodic sweep — they hold a slot entry and a buffer,
//!   never a thread.
//!
//! Connection identity is a generation-tagged token
//! (`generation << 32 | slot`), so a stale completion or readiness
//! event for a recycled slot is recognized and dropped.

pub mod poll;
pub mod sys;

pub use poll::{Event, Poller, Waker};

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token reserved for the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token reserved for the completion-queue waker.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Loop tuning knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Connections served concurrently. Arrivals beyond the limit are
    /// still accepted (so they can be told why), flagged `overloaded`
    /// in [`Handler::on_open`], and expected to be closed by the
    /// handler after one reply.
    pub max_connections: usize,
    /// Worker threads executing deferred jobs; `0` picks
    /// `max(2, available_parallelism)`.
    pub workers: usize,
    /// Unprocessed input a connection may buffer *while a deferred job
    /// is in flight* before the loop stops reading from it. (A single
    /// frame may exceed this: the protocol's own frame-length bound is
    /// the cap in that case.)
    pub read_buf_limit: usize,
    /// Buffered output bytes beyond which the connection is
    /// backpressured: `EPOLLIN` is dropped until the peer drains the
    /// backlog below half this limit.
    pub write_buf_limit: usize,
    /// Reap connections with no read/write progress for this long.
    /// `None` disables reaping (long-idle audit channels stay up).
    pub idle_deadline: Option<Duration>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 64,
            workers: 0,
            read_buf_limit: 64 << 10,
            write_buf_limit: 256 << 10,
            idle_deadline: None,
        }
    }
}

/// Where the next frame boundary falls in a connection's buffered
/// input, as judged by [`Handler::frame_boundary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Boundary {
    /// No complete frame yet; keep reading.
    NeedMore,
    /// The first `n` buffered bytes form one complete frame.
    Frame(usize),
    /// The buffered prefix can never become a legal frame (bad length,
    /// garbage framing). The connection is drained and closed after
    /// [`Handler::on_violation`] gets a chance to reply.
    Violation(String),
}

/// Why a connection left the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed (EOF) or reset.
    PeerClosed,
    /// The handler asked ([`Io::close`]/[`Io::close_after_flush`] or a
    /// closing [`JobOutput`]).
    HandlerClosed,
    /// [`Boundary::Violation`] — unparseable input.
    Violation,
    /// No progress within the configured `idle_deadline`.
    IdleExpired,
    /// A read or write failed.
    IoError,
    /// The reactor shut down.
    Shutdown,
}

/// What a deferred job hands back to the loop for its connection.
#[derive(Debug, Default)]
pub struct JobOutput {
    /// Bytes to queue on the connection's output buffer.
    pub bytes: Vec<u8>,
    /// Flush everything queued, then close.
    pub close: bool,
    /// Close immediately, discarding any unflushed output (after
    /// `bytes`, which are still queued first — leave it empty for a
    /// true abrupt drop).
    pub kill: bool,
}

impl JobOutput {
    /// Queue `bytes` and keep serving.
    pub fn reply(bytes: Vec<u8>) -> JobOutput {
        JobOutput {
            bytes,
            close: false,
            kill: false,
        }
    }

    /// Queue `bytes`, flush, then close.
    pub fn reply_then_close(bytes: Vec<u8>) -> JobOutput {
        JobOutput {
            bytes,
            close: true,
            kill: false,
        }
    }

    /// Abruptly drop the connection without replying.
    pub fn kill() -> JobOutput {
        JobOutput {
            bytes: Vec::new(),
            close: false,
            kill: true,
        }
    }
}

type Job = Box<dyn FnOnce() -> JobOutput + Send + 'static>;

/// The loop's API surface handed to [`Handler::on_frame`]: queue
/// output, defer blocking work, request closes. All effects apply when
/// the callback returns — nothing blocks.
pub struct Io<'a> {
    out: &'a mut OutState,
    jobs: &'a mut Vec<(u64, Job)>,
    token: u64,
}

impl Io<'_> {
    /// This connection's identity token.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Queues bytes on the connection's output buffer (coalesced with
    /// everything else queued this iteration; flushed in one pass).
    pub fn send(&mut self, bytes: &[u8]) {
        self.out.wbuf.extend_from_slice(bytes);
    }

    /// Hands blocking work to the worker pool. The connection stops
    /// consuming frames until the job's [`JobOutput`] is delivered back
    /// by the wake queue — at most one deferred job per connection at a
    /// time, which is also what keeps responses in request order.
    pub fn defer(&mut self, job: impl FnOnce() -> JobOutput + Send + 'static) {
        debug_assert!(
            !self.out.inflight,
            "one deferred job per connection at a time"
        );
        self.out.inflight = true;
        self.jobs.push((self.token, Box::new(job)));
    }

    /// Flush everything queued, then close.
    pub fn close_after_flush(&mut self) {
        self.out.draining = true;
    }

    /// Close immediately, discarding unflushed output.
    pub fn close(&mut self) {
        self.out.kill = true;
    }
}

/// The protocol living on top of the loop. One handler serves every
/// connection; per-connection protocol state lives in `Handler::Conn`.
///
/// All callbacks run on the loop thread except none — deferred jobs run
/// on the pool but are plain closures, not handler methods.
pub trait Handler: Send + Sync + 'static {
    /// Per-connection protocol state, owned by the loop.
    type Conn: Send + 'static;

    /// A connection arrived. `overloaded` is set when the serving limit
    /// was already reached — the handler should answer its first frame
    /// with a rejection and close.
    fn on_open(&self, token: u64, overloaded: bool) -> Self::Conn;

    /// Judges where the first frame boundary falls in `buf` (never
    /// empty). Must be pure w.r.t. the bytes: the same prefix always
    /// gets the same answer regardless of how reads were chunked.
    fn frame_boundary(&self, buf: &[u8]) -> Boundary;

    /// Raw bytes arrived off a socket (for byte-level accounting).
    fn on_data(&self, n: usize) {
        let _ = n;
    }

    /// One complete frame, exactly as delimited by `frame_boundary`.
    fn on_frame(&self, io: &mut Io<'_>, conn: &mut Self::Conn, frame: &[u8]);

    /// The connection's input can never parse ([`Boundary::Violation`]).
    /// May queue a final reply; the connection drains and closes after.
    fn on_violation(&self, io: &mut Io<'_>, conn: &mut Self::Conn, detail: &str) {
        let _ = (io, conn, detail);
    }

    /// The connection left the loop (its state is handed back).
    fn on_close(&self, token: u64, conn: Self::Conn, reason: CloseReason) {
        let _ = (token, conn, reason);
    }
}

/// Loop-level instrumentation hooks; all default to no-ops.
pub trait ReactorObserver: Send + Sync + 'static {
    /// One `epoll_wait` returned, reporting `events` ready fds.
    fn loop_iteration(&self, events: usize) {
        let _ = events;
    }
    /// A connection opened (`+1`) or closed (`-1`).
    fn conn_delta(&self, delta: i64) {
        let _ = delta;
    }
    /// A connection crossed its write-buffer limit and stopped being
    /// polled for input.
    fn backpressure_stall(&self) {}
    /// Latency from a worker finishing a job to the loop picking its
    /// completion up.
    fn wakeup_ns(&self, ns: u64) {
        let _ = ns;
    }
}

/// The do-nothing observer.
pub struct NullObserver;

impl ReactorObserver for NullObserver {}

#[derive(Default)]
struct OutState {
    wbuf: Vec<u8>,
    wpos: usize,
    inflight: bool,
    draining: bool,
    kill: bool,
}

impl OutState {
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

struct Conn<C> {
    stream: TcpStream,
    fd: RawFd,
    token: u64,
    user: C,
    rbuf: Vec<u8>,
    rpos: usize,
    out: OutState,
    /// Read interest dropped because of write backpressure.
    paused: bool,
    want_read: bool,
    want_write: bool,
    last_activity: Instant,
    overloaded: bool,
    close_reason: Option<CloseReason>,
}

struct Completion {
    token: u64,
    out: JobOutput,
    finished: Instant,
}

struct Completions {
    queue: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
}

struct PoolShared {
    /// `(job queue, open)` — `open: false` tells workers to exit.
    queue: Mutex<(VecDeque<(u64, Job)>, bool)>,
    cv: Condvar,
}

fn worker_main(pool: Arc<PoolShared>, completions: Arc<Completions>) {
    loop {
        let next = {
            let mut guard = pool.queue.lock().unwrap();
            loop {
                if let Some(job) = guard.0.pop_front() {
                    break Some(job);
                }
                if !guard.1 {
                    break None;
                }
                guard = pool.cv.wait(guard).unwrap();
            }
        };
        let Some((token, job)) = next else { return };
        // A panicking job must not take the worker (and its connection's
        // liveness) down with it: the connection is dropped instead.
        let out = catch_unwind(AssertUnwindSafe(job)).unwrap_or_else(|_| JobOutput::kill());
        completions.queue.lock().unwrap().push(Completion {
            token,
            out,
            finished: Instant::now(),
        });
        completions.waker.wake();
    }
}

struct LoopState<H: Handler> {
    poller: Poller,
    listener: TcpListener,
    handler: Arc<H>,
    config: ReactorConfig,
    observer: Arc<dyn ReactorObserver>,
    running: Arc<AtomicBool>,
    conns: Vec<Option<Conn<H::Conn>>>,
    free: Vec<usize>,
    gens: Vec<u32>,
    /// Connections holding a serving slot (excludes overloaded ones).
    serving: usize,
    open_conns: usize,
    pending_jobs: Vec<(u64, Job)>,
    pool: Arc<PoolShared>,
    completions: Arc<Completions>,
    scratch: Vec<u8>,
    last_sweep: Instant,
}

enum ReadStep {
    Progress,
    Stop,
    Closed,
}

impl<H: Handler> LoopState<H> {
    fn run(mut self, workers: Vec<JoinHandle<()>>) {
        let mut events: Vec<Event> = Vec::new();
        while self.running.load(Ordering::SeqCst) {
            let timeout = self.wait_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                continue;
            }
            self.observer.loop_iteration(events.len());
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKER => self.completions.waker.drain(),
                    token => self.on_ready(token, *ev),
                }
            }
            events = batch;
            self.drain_completions();
            self.sweep_idle();
        }
        self.teardown(workers);
    }

    fn wait_timeout(&self) -> Option<Duration> {
        match self.config.idle_deadline {
            // Sweep granularity: a quarter deadline keeps reap latency
            // under ~1.25x the configured deadline.
            Some(d) if self.open_conns > 0 => {
                Some((d / 4).clamp(Duration::from_millis(5), Duration::from_millis(250)))
            }
            _ => Some(Duration::from_millis(500)),
        }
    }

    fn resolve(&self, token: u64) -> Option<usize> {
        let idx = (token & u64::from(u32::MAX)) as usize;
        match self.conns.get(idx) {
            Some(Some(c)) if c.token == token => Some(idx),
            _ => None,
        }
    }

    fn slot_cap(&self) -> usize {
        // Headroom above the serving limit so over-limit arrivals can be
        // *told* they are shed (typed rejection) instead of vanishing.
        self.config.max_connections + (self.config.max_connections / 4).max(64)
    }

    fn accept_burst(&mut self) {
        loop {
            match sys::accept_nonblocking(self.listener.as_raw_fd()) {
                sys::Accepted::Conn(fd) => {
                    let stream = unsafe { TcpStream::from_raw_fd(fd) };
                    if self.open_conns >= self.slot_cap() {
                        // Hard shed beyond even the rejection margin.
                        drop(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = match self.free.pop() {
                        Some(i) => i,
                        None => {
                            self.conns.push(None);
                            self.gens.push(0);
                            self.conns.len() - 1
                        }
                    };
                    let token = (u64::from(self.gens[idx]) << 32) | idx as u64;
                    if self.poller.add(fd, token, true, false).is_err() {
                        self.free.push(idx);
                        continue;
                    }
                    let overloaded = self.serving >= self.config.max_connections;
                    if !overloaded {
                        self.serving += 1;
                    }
                    self.open_conns += 1;
                    let user = self.handler.on_open(token, overloaded);
                    self.conns[idx] = Some(Conn {
                        stream,
                        fd,
                        token,
                        user,
                        rbuf: Vec::new(),
                        rpos: 0,
                        out: OutState::default(),
                        paused: false,
                        want_read: true,
                        want_write: false,
                        last_activity: Instant::now(),
                        overloaded,
                        close_reason: None,
                    });
                    self.observer.conn_delta(1);
                }
                sys::Accepted::Empty => break,
                sys::Accepted::Retry => continue,
                sys::Accepted::FdExhausted => {
                    // Back off briefly instead of spinning on a full fd
                    // table (level-triggered epoll re-reports arrivals).
                    std::thread::sleep(Duration::from_millis(5));
                    break;
                }
                sys::Accepted::Err(_) => break,
            }
        }
    }

    fn on_ready(&mut self, token: u64, ev: Event) {
        let Some(idx) = self.resolve(token) else {
            return;
        };
        if ev.writable {
            self.flush_writes(idx);
        }
        if (ev.readable || ev.hangup) && !self.read_some(idx) {
            return; // connection closed during read
        }
        // Run the frame machine even on a pure-writable event: a drain
        // may have dropped output pressure below the limit, unblocking
        // frames that were already buffered (no further EPOLLIN will
        // announce those).
        self.pump(idx);
    }

    /// Alternates the frame machine with flushes until no further
    /// progress: a flush that drains the backlog below the write limit
    /// re-admits buffered frames the amplification guard deferred, so a
    /// pipelined burst can't strand unprocessed input that no future
    /// readiness event would announce.
    fn pump(&mut self, idx: usize) {
        loop {
            let Some(before) = self.conns[idx].as_ref().map(|c| c.rbuf.len() - c.rpos) else {
                return;
            };
            if before == 0 {
                break;
            }
            self.process_frames(idx);
            self.submit_jobs();
            self.flush_writes(idx);
            let Some(after) = self.conns[idx].as_ref().map(|c| c.rbuf.len() - c.rpos) else {
                return;
            };
            if after == before {
                break;
            }
        }
        self.after_io(idx);
    }

    fn submit_jobs(&mut self) {
        if !self.pending_jobs.is_empty() {
            let mut guard = self.pool.queue.lock().unwrap();
            guard.0.extend(self.pending_jobs.drain(..));
            drop(guard);
            self.pool.cv.notify_all();
        }
    }

    /// Pulls socket bytes into the connection's read buffer, bounded per
    /// event for fairness (level-triggered epoll re-reports leftovers).
    /// Returns false when the connection closed.
    fn read_some(&mut self, idx: usize) -> bool {
        for _ in 0..8 {
            let step = {
                let (conns, scratch) = (&mut self.conns, &mut self.scratch);
                let Some(conn) = conns[idx].as_mut() else {
                    return false;
                };
                if conn.paused
                    || conn.out.draining
                    || conn.out.kill
                    || (conn.out.inflight
                        && conn.rbuf.len() - conn.rpos >= self.config.read_buf_limit)
                {
                    ReadStep::Stop
                } else {
                    match conn.stream.read(&mut scratch[..]) {
                        Ok(0) => ReadStep::Closed,
                        Ok(n) => {
                            conn.rbuf.extend_from_slice(&scratch[..n]);
                            conn.last_activity = Instant::now();
                            self.handler.on_data(n);
                            ReadStep::Progress
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => ReadStep::Stop,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => ReadStep::Progress,
                        Err(_) => ReadStep::Closed,
                    }
                }
            };
            match step {
                ReadStep::Progress => continue,
                ReadStep::Stop => return true,
                ReadStep::Closed => {
                    self.close_conn(idx, CloseReason::PeerClosed);
                    return false;
                }
            }
        }
        true
    }

    /// Consumes every complete frame in the read buffer, stopping at a
    /// partial frame, a deferred job, or a close request.
    fn process_frames(&mut self, idx: usize) {
        loop {
            let LoopState {
                conns,
                pending_jobs,
                handler,
                config,
                ..
            } = self;
            let Some(conn) = conns[idx].as_mut() else {
                return;
            };
            if conn.out.inflight || conn.out.draining || conn.out.kill {
                break;
            }
            // Write-amplification guard: stop turning buffered requests
            // into replies once the output backlog crosses the limit —
            // otherwise a pipelined burst of small requests with large
            // inline replies balloons `wbuf` unboundedly in one pass.
            // The writable path re-enters this machine as the peer
            // drains.
            if conn.out.pending() >= config.write_buf_limit {
                break;
            }
            if conn.rpos >= conn.rbuf.len() {
                break;
            }
            match handler.frame_boundary(&conn.rbuf[conn.rpos..]) {
                Boundary::NeedMore => break,
                Boundary::Frame(n) => {
                    let avail = conn.rbuf.len() - conn.rpos;
                    if n == 0 || n > avail {
                        debug_assert!(false, "frame_boundary broke its contract");
                        break;
                    }
                    let Conn {
                        rbuf,
                        rpos,
                        user,
                        out,
                        token,
                        last_activity,
                        ..
                    } = conn;
                    let frame = &rbuf[*rpos..*rpos + n];
                    let mut io = Io {
                        out,
                        jobs: pending_jobs,
                        token: *token,
                    };
                    handler.on_frame(&mut io, user, frame);
                    *rpos += n;
                    *last_activity = Instant::now();
                }
                Boundary::Violation(detail) => {
                    let Conn {
                        user,
                        out,
                        token,
                        close_reason,
                        ..
                    } = conn;
                    let mut io = Io {
                        out,
                        jobs: pending_jobs,
                        token: *token,
                    };
                    handler.on_violation(&mut io, user, &detail);
                    out.draining = true;
                    close_reason.get_or_insert(CloseReason::Violation);
                    break;
                }
            }
        }
        // Compact once per pass (amortizes the memmove over every frame
        // consumed this round).
        if let Some(conn) = self.conns[idx].as_mut() {
            if conn.rpos > 0 {
                conn.rbuf.drain(..conn.rpos);
                conn.rpos = 0;
            }
        }
    }

    /// Submits deferred jobs, flushes coalesced output, and settles the
    /// connection's fate/interest set.
    fn after_io(&mut self, idx: usize) {
        self.submit_jobs();
        self.flush_writes(idx);
        self.finalize(idx);
    }

    fn flush_writes(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if conn.out.pending() == 0 {
                if !conn.out.wbuf.is_empty() {
                    conn.out.wbuf.clear();
                    conn.out.wpos = 0;
                }
                return;
            }
            match conn.stream.write(&conn.out.wbuf[conn.out.wpos..]) {
                Ok(0) => {
                    conn.out.kill = true;
                    conn.close_reason.get_or_insert(CloseReason::IoError);
                    return;
                }
                Ok(n) => {
                    conn.out.wpos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.out.kill = true;
                    conn.close_reason.get_or_insert(CloseReason::IoError);
                    return;
                }
            }
        }
    }

    fn finalize(&mut self, idx: usize) {
        let (kill, drained) = {
            let Some(conn) = self.conns[idx].as_ref() else {
                return;
            };
            (
                conn.out.kill,
                conn.out.draining && conn.out.pending() == 0 && !conn.out.inflight,
            )
        };
        if kill || drained {
            self.close_conn(idx, CloseReason::HandlerClosed);
            return;
        }
        let LoopState {
            conns,
            poller,
            observer,
            config,
            ..
        } = self;
        let Some(conn) = conns[idx].as_mut() else {
            return;
        };
        let pending = conn.out.pending();
        if !conn.paused && pending >= config.write_buf_limit {
            conn.paused = true;
            observer.backpressure_stall();
        } else if conn.paused && pending <= config.write_buf_limit / 2 {
            conn.paused = false;
        }
        let rbuf_backlog =
            conn.out.inflight && (conn.rbuf.len() - conn.rpos) >= config.read_buf_limit;
        let want_read = !conn.paused && !conn.out.draining && !rbuf_backlog;
        let want_write = pending > 0;
        if (want_read != conn.want_read || want_write != conn.want_write)
            && poller
                .modify(conn.fd, conn.token, want_read, want_write)
                .is_ok()
        {
            conn.want_read = want_read;
            conn.want_write = want_write;
        }
    }

    fn drain_completions(&mut self) {
        let completed: Vec<Completion> = {
            let mut guard = self.completions.queue.lock().unwrap();
            if guard.is_empty() {
                return;
            }
            std::mem::take(&mut *guard)
        };
        let now = Instant::now();
        for c in completed {
            self.observer
                .wakeup_ns(now.saturating_duration_since(c.finished).as_nanos() as u64);
            let Some(idx) = self.resolve(c.token) else {
                continue; // connection died while its job ran
            };
            {
                let conn = self.conns[idx].as_mut().unwrap();
                conn.out.inflight = false;
                if !c.out.bytes.is_empty() {
                    conn.out.wbuf.extend_from_slice(&c.out.bytes);
                }
                if c.out.close {
                    conn.out.draining = true;
                }
                if c.out.kill {
                    conn.out.kill = true;
                }
                conn.last_activity = now;
            }
            // Pipelined frames that queued behind the job are unblocked.
            self.pump(idx);
        }
    }

    fn sweep_idle(&mut self) {
        let Some(deadline) = self.config.idle_deadline else {
            return;
        };
        let now = Instant::now();
        if now.saturating_duration_since(self.last_sweep) < deadline / 4 {
            return;
        }
        self.last_sweep = now;
        for idx in 0..self.conns.len() {
            let expired = match &self.conns[idx] {
                // A connection whose job is still executing is working,
                // not idle, however long the job takes.
                Some(c) => {
                    !c.out.inflight && now.saturating_duration_since(c.last_activity) >= deadline
                }
                None => false,
            };
            if expired {
                self.close_conn(idx, CloseReason::IdleExpired);
            }
        }
    }

    fn close_conn(&mut self, idx: usize, fallback: CloseReason) {
        let Some(conn) = self.conns[idx].take() else {
            return;
        };
        self.poller.remove(conn.fd);
        if !conn.overloaded {
            self.serving -= 1;
        }
        self.open_conns -= 1;
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.observer.conn_delta(-1);
        let reason = conn.close_reason.unwrap_or(fallback);
        self.handler.on_close(conn.token, conn.user, reason);
        // `conn.stream` drops here, closing the fd; the kernel delivers
        // whatever it already buffered, then FIN.
    }

    fn teardown(mut self, workers: Vec<JoinHandle<()>>) {
        for idx in 0..self.conns.len() {
            self.close_conn(idx, CloseReason::Shutdown);
        }
        {
            let mut guard = self.pool.queue.lock().unwrap();
            guard.1 = false;
            guard.0.clear();
        }
        self.pool.cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
    }
}

/// A running reactor: the loop thread plus its worker pool. Dropping
/// (or [`Reactor::shutdown`]) stops the loop, closes every connection
/// with [`CloseReason::Shutdown`], and joins all threads.
pub struct Reactor {
    running: Arc<AtomicBool>,
    waker: Arc<Waker>,
    thread: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor").field("addr", &self.addr).finish()
    }
}

impl Reactor {
    /// Takes ownership of a bound listener and starts serving `handler`
    /// on a dedicated loop thread.
    pub fn start<H: Handler>(
        listener: TcpListener,
        handler: Arc<H>,
        config: ReactorConfig,
        observer: Arc<dyn ReactorObserver>,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        // std binds with a 128-deep accept queue; a connect flood deeper
        // than that costs each overflowing peer a SYN retransmit. Ask
        // for the connection limit (the kernel clamps to somaxconn).
        let _ = sys::deepen_backlog(
            listener.as_raw_fd(),
            config.max_connections.clamp(128, 65_535) as i32,
        );
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new()?);
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        poller.add(waker.as_raw_fd(), TOKEN_WAKER, true, false)?;
        let completions = Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            waker: waker.clone(),
        });
        let pool = Arc::new(PoolShared {
            queue: Mutex::new((VecDeque::new(), true)),
            cv: Condvar::new(),
        });
        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2)
        } else {
            config.workers
        };
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let p = pool.clone();
            let c = completions.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dvm-reactor-worker-{i}"))
                    .spawn(move || worker_main(p, c))?,
            );
        }
        let running = Arc::new(AtomicBool::new(true));
        let state = LoopState {
            poller,
            listener,
            handler,
            config,
            observer,
            running: running.clone(),
            conns: Vec::new(),
            free: Vec::new(),
            gens: Vec::new(),
            serving: 0,
            open_conns: 0,
            pending_jobs: Vec::new(),
            pool,
            completions,
            scratch: vec![0u8; 16 << 10],
            last_sweep: Instant::now(),
        };
        let thread = std::thread::Builder::new()
            .name("dvm-reactor".into())
            .spawn(move || state.run(workers))?;
        Ok(Reactor {
            running,
            waker,
            thread: Some(thread),
            addr,
        })
    }

    /// The listener's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the loop, closes every connection, joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if !self.running.swap(false, Ordering::SeqCst) {
            return;
        }
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Test protocol: `[len: u8][payload; len]`. Payloads starting with
    /// `b'D'` are echoed reversed via the worker pool; anything else is
    /// echoed inline from the loop thread. A zero length is a framing
    /// violation.
    struct Echo {
        closes: Mutex<Vec<(u64, CloseReason)>>,
        opens: Mutex<Vec<(u64, bool)>>,
    }

    impl Echo {
        fn new() -> Arc<Echo> {
            Arc::new(Echo {
                closes: Mutex::new(Vec::new()),
                opens: Mutex::new(Vec::new()),
            })
        }
    }

    struct EchoConn {
        overloaded: bool,
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut f = vec![payload.len() as u8];
        f.extend_from_slice(payload);
        f
    }

    impl Handler for Echo {
        type Conn = EchoConn;

        fn on_open(&self, token: u64, overloaded: bool) -> EchoConn {
            self.opens.lock().unwrap().push((token, overloaded));
            EchoConn { overloaded }
        }

        fn frame_boundary(&self, buf: &[u8]) -> Boundary {
            let len = buf[0] as usize;
            if len == 0 {
                return Boundary::Violation("zero-length frame".into());
            }
            if buf.len() < 1 + len {
                Boundary::NeedMore
            } else {
                Boundary::Frame(1 + len)
            }
        }

        fn on_frame(&self, io: &mut Io<'_>, conn: &mut EchoConn, f: &[u8]) {
            if conn.overloaded {
                io.send(&frame(b"BUSY"));
                io.close_after_flush();
                return;
            }
            let payload = f[1..].to_vec();
            if payload[0] == b'D' {
                io.defer(move || {
                    let mut rev = payload.clone();
                    rev.reverse();
                    JobOutput::reply(frame(&rev))
                });
            } else if payload[0] == b'M' {
                // Burst: many frames queued inline to trip backpressure.
                for _ in 0..4000 {
                    io.send(&frame(&[b'x'; 100]));
                }
            } else {
                io.send(&frame(&payload));
            }
        }

        fn on_violation(&self, io: &mut Io<'_>, _conn: &mut EchoConn, _detail: &str) {
            io.send(&frame(b"BAD"));
        }

        fn on_close(&self, token: u64, _conn: EchoConn, reason: CloseReason) {
            self.closes.lock().unwrap().push((token, reason));
        }
    }

    #[derive(Default)]
    struct CountingObserver {
        iterations: AtomicU64,
        stalls: AtomicU64,
        conns: Mutex<i64>,
        wakeups: AtomicU64,
    }

    impl ReactorObserver for CountingObserver {
        fn loop_iteration(&self, _events: usize) {
            self.iterations.fetch_add(1, Ordering::Relaxed);
        }
        fn conn_delta(&self, delta: i64) {
            *self.conns.lock().unwrap() += delta;
        }
        fn backpressure_stall(&self) {
            self.stalls.fetch_add(1, Ordering::Relaxed);
        }
        fn wakeup_ns(&self, _ns: u64) {
            self.wakeups.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn start_echo(config: ReactorConfig) -> (Reactor, Arc<Echo>, Arc<CountingObserver>) {
        let handler = Echo::new();
        let observer = Arc::new(CountingObserver::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let reactor = Reactor::start(listener, handler.clone(), config, observer.clone()).unwrap();
        (reactor, handler, observer)
    }

    fn read_frame(stream: &mut impl Read) -> Option<Vec<u8>> {
        let mut len = [0u8; 1];
        if stream.read_exact(&mut len).is_err() {
            return None;
        }
        let mut payload = vec![0u8; len[0] as usize];
        stream.read_exact(&mut payload).ok()?;
        Some(payload)
    }

    #[test]
    fn inline_echo_survives_hostile_chunking() {
        let (reactor, _, _) = start_echo(ReactorConfig::default());
        let mut c = TcpStream::connect(reactor.addr()).unwrap();
        // Two frames, delivered one byte at a time.
        let wire = [frame(b"hello"), frame(b"world")].concat();
        for b in wire {
            c.write_all(&[b]).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(read_frame(&mut c).unwrap(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap(), b"world");
        reactor.shutdown();
    }

    #[test]
    fn deferred_jobs_complete_back_onto_the_loop_in_order() {
        let (reactor, _, observer) = start_echo(ReactorConfig::default());
        let mut c = TcpStream::connect(reactor.addr()).unwrap();
        // Pipeline: deferred, inline, deferred — replies must come back
        // in request order because the connection stalls frame
        // consumption while a job is in flight.
        let wire = [frame(b"Dabc"), frame(b"mid"), frame(b"Dxyz")].concat();
        c.write_all(&wire).unwrap();
        assert_eq!(read_frame(&mut c).unwrap(), b"cbaD");
        assert_eq!(read_frame(&mut c).unwrap(), b"mid");
        assert_eq!(read_frame(&mut c).unwrap(), b"zyxD");
        assert!(observer.wakeups.load(Ordering::Relaxed) >= 2);
        reactor.shutdown();
    }

    #[test]
    fn violation_gets_a_reply_then_close() {
        let (reactor, handler, _) = start_echo(ReactorConfig::default());
        let mut c = TcpStream::connect(reactor.addr()).unwrap();
        c.write_all(&[0u8]).unwrap(); // zero-length frame: violation
        assert_eq!(read_frame(&mut c).unwrap(), b"BAD");
        assert!(read_frame(&mut c).is_none()); // EOF after drain
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let closes = handler.closes.lock().unwrap();
            if !closes.is_empty() {
                assert_eq!(closes[0].1, CloseReason::Violation);
                break;
            }
            drop(closes);
            assert!(Instant::now() < deadline, "close not recorded");
            std::thread::sleep(Duration::from_millis(5));
        }
        reactor.shutdown();
    }

    #[test]
    fn overloaded_connections_are_flagged_and_rejected() {
        let (reactor, handler, _) = start_echo(ReactorConfig {
            max_connections: 1,
            ..ReactorConfig::default()
        });
        let mut first = TcpStream::connect(reactor.addr()).unwrap();
        first.write_all(&frame(b"one")).unwrap();
        assert_eq!(read_frame(&mut first).unwrap(), b"one");
        let mut second = TcpStream::connect(reactor.addr()).unwrap();
        second.write_all(&frame(b"two")).unwrap();
        assert_eq!(read_frame(&mut second).unwrap(), b"BUSY");
        assert!(read_frame(&mut second).is_none());
        // The first connection still works after the rejection.
        first.write_all(&frame(b"again")).unwrap();
        assert_eq!(read_frame(&mut first).unwrap(), b"again");
        let opens = handler.opens.lock().unwrap().clone();
        assert_eq!(opens.iter().filter(|(_, o)| *o).count(), 1);
        reactor.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_by_deadline() {
        let (reactor, handler, observer) = start_echo(ReactorConfig {
            idle_deadline: Some(Duration::from_millis(100)),
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(reactor.addr()).unwrap();
        // One byte of a frame, then silence: the classic slowloris.
        c.write_all(&[5u8]).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(c.read(&mut buf).unwrap(), 0, "expected reaping EOF");
        let closes = handler.closes.lock().unwrap().clone();
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].1, CloseReason::IdleExpired);
        assert_eq!(*observer.conns.lock().unwrap(), 0);
        reactor.shutdown();
    }

    #[test]
    fn backpressure_pauses_reads_and_resumes_after_drain() {
        let (reactor, _, observer) = start_echo(ReactorConfig {
            write_buf_limit: 1024,
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(reactor.addr()).unwrap();
        // Ask for 50 bursts of 400KB (20MB total) without reading any of
        // it: far beyond what the kernel's loopback buffers can absorb,
        // so the server's write buffer must cross the 1KB limit and
        // stall the connection's read interest.
        const BURSTS: usize = 50;
        for _ in 0..BURSTS {
            c.write_all(&frame(b"M")).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while observer.stalls.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "no backpressure stall observed");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut reader = std::io::BufReader::with_capacity(1 << 20, c.try_clone().unwrap());
        let mut got = 0usize;
        while got < BURSTS * 4000 {
            let f = read_frame(&mut reader).expect("burst frame");
            assert_eq!(f.len(), 100);
            got += 1;
        }
        // Reads resumed after the drain: a fresh echo still answers.
        c.write_all(&frame(b"after")).unwrap();
        assert_eq!(read_frame(&mut reader).unwrap(), b"after");
        reactor.shutdown();
    }

    #[test]
    fn shutdown_closes_live_connections_and_joins() {
        let (reactor, handler, _) = start_echo(ReactorConfig::default());
        let mut c = TcpStream::connect(reactor.addr()).unwrap();
        c.write_all(&frame(b"up")).unwrap();
        assert_eq!(read_frame(&mut c).unwrap(), b"up");
        reactor.shutdown();
        let closes = handler.closes.lock().unwrap().clone();
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].1, CloseReason::Shutdown);
        assert!(read_frame(&mut c).is_none());
    }
}
