//! Raw Linux syscall surface: the handful of libc entry points the
//! reactor needs, declared directly (std already links libc, so an
//! `extern "C"` block is all it takes — the same discipline as the
//! vendored `shims/`: wrap exactly the external surface we use, nothing
//! more). Everything above this module speaks `std::io::Result`.

use std::io;
use std::os::unix::io::RawFd;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const SOCK_NONBLOCK: i32 = 0o4000;
const SOCK_CLOEXEC: i32 = 0o2000000;

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;
const ENFILE: i32 = 23;
const EMFILE: i32 = 24;
const ECONNABORTED: i32 = 103;

const RLIMIT_NOFILE: i32 = 7;

/// Mirror of the kernel's `struct epoll_event`. The x86-64 kernel ABI
/// packs it to 12 bytes (no padding between `events` and `data`);
/// other 64-bit targets use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn accept4(fd: i32, addr: *mut u8, addrlen: *mut u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

pub fn epoll_create() -> io::Result<RawFd> {
    unsafe { cvt(epoll_create1(EPOLL_CLOEXEC)) }
}

fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    unsafe { cvt(epoll_ctl(epfd, op, fd, &mut ev)) }.map(|_| ())
}

pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
}

pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
}

pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Waits for readiness, retrying on `EINTR`. `timeout_ms < 0` blocks
/// indefinitely. Returns the number of events written to `events`.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        let ret = unsafe {
            epoll_wait(
                epfd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if ret >= 0 {
            return Ok(ret as usize);
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINTR) {
            return Err(err);
        }
    }
}

pub fn eventfd_new() -> io::Result<RawFd> {
    unsafe { cvt(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) }
}

/// Adds 1 to the eventfd counter, making it readable (idempotent wake).
pub fn eventfd_signal(fd: RawFd) {
    let one: u64 = 1;
    // A full counter (EAGAIN) already means "wake pending" — ignore.
    unsafe { write(fd, one.to_ne_bytes().as_ptr(), 8) };
}

/// Consumes the pending wake count so the fd stops polling readable.
pub fn eventfd_drain(fd: RawFd) {
    let mut buf = [0u8; 8];
    unsafe { read(fd, buf.as_mut_ptr(), 8) };
}

/// Outcome of one nonblocking accept attempt.
pub enum Accepted {
    /// A connection, already `O_NONBLOCK | O_CLOEXEC`.
    Conn(RawFd),
    /// Nothing pending right now.
    Empty,
    /// The connection aborted before we got it; try again.
    Retry,
    /// Out of file descriptors (process or system table full).
    FdExhausted,
    /// Anything else.
    Err(io::Error),
}

pub fn accept_nonblocking(listener: RawFd) -> Accepted {
    let fd = unsafe {
        accept4(
            listener,
            std::ptr::null_mut(),
            std::ptr::null_mut(),
            SOCK_NONBLOCK | SOCK_CLOEXEC,
        )
    };
    if fd >= 0 {
        return Accepted::Conn(fd);
    }
    let err = io::Error::last_os_error();
    match err.raw_os_error() {
        Some(EAGAIN) => Accepted::Empty,
        Some(ECONNABORTED) | Some(EINTR) => Accepted::Retry,
        Some(EMFILE) | Some(ENFILE) => Accepted::FdExhausted,
        _ => Accepted::Err(err),
    }
}

pub fn close_fd(fd: RawFd) {
    unsafe { close(fd) };
}

/// Deepens a listening socket's accept backlog (`listen` on an
/// already-listening fd updates the queue depth on Linux, clamped by
/// `net.core.somaxconn`). A connect flood deeper than the queue costs
/// each overflowing peer a SYN retransmit — seconds of backoff — so a
/// C10K listener wants far more than `std`'s 128.
pub fn deepen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    unsafe { cvt(listen(fd, backlog)) }.map(|_| ())
}

/// Raises `RLIMIT_NOFILE` so one process can hold `want` descriptors.
/// Unprivileged processes can lift the soft limit to the hard limit;
/// privileged ones (CAP_SYS_RESOURCE) can raise the hard limit too.
/// Returns the soft limit actually in effect afterwards.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    unsafe { cvt(getrlimit(RLIMIT_NOFILE, &mut lim)) }?;
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    if lim.rlim_max < want {
        // Needs privilege; harmless to try, fall back to the hard cap.
        let raised = Rlimit {
            rlim_cur: want,
            rlim_max: want,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return Ok(want);
        }
    }
    let capped = Rlimit {
        rlim_cur: want.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    unsafe { cvt(setrlimit(RLIMIT_NOFILE, &capped)) }?;
    Ok(capped.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_matches_kernel_abi_size() {
        let expected = if cfg!(target_arch = "x86_64") { 12 } else { 16 };
        assert_eq!(std::mem::size_of::<EpollEvent>(), expected);
    }

    #[test]
    fn eventfd_signal_then_drain() {
        let fd = eventfd_new().unwrap();
        eventfd_signal(fd);
        eventfd_signal(fd);
        eventfd_drain(fd);
        close_fd(fd);
    }

    #[test]
    fn nofile_limit_query_does_not_shrink() {
        let got = raise_nofile_limit(64).unwrap();
        assert!(got >= 64);
    }
}
