//! End-to-end validation of generated workloads: every application must
//! pass the static verifier and execute to completion on the engine.

use dvm_jvm::{Completion, MapProvider, Vm};
use dvm_verifier::{MapEnvironment, StaticVerifier};
use dvm_workload::{figure11_apps, figure5_apps, generate};

fn run_app(spec: &dvm_workload::AppSpec) -> (Vec<String>, dvm_jvm::VmStats) {
    let app = generate(spec);
    let mut provider = MapProvider::new();
    for cf in &app.classes {
        let mut cf = cf.clone();
        provider.insert_class(&mut cf).unwrap();
    }
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    match vm.run_main(&app.main_class).unwrap() {
        Completion::Normal(_) => {}
        Completion::Exception(e) => {
            let (class, msg) = vm.exception_message(e).unwrap();
            panic!("{}: uncaught {class}: {msg}", spec.name);
        }
    }
    (vm.stdout.clone(), vm.stats.clone())
}

#[test]
fn all_figure5_apps_execute() {
    for spec in figure5_apps() {
        let spec = spec.scaled(1, 5000);
        let (stdout, stats) = run_app(&spec);
        assert_eq!(stdout.len(), 1, "{} should print once", spec.name);
        stdout[0].parse::<i64>().unwrap_or_else(|_| {
            panic!(
                "{}: expected numeric output, got {:?}",
                spec.name, stdout[0]
            )
        });
        assert!(
            stats.instructions > 10_000,
            "{} ran only {} instructions",
            spec.name,
            stats.instructions
        );
    }
}

#[test]
fn figure11_apps_execute() {
    for spec in figure11_apps().into_iter().take(2) {
        let spec = spec.scaled(1, 200);
        let (stdout, _) = run_app(&spec);
        assert_eq!(stdout.len(), 1);
    }
}

#[test]
fn output_is_deterministic() {
    let spec = figure5_apps().remove(0).scaled(1, 5000);
    let (a, sa) = run_app(&spec);
    let (b, sb) = run_app(&spec);
    assert_eq!(a, b);
    assert_eq!(sa.instructions, sb.instructions);
    assert_eq!(sa.cycles, sb.cycles);
}

#[test]
fn all_figure5_apps_verify() {
    for spec in figure5_apps() {
        let app = generate(&spec.scaled(1, 5000));
        // The proxy environment: bootstrap plus the application's own
        // classes (it sees them all as they flow through).
        let mut env = MapEnvironment::with_bootstrap();
        for cf in &app.classes {
            env.add(cf);
        }
        let verifier = StaticVerifier::new(env);
        for cf in &app.classes {
            let name = cf.name().unwrap().to_owned();
            let (_, report) = verifier
                .verify(cf.clone())
                .unwrap_or_else(|e| panic!("{}: {name}: {e}", spec.name));
            assert!(report.static_checks > 0);
            // Full-knowledge environment: nothing should defer to runtime.
            assert_eq!(
                report.dynamic_checks_injected, 0,
                "{name} deferred checks despite a complete environment"
            );
        }
    }
}

#[test]
fn verification_defers_without_environment_and_still_executes() {
    // Verify with an empty environment (everything about other classes is
    // deferred), then run the rewritten app: the injected RTVerifier
    // checks must pass at run time.
    let spec = figure5_apps().remove(0).scaled(1, 10000);
    let app = generate(&spec);
    let verifier = StaticVerifier::new(MapEnvironment::new());
    let mut provider = MapProvider::new();
    let mut total_injected = 0;
    for cf in &app.classes {
        let (rewritten, report) = verifier.verify(cf.clone()).unwrap();
        total_injected += report.dynamic_checks_injected;
        let mut rewritten = rewritten;
        provider.insert_class(&mut rewritten).unwrap();
    }
    assert!(total_injected > 0, "empty environment must defer checks");
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    match vm.run_main(&app.main_class).unwrap() {
        Completion::Normal(_) => {}
        Completion::Exception(e) => {
            let (class, msg) = vm.exception_message(e).unwrap();
            panic!("uncaught {class}: {msg}");
        }
    }
    assert!(
        vm.stats.dynamic_verify_checks > 0,
        "self-verifying checks should have executed"
    );
}
