//! The synthetic application generator.
//!
//! Generates *real* class files — parseable, verifiable, executable on the
//! `dvm-jvm` engine — whose aggregate size, class count, and call
//! structure match a benchmark specification. Every application has:
//!
//! - a `Main` class driving three phases (warm-up, main work loop,
//!   interactive), so first-use profiles have a meaningful startup prefix;
//! - a chain of classes, each holding a domain-flavored `hot` kernel, a
//!   `step` dispatcher that crosses class boundaries (exercising lazy
//!   loading and link assumptions), and sized filler methods;
//! - filler methods split ~40% startup / ~30% interactive / ~30% never
//!   invoked, reproducing the paper's observation that 10–30% of
//!   downloaded code is dead on the wire.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dvm_bytecode::insn::{AKind, ICond, Kind, LogicOp, NumKind, NumType};
use dvm_bytecode::Asm;
use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, ClassFile, CodeAttribute, MemberInfo};

use crate::spec::{AppSpec, WorkKind};

/// Ground-truth disposition of a generated method (used to validate the
/// repartitioning experiments against actual profiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Invoked during warm-up.
    Startup,
    /// Invoked only after warm-up.
    Interactive,
    /// Never invoked.
    Dead,
    /// Core plumbing (main/step/hot/etc.), active in all phases.
    Core,
}

/// A generated application.
#[derive(Debug)]
pub struct GeneratedApp {
    /// Specification this was generated from.
    pub spec: AppSpec,
    /// All classes, main first.
    pub classes: Vec<ClassFile>,
    /// Main class internal name.
    pub main_class: String,
    /// Ground truth per `(class, method)`.
    pub truth: Vec<(String, String, Disposition)>,
}

impl GeneratedApp {
    /// Serializes every class, returning `(name, bytes)` pairs.
    pub fn serialize(&self) -> dvm_classfile::Result<Vec<(String, Vec<u8>)>> {
        let mut out = Vec::with_capacity(self.classes.len());
        for cf in &self.classes {
            let mut cf = cf.clone();
            let name = cf.name()?.to_owned();
            out.push((name, cf.to_bytes()?));
        }
        Ok(out)
    }

    /// Total serialized size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.serialize()
            .map(|v| v.iter().map(|(_, b)| b.len()).sum())
            .unwrap_or(0)
    }
}

fn ps() -> AccessFlags {
    AccessFlags::PUBLIC | AccessFlags::STATIC
}

fn add_method(
    cf: &mut ClassFile,
    access: AccessFlags,
    name: &str,
    desc: &str,
    code: CodeAttribute,
) {
    let name_index = cf.pool.utf8(name).expect("pool");
    let descriptor_index = cf.pool.utf8(desc).expect("pool");
    cf.methods.push(MemberInfo {
        access,
        name_index,
        descriptor_index,
        attributes: vec![Attribute::Code(code)],
    });
}

fn class_name(spec: &AppSpec, i: usize) -> String {
    format!("app/{}/C{i}", spec.name)
}

/// Generates the application for `spec`.
///
/// Two passes: the first generates with a naive per-class budget, the
/// second rescales the budget by the measured/target ratio so the
/// serialized total lands close to the Figure 5 inventory.
pub fn generate(spec: &AppSpec) -> GeneratedApp {
    let first = generate_with_budget(spec, None);
    let measured = first.total_bytes().max(1);
    if spec.target_bytes == 0 {
        return first;
    }
    let ratio = spec.target_bytes as f64 / measured as f64;
    if (0.97..=1.03).contains(&ratio) {
        return first;
    }
    let naive = (spec.target_bytes.saturating_sub(2048)) / spec.class_count.max(1);
    let corrected = (naive as f64 * ratio) as usize;
    generate_with_budget(spec, Some(corrected))
}

fn generate_with_budget(spec: &AppSpec, per_class: Option<usize>) -> GeneratedApp {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut classes = Vec::with_capacity(spec.class_count + 1);
    let mut truth = Vec::new();

    // Budget per chain class, reserving ~2 KB for Main.
    let per_class =
        per_class.unwrap_or((spec.target_bytes.saturating_sub(2048)) / spec.class_count.max(1));

    for i in 0..spec.class_count {
        let (cf, class_truth) = generate_chain_class(spec, i, per_class, &mut rng);
        truth.extend(class_truth);
        classes.push(cf);
    }
    let main = generate_main(spec);
    truth.push((spec.main_class(), "main".into(), Disposition::Core));
    let mut all = vec![main];
    all.extend(classes);
    GeneratedApp {
        spec: spec.clone(),
        classes: all,
        main_class: spec.main_class(),
        truth,
    }
}

fn generate_main(spec: &AppSpec) -> ClassFile {
    let mut cf = ClassBuilder::new(&spec.main_class()).build();
    let c0 = class_name(spec, 0);
    let warmup = cf.pool.methodref(&c0, "warmup", "(I)I").expect("pool");
    let step = cf.pool.methodref(&c0, "step", "(I)I").expect("pool");
    let interact = cf.pool.methodref(&c0, "interact", "(I)I").expect("pool");
    let out_field = cf
        .pool
        .fieldref("java/lang/System", "out", "Ljava/io/PrintStream;")
        .expect("pool");
    let println = cf
        .pool
        .methodref("java/io/PrintStream", "println", "(I)V")
        .expect("pool");

    // locals: 0 = k, 1 = acc
    let mut a = Asm::new(2);
    a.iconst(0).istore(1);
    for (iters, target) in [
        (spec.warmup_iters, warmup),
        (spec.main_iters, step),
        (spec.interact_iters, interact),
    ] {
        let top = a.new_label();
        let done = a.new_label();
        a.iconst(0).istore(0);
        a.place(top);
        a.iload(0);
        if iters <= 32767 {
            a.iconst(iters);
        } else {
            let idx = cf.pool.integer(iters).expect("pool");
            a.ldc(idx);
        }
        a.if_icmp(ICond::Ge, done);
        a.iload(1).iload(0).invokestatic(target).iadd().istore(1);
        a.iinc(0, 1).goto(top);
        a.place(done);
    }
    a.getstatic(out_field).iload(1).invokevirtual(println).ret();
    let attr = a
        .finish()
        .expect("main assembles")
        .encode(&cf.pool)
        .expect("main encodes");
    add_method(&mut cf, ps(), "main", "()V", attr);
    cf
}

/// Generates chain class `i` and its ground truth.
fn generate_chain_class(
    spec: &AppSpec,
    i: usize,
    byte_budget: usize,
    rng: &mut StdRng,
) -> (ClassFile, Vec<(String, String, Disposition)>) {
    let name = class_name(spec, i);
    let next = if i + 1 < spec.class_count {
        Some(class_name(spec, i + 1))
    } else {
        None
    };
    let mut cf = ClassBuilder::new(&name).build();
    let mut truth = Vec::new();
    let core = |m: &str| (name.clone(), m.to_owned(), Disposition::Core);

    // Static data + <clinit> for the kernel.
    generate_data(&mut cf, spec.kind, &name);
    truth.push(core("<clinit>"));

    // The kernel.
    generate_hot(&mut cf, spec.kind, &name);
    truth.push(core("hot"));

    // Fillers, sized to the remaining budget.
    let fixed_overhead = 1200; // pool + core methods, roughly
    let filler_budget = byte_budget.saturating_sub(fixed_overhead);
    let filler_count = (filler_budget / 320).clamp(3, 24);
    let per_filler = filler_budget / filler_count.max(1);
    // Disposition split: GUI applications keep most of their code on the
    // startup path (menus, widgets, layout all touched while coming up),
    // which is what bounds the paper's Figure 12 gains at ~28%; batch
    // tools have larger interactive/dead tails.
    let (p_startup, p_interactive) = match spec.kind {
        WorkKind::Gui => (0.68, 0.86),
        _ => (0.4, 0.7),
    };
    let mut startup_fillers = Vec::new();
    let mut interactive_fillers = Vec::new();
    for j in 0..filler_count {
        let fname = format!("f{j}");
        generate_filler(&mut cf, &fname, per_filler, rng);
        let roll: f64 = rng.gen();
        if roll < p_startup {
            startup_fillers.push(fname.clone());
            truth.push((name.clone(), fname, Disposition::Startup));
        } else if roll < p_interactive {
            interactive_fillers.push(fname.clone());
            truth.push((name.clone(), fname, Disposition::Interactive));
        } else {
            truth.push((name.clone(), fname, Disposition::Dead));
        }
    }

    // step: cross-class dispatch into the next class's hot kernel.
    {
        let target = match &next {
            Some(n) => cf.pool.methodref(n, "hot", "(I)I").expect("pool"),
            None => cf.pool.methodref(&name, "hot", "(I)I").expect("pool"),
        };
        let mut a = Asm::new(1);
        a.iload(0).invokestatic(target);
        a.iconst((i % 64) as i32).iadd();
        a.ret_val(Kind::Int);
        let attr = a.finish().expect("step").encode(&cf.pool).expect("step");
        add_method(&mut cf, ps(), "step", "(I)I", attr);
        truth.push(core("step"));
    }

    // warmup / interact: run the phase's fillers, then chain onward.
    for (mname, fillers) in [
        ("warmup", &startup_fillers),
        ("interact", &interactive_fillers),
    ] {
        let chain = next
            .as_ref()
            .map(|n| cf.pool.methodref(n, mname, "(I)I").expect("pool"));
        let mut refs = Vec::new();
        for f in fillers {
            refs.push(cf.pool.methodref(&name, f, "(I)I").expect("pool"));
        }
        let mut a = Asm::new(2);
        a.iload(0).istore(1);
        for r in refs {
            a.iload(1).invokestatic(r).istore(1);
        }
        if let Some(c) = chain {
            a.iload(1).invokestatic(c).istore(1);
        }
        a.iload(1).ret_val(Kind::Int);
        let attr = a.finish().expect("phase").encode(&cf.pool).expect("phase");
        add_method(&mut cf, ps(), mname, "(I)I", attr);
        truth.push(core(mname));
    }

    (cf, truth)
}

/// Emits the per-kind static data field and its `<clinit>`.
fn generate_data(cf: &mut ClassFile, kind: WorkKind, class: &str) {
    let (fname, fdesc, akind, len) = match kind {
        WorkKind::Database => ("ACCTS", "[J", AKind::Long, 32),
        WorkKind::Constraint => ("V", "[D", AKind::Double, 32),
        _ => ("DATA", "[I", AKind::Int, 64),
    };
    {
        let name_index = cf.pool.utf8(fname).expect("pool");
        let descriptor_index = cf.pool.utf8(fdesc).expect("pool");
        cf.fields.push(MemberInfo {
            access: ps() | AccessFlags::FINAL,
            name_index,
            descriptor_index,
            attributes: vec![],
        });
    }
    let field = cf.pool.fieldref(class, fname, fdesc).expect("pool");

    // <clinit>: allocate and fill the array with a deterministic pattern.
    // locals: 0 = arr, 1 = i
    let mut a = Asm::new(2);
    a.iconst(len).newarray(akind).astore(0);
    let top = a.new_label();
    let done = a.new_label();
    a.iconst(0).istore(1);
    a.place(top);
    a.iload(1).iconst(len).if_icmp(ICond::Ge, done);
    a.aload(0).iload(1);
    match akind {
        AKind::Long => {
            // arr[i] = (long)(i * 37)
            a.iload(1)
                .iconst(37)
                .imul()
                .convert(NumType::Int, NumType::Long);
            a.array_store(AKind::Long);
        }
        AKind::Double => {
            // arr[i] = (double)(i + 1)
            a.iload(1)
                .iconst(1)
                .iadd()
                .convert(NumType::Int, NumType::Double);
            a.array_store(AKind::Double);
        }
        _ => {
            // arr[i] = (i * 7) & 0xFF
            a.iload(1)
                .iconst(7)
                .imul()
                .iconst(255)
                .logic(NumKind::Int, LogicOp::And);
            a.array_store(AKind::Int);
        }
    }
    a.iinc(1, 1).goto(top);
    a.place(done);
    a.aload(0).putstatic(field).ret();
    let attr = a
        .finish()
        .expect("clinit")
        .encode(&cf.pool)
        .expect("clinit");
    add_method(cf, AccessFlags::STATIC, "<clinit>", "()V", attr);
}

/// Emits the domain-flavored `hot(I)I` kernel.
fn generate_hot(cf: &mut ClassFile, kind: WorkKind, class: &str) {
    match kind {
        WorkKind::Lexer | WorkKind::Parser => hot_scanner(cf, class, kind),
        WorkKind::Compiler => hot_compiler(cf, class),
        WorkKind::Database => hot_database(cf, class),
        WorkKind::Constraint => hot_constraint(cf, class),
        WorkKind::Gui => hot_gui(cf),
    }
}

/// Lexer/Parser kernel: scan the DATA array and dispatch per element.
fn hot_scanner(cf: &mut ClassFile, class: &str, kind: WorkKind) {
    let data = cf.pool.fieldref(class, "DATA", "[I").expect("pool");
    // locals: 0 = x, 1 = i, 2 = acc, 3 = arr
    let mut a = Asm::new(4);
    a.getstatic(data).astore(3);
    a.iconst(0).istore(1);
    a.iload(0).istore(2);
    let top = a.new_label();
    let done = a.new_label();
    a.place(top);
    a.iload(1).aload(3).arraylength().if_icmp(ICond::Ge, done);
    // switch (arr[i] & 3)
    a.aload(3).iload(1).array_load(AKind::Int);
    a.iconst(3).logic(NumKind::Int, LogicOp::And);
    let c0 = a.new_label();
    let c1 = a.new_label();
    let c2 = a.new_label();
    let def = a.new_label();
    let cont = a.new_label();
    a.tableswitch(0, &[c0, c1, c2], def);
    a.place(c0);
    a.iinc(2, 1).goto(cont);
    a.place(c1);
    a.iload(2).iload(0).iadd().istore(2);
    a.goto(cont);
    a.place(c2);
    a.iload(2)
        .iload(1)
        .logic(NumKind::Int, LogicOp::Xor)
        .istore(2);
    a.goto(cont);
    a.place(def);
    if kind == WorkKind::Parser {
        // Parsers do an extra state transition on the default arm.
        a.iload(2)
            .iconst(5)
            .imul()
            .iconst(0x7FFF)
            .logic(NumKind::Int, LogicOp::And)
            .istore(2);
    } else {
        a.iinc(2, 2);
    }
    a.goto(cont);
    a.place(cont);
    a.iinc(1, 1).goto(top);
    a.place(done);
    a.iload(2).ret_val(Kind::Int);
    let attr = a.finish().expect("hot").encode(&cf.pool).expect("hot");
    add_method(cf, ps(), "hot", "(I)I", attr);
}

/// Compiler kernel: bounded fib-like recursion plus arithmetic.
fn hot_compiler(cf: &mut ClassFile, class: &str) {
    let rec = cf.pool.methodref(class, "rec", "(I)I").expect("pool");
    // rec(n): n < 2 ? n : rec(n-1) + rec(n-2)
    {
        let mut a = Asm::new(1);
        let base = a.new_label();
        a.iload(0).iconst(2).if_icmp(ICond::Lt, base);
        a.iload(0).iconst(1).isub().invokestatic(rec);
        a.iload(0).iconst(2).isub().invokestatic(rec);
        a.iadd().ret_val(Kind::Int);
        a.place(base);
        a.iload(0).ret_val(Kind::Int);
        let attr = a.finish().expect("rec").encode(&cf.pool).expect("rec");
        add_method(cf, ps(), "rec", "(I)I", attr);
    }
    // hot(x): rec((x & 3) + 7) ^ x
    {
        let mut a = Asm::new(1);
        a.iload(0)
            .iconst(3)
            .logic(NumKind::Int, LogicOp::And)
            .iconst(7)
            .iadd();
        a.invokestatic(rec);
        a.iload(0).logic(NumKind::Int, LogicOp::Xor);
        a.ret_val(Kind::Int);
        let attr = a.finish().expect("hot").encode(&cf.pool).expect("hot");
        add_method(cf, ps(), "hot", "(I)I", attr);
    }
}

/// Database kernel: TPC-A-flavored read-update-write on the accounts.
fn hot_database(cf: &mut ClassFile, class: &str) {
    let accts = cf.pool.fieldref(class, "ACCTS", "[J").expect("pool");
    // locals: 0 = x, 1 = j, 2 = acc, 3 = arr, 4 = idx
    let mut a = Asm::new(5);
    a.getstatic(accts).astore(3);
    a.iconst(0).istore(1);
    a.iconst(0).istore(2);
    let top = a.new_label();
    let done = a.new_label();
    a.place(top);
    a.iload(1).iconst(32).if_icmp(ICond::Ge, done);
    // idx = (x + j) & 31
    a.iload(0)
        .iload(1)
        .iadd()
        .iconst(31)
        .logic(NumKind::Int, LogicOp::And)
        .istore(4);
    // arr[idx] = arr[idx] + (long)j   (the balance update)
    a.aload(3).iload(4);
    a.aload(3).iload(4).array_load(AKind::Long);
    a.iload(1).convert(NumType::Int, NumType::Long);
    a.arith(NumKind::Long, dvm_bytecode::ArithOp::Add);
    a.array_store(AKind::Long);
    // acc += (int)arr[idx] & 0xFF    (the audit read)
    a.iload(2);
    a.aload(3).iload(4).array_load(AKind::Long);
    a.convert(NumType::Long, NumType::Int);
    a.iconst(255).logic(NumKind::Int, LogicOp::And);
    a.iadd().istore(2);
    a.iinc(1, 1).goto(top);
    a.place(done);
    a.iload(2).ret_val(Kind::Int);
    let attr = a.finish().expect("hot").encode(&cf.pool).expect("hot");
    add_method(cf, ps(), "hot", "(I)I", attr);
}

/// Constraint kernel: relaxation sweep over the value vector.
fn hot_constraint(cf: &mut ClassFile, class: &str) {
    let v = cf.pool.fieldref(class, "V", "[D").expect("pool");
    let half = cf.pool.double(0.5).expect("pool");
    // locals: 0 = x, 1 = j, 2 = arr
    let mut a = Asm::new(3);
    a.getstatic(v).astore(2);
    a.iconst(0).istore(1);
    let top = a.new_label();
    let done = a.new_label();
    a.place(top);
    a.iload(1).iconst(31).if_icmp(ICond::Ge, done);
    // arr[j] = (arr[j] + arr[j+1]) * 0.5
    a.aload(2).iload(1);
    a.aload(2).iload(1).array_load(AKind::Double);
    a.aload(2)
        .iload(1)
        .iconst(1)
        .iadd()
        .array_load(AKind::Double);
    a.arith(NumKind::Double, dvm_bytecode::ArithOp::Add);
    a.ldc2(half);
    a.arith(NumKind::Double, dvm_bytecode::ArithOp::Mul);
    a.array_store(AKind::Double);
    a.iinc(1, 1).goto(top);
    a.place(done);
    // return x + (int)arr[x & 31]
    a.iload(0);
    a.aload(2)
        .iload(0)
        .iconst(31)
        .logic(NumKind::Int, LogicOp::And)
        .array_load(AKind::Double);
    a.convert(NumType::Double, NumType::Int);
    a.iadd().ret_val(Kind::Int);
    let attr = a.finish().expect("hot").encode(&cf.pool).expect("hot");
    add_method(cf, ps(), "hot", "(I)I", attr);
}

/// GUI kernel: event-loop arithmetic with library calls.
fn hot_gui(cf: &mut ClassFile) {
    let max = cf
        .pool
        .methodref("java/lang/Math", "max", "(II)I")
        .expect("pool");
    // locals: 0 = x, 1 = j, 2 = acc
    let mut a = Asm::new(3);
    a.iload(0).istore(2);
    a.iconst(0).istore(1);
    let top = a.new_label();
    let done = a.new_label();
    a.place(top);
    a.iload(1).iconst(16).if_icmp(ICond::Ge, done);
    a.iload(2);
    a.iload(0)
        .iload(1)
        .imul()
        .iload(2)
        .logic(NumKind::Int, LogicOp::Xor);
    a.invokestatic(max).istore(2);
    a.iinc(1, 1).goto(top);
    a.place(done);
    a.iload(2).ret_val(Kind::Int);
    let attr = a.finish().expect("hot").encode(&cf.pool).expect("hot");
    add_method(cf, ps(), "hot", "(I)I", attr);
}

/// Emits a straight-line arithmetic filler of roughly `bytes` encoded
/// bytes.
fn generate_filler(cf: &mut ClassFile, name: &str, bytes: usize, rng: &mut StdRng) {
    // Each term is sipush (3 bytes) + op (1 byte) = 4 bytes.
    let terms = bytes.saturating_sub(16) / 4;
    let mut a = Asm::new(1);
    a.iload(0);
    for _ in 0..terms.max(4) {
        let c: i32 = rng.gen_range(-10_000..10_000);
        a.iconst(if (-1..=5).contains(&c) { 1029 } else { c });
        match rng.gen_range(0..4) {
            0 => a.iadd(),
            1 => a.isub(),
            2 => a.logic(NumKind::Int, LogicOp::Xor),
            _ => a.logic(NumKind::Int, LogicOp::Or),
        };
    }
    a.ret_val(Kind::Int);
    let attr = a
        .finish()
        .expect("filler")
        .encode(&cf.pool)
        .expect("filler");
    add_method(cf, ps(), name, "(I)I", attr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure5_apps;

    #[test]
    fn generated_classes_parse_back() {
        let spec = figure5_apps().remove(0).scaled(1, 10000);
        let app = generate(&spec);
        assert_eq!(app.classes.len(), spec.class_count + 1);
        for cf in &app.classes {
            let mut cf = cf.clone();
            let bytes = cf.to_bytes().unwrap();
            ClassFile::parse(&bytes).unwrap();
        }
    }

    #[test]
    fn sizes_track_the_specification() {
        for spec in figure5_apps() {
            let app = generate(&spec);
            let total = app.total_bytes();
            let target = spec.target_bytes;
            let ratio = total as f64 / target as f64;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{}: generated {total} vs target {target} (ratio {ratio:.2})",
                spec.name
            );
        }
    }

    #[test]
    fn ground_truth_has_all_dispositions() {
        let spec = figure5_apps().remove(2); // pizza: plenty of classes
        let app = generate(&spec);
        let dead = app
            .truth
            .iter()
            .filter(|(_, _, d)| *d == Disposition::Dead)
            .count();
        let startup = app
            .truth
            .iter()
            .filter(|(_, _, d)| *d == Disposition::Startup)
            .count();
        let inter = app
            .truth
            .iter()
            .filter(|(_, _, d)| *d == Disposition::Interactive)
            .count();
        assert!(dead > 0 && startup > 0 && inter > 0);
        // Dead fraction in the paper's observed 10-30%+ band (of filler
        // methods, dead is ~30%).
        let fillers = dead + startup + inter;
        let frac = dead as f64 / fillers as f64;
        assert!((0.15..0.45).contains(&frac), "dead fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = figure5_apps().remove(0);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.serialize().unwrap(), b.serialize().unwrap());
    }
}
