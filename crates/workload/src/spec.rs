//! Benchmark application specifications.
//!
//! Figure 5 of the paper describes the five end-to-end benchmarks by
//! size and class count; §5's Figure 11/12 use six graphical
//! applications. The generator reproduces each as a synthetic program
//! matching the published size/class-count profile, with a workload
//! kernel shaped like the application's domain.

/// The computational kernel a generated application runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Token scanning over byte buffers (JLex-like).
    Lexer,
    /// Table-driven state-machine dispatch (Javacup-like).
    Parser,
    /// Call-heavy recursive compilation passes (Pizza-like).
    Compiler,
    /// Read–update–write transactions on account arrays (Instantdb's
    /// TPC-A-like workload).
    Database,
    /// Floating-point relaxation over constraint vectors (Cassowary-like).
    Constraint,
    /// Event-loop arithmetic typical of GUI applications (§5 apps).
    Gui,
}

/// Specification of one generated application.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Short name (matches the paper's tables).
    pub name: String,
    /// Target total class-file bytes.
    pub target_bytes: usize,
    /// Number of classes.
    pub class_count: usize,
    /// Kernel shape.
    pub kind: WorkKind,
    /// Outer iterations of the main work loop (scales execution time).
    pub main_iters: i32,
    /// Iterations of the startup (warm-up) phase.
    pub warmup_iters: i32,
    /// Iterations of the post-startup interactive phase.
    pub interact_iters: i32,
    /// Deterministic generation seed.
    pub seed: u64,
}

impl AppSpec {
    /// Returns a copy with all execution iterations scaled by
    /// `num/den` (at least 1). Used by tests to run quickly.
    pub fn scaled(&self, num: i32, den: i32) -> AppSpec {
        let f = |v: i32| (v.saturating_mul(num) / den).max(1);
        AppSpec {
            main_iters: f(self.main_iters),
            warmup_iters: f(self.warmup_iters),
            interact_iters: f(self.interact_iters),
            ..self.clone()
        }
    }

    /// The application's main class internal name.
    pub fn main_class(&self) -> String {
        format!("app/{}/Main", self.name)
    }
}

/// The five Figure 5 benchmarks: name, size, classes, description.
pub fn figure5_apps() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "jlex".into(),
            target_bytes: 91 * 1024,
            class_count: 20,
            kind: WorkKind::Lexer,
            main_iters: 2500000,
            warmup_iters: 40,
            interact_iters: 200,
            seed: 0x1EE7_0001,
        },
        AppSpec {
            name: "javacup".into(),
            target_bytes: 130 * 1024,
            class_count: 35,
            kind: WorkKind::Parser,
            main_iters: 1200000,
            warmup_iters: 40,
            interact_iters: 200,
            seed: 0x1EE7_0002,
        },
        AppSpec {
            name: "pizza".into(),
            target_bytes: 825 * 1024,
            class_count: 241,
            kind: WorkKind::Compiler,
            main_iters: 3200000,
            warmup_iters: 40,
            interact_iters: 200,
            seed: 0x1EE7_0003,
        },
        AppSpec {
            name: "instantdb".into(),
            target_bytes: 312 * 1024,
            class_count: 70,
            kind: WorkKind::Database,
            main_iters: 3000000,
            warmup_iters: 40,
            interact_iters: 200,
            seed: 0x1EE7_0004,
        },
        AppSpec {
            name: "cassowary".into(),
            target_bytes: 85 * 1024,
            class_count: 34,
            kind: WorkKind::Constraint,
            main_iters: 2400000,
            warmup_iters: 40,
            interact_iters: 200,
            seed: 0x1EE7_0005,
        },
    ]
}

/// The six §5 graphical applications plotted in Figures 11 and 12.
///
/// The paper does not publish their sizes; these are chosen to span the
/// range of late-1990s Java GUI applications from a small animated applet
/// to the HotJava browser, which is what the figures' spread requires.
pub fn figure11_apps() -> Vec<AppSpec> {
    let gui = |name: &str, target_bytes, class_count, seed| AppSpec {
        name: name.to_owned(),
        target_bytes,
        class_count,
        kind: WorkKind::Gui,
        main_iters: 400,
        warmup_iters: 60,
        interact_iters: 300,
        seed,
    };
    vec![
        gui("workshop", 2_500 * 1024, 180, 0x6001),
        gui("studio", 1_800 * 1024, 150, 0x6002),
        gui("hotjava", 3_000 * 1024, 220, 0x6003),
        gui("netcharts", 600 * 1024, 60, 0x6004),
        gui("cq", 300 * 1024, 36, 0x6005),
        gui("animatedui", 150 * 1024, 20, 0x6006),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_matches_paper_inventory() {
        let apps = figure5_apps();
        assert_eq!(apps.len(), 5);
        let pizza = apps.iter().find(|a| a.name == "pizza").unwrap();
        assert_eq!(pizza.class_count, 241);
        assert_eq!(pizza.target_bytes, 825 * 1024);
        let jlex = apps.iter().find(|a| a.name == "jlex").unwrap();
        assert_eq!(jlex.class_count, 20);
    }

    #[test]
    fn scaling_reduces_iterations() {
        let a = figure5_apps().remove(0);
        let s = a.scaled(1, 100);
        assert_eq!(s.main_iters, a.main_iters / 100);
        assert!(s.warmup_iters >= 1);
    }
}
