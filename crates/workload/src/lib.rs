//! Synthetic workload generation.
//!
//! The paper's evaluation runs real Java applications (Figure 5) and real
//! Internet applets; neither is available to this reproduction, so this
//! crate generates *equivalent synthetic programs*: real class files that
//! parse, verify, and execute on the `dvm-jvm` engine, sized and
//! structured to match the paper's published inventories (see DESIGN.md's
//! substitution table). Generation is deterministic per seed.

pub mod applets;
pub mod codegen;
pub mod spec;

pub use applets::{corpus, Applet};
pub use codegen::{generate, Disposition, GeneratedApp};
pub use spec::{figure11_apps, figure5_apps, AppSpec, WorkKind};
