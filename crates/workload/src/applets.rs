//! The Internet applet corpus.
//!
//! §4.1.2 measures proxy overhead on "a list of all indexed Java applets
//! from the AltaVista search engine" — a random subset of 100. We generate
//! a corpus of 100 single-purpose applets with a heavy-tailed size
//! distribution (most real applets were small; a few were very large),
//! each a real executable class.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dvm_classfile::ClassFile;

use crate::codegen::generate;
use crate::spec::{AppSpec, WorkKind};

/// One corpus applet.
#[derive(Debug)]
pub struct Applet {
    /// Synthetic source URL.
    pub url: String,
    /// Main (only) chain of classes.
    pub classes: Vec<ClassFile>,
    /// Main class internal name.
    pub main_class: String,
}

/// Generates the 100-applet corpus.
///
/// Sizes are drawn log-normally with a median of ~25 KB (mean ~40 KB) and
/// a fat tail up to a few hundred KB, which reproduces the paper's regime
/// where the ~265 ms rewrite cost is ~12% of the mean 2198 ms Internet
/// fetch.
pub fn corpus(seed: u64) -> Vec<Applet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(100);
    for i in 0..100 {
        // Log-normal around median 8 KB, sigma ~1.0.
        let z: f64 = {
            // Box-Muller from two uniforms.
            let u1: f64 = rng.gen_range(1e-9..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let size = (25_600.0 * (0.9 * z).exp()).clamp(2_500.0, 400_000.0) as usize;
        let class_count = (size / 6_000).clamp(1, 30);
        let spec = AppSpec {
            name: format!("applet{i}"),
            target_bytes: size,
            class_count,
            kind: WorkKind::Gui,
            main_iters: 50,
            warmup_iters: 10,
            interact_iters: 20,
            seed: seed ^ (i as u64) << 8,
        };
        let app = generate(&spec);
        out.push(Applet {
            url: format!("http://applets.example.net/a{i}/Main.class"),
            main_class: app.main_class.clone(),
            classes: app.classes,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_100_heavy_tailed_applets() {
        let applets = corpus(7);
        assert_eq!(applets.len(), 100);
        let sizes: Vec<usize> = applets
            .iter()
            .map(|a| {
                a.classes
                    .iter()
                    .map(|c| c.clone().to_bytes().unwrap().len())
                    .sum::<usize>()
            })
            .collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(mean > 20_000.0 && mean < 90_000.0, "mean {mean}");
        assert!(
            max > 2 * mean as usize,
            "tail too thin: max {max}, mean {mean}"
        );
        assert!(min >= 2_000);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus(7);
        let b = corpus(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.url, y.url);
            assert_eq!(
                x.classes.first().unwrap().clone().to_bytes().unwrap(),
                y.classes.first().unwrap().clone().to_bytes().unwrap()
            );
        }
    }
}
