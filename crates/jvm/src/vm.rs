//! The virtual machine: loading, initialization, and runtime state.

use std::collections::HashMap;

use dvm_classfile::ClassFile;
use dvm_exec::ClassIr;

use crate::classes::{ClassProvider, InitState, Registry};
use crate::error::{Result, VmError};
use crate::exec::ExecTier;
use crate::heap::{ClassId, Heap, HeapObject, HeapRef};
use crate::hooks::{BuiltinChecks, DynamicServices, NoServices};
use crate::natives::NativeRegistry;
use crate::value::Value;

/// Default heap limit (64 MB, matching the paper's test machines).
pub const DEFAULT_HEAP_LIMIT: usize = 64 << 20;

/// Execution statistics maintained by the VM.
#[derive(Debug, Default, Clone)]
pub struct VmStats {
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Simulated CPU cycles consumed (instruction cost model plus service
    /// hook costs).
    pub cycles: u64,
    /// Method invocations (interpreted and native).
    pub invocations: u64,
    /// Objects allocated.
    pub allocations: u64,
    /// Runtime link checks executed by `dvm/rt/RTVerifier` (the dynamic
    /// half of Figure 8).
    pub dynamic_verify_checks: u64,
    /// Access checks routed through `dvm/rt/Enforcer`.
    pub security_checks: u64,
    /// Classes loaded, with their class-file sizes, in load order.
    pub classes_loaded: Vec<(String, usize)>,
    /// Exceptions thrown (including internally-raised runtime exceptions).
    pub exceptions_thrown: u64,
}

impl VmStats {
    /// Total bytes of class files loaded.
    pub fn bytes_loaded(&self) -> usize {
        self.classes_loaded.iter().map(|(_, b)| *b).sum()
    }
}

/// One entry in the virtual file system backing the `java/io` natives.
#[derive(Debug, Clone)]
pub struct VfsFile {
    /// File contents.
    pub data: Vec<u8>,
}

/// The virtual machine.
///
/// A `Vm` owns the heap, class registry, native registry, a class provider
/// (local map or, in the DVM configuration, a network fetch path), the
/// dynamic-service hooks, and a small virtual environment (stdout,
/// properties, files) so benchmark workloads can run hermetically.
pub struct Vm {
    /// Loaded classes.
    pub registry: Registry,
    /// The object heap.
    pub heap: Heap,
    /// Native method implementations.
    pub natives: NativeRegistry,
    /// Dynamic service components (enforcement manager, audit stub, ...).
    pub services: Box<dyn DynamicServices>,
    provider: Box<dyn ClassProvider>,
    /// Interned string literals.
    interned: HashMap<String, HeapRef>,
    /// Captured output of `System.out`.
    pub stdout: Vec<String>,
    /// System properties served by `System.getProperty`.
    pub properties: HashMap<String, String>,
    /// Virtual file system for the `java/io` natives.
    pub vfs: HashMap<String, VfsFile>,
    /// Open file handles: `(path, position)`.
    pub open_files: Vec<Option<(String, usize)>>,
    /// Execution statistics.
    pub stats: VmStats,
    /// Remaining instruction budget, if limited.
    pub fuel: Option<u64>,
    /// Audit/profile site names registered by instrumentation metadata.
    pub site_names: HashMap<i32, String>,
    /// Monolithic-model security check costs hardwired into library
    /// natives (all `None` for DVM clients).
    pub builtin_checks: BuiltinChecks,
    /// The optimizing execution tier: compiled-IR methods and per-tier
    /// dispatch counters.
    pub exec: ExecTier,
    /// References published by suspended compiled-IR activations (and by
    /// interpreter frames around cross-tier calls) so the collector can
    /// see them; see `crate::exec`.
    pub exec_roots: Vec<HeapRef>,
    loading: Vec<String>,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("classes", &self.registry.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Vm {
    /// Creates a VM with the given class provider and default hooks.
    ///
    /// Bootstrap classes are linked immediately; `System.out`/`err` are
    /// wired to the capture buffer.
    pub fn new(provider: Box<dyn ClassProvider>) -> Result<Vm> {
        Vm::with_services(provider, Box::new(NoServices))
    }

    /// Creates a VM with explicit dynamic-service hooks.
    pub fn with_services(
        provider: Box<dyn ClassProvider>,
        services: Box<dyn DynamicServices>,
    ) -> Result<Vm> {
        let mut vm = Vm {
            registry: Registry::new(),
            heap: Heap::new(DEFAULT_HEAP_LIMIT),
            natives: NativeRegistry::with_builtins(),
            services,
            provider,
            interned: HashMap::new(),
            stdout: Vec::new(),
            properties: default_properties(),
            vfs: HashMap::new(),
            open_files: Vec::new(),
            stats: VmStats::default(),
            fuel: None,
            site_names: HashMap::new(),
            builtin_checks: BuiltinChecks::default(),
            exec: ExecTier::new(),
            exec_roots: Vec::new(),
            loading: Vec::new(),
        };
        for cf in crate::bootstrap::bootstrap_classes() {
            // Bootstrap classes are resident, not fetched: record no bytes.
            vm.registry.link(&cf, 0)?;
        }
        // Wire System.out / System.err.
        let ps_class = vm
            .registry
            .id_of("java/io/PrintStream")
            .ok_or_else(|| VmError::ClassNotFound("java/io/PrintStream".into()))?;
        let out = vm.alloc_instance(ps_class)?;
        let err = vm.alloc_instance(ps_class)?;
        vm.set_static("java/lang/System", "out", Value::Ref(Some(out)))?;
        vm.set_static("java/lang/System", "err", Value::Ref(Some(err)))?;
        Ok(vm)
    }

    /// Registers a file in the virtual file system.
    pub fn add_file(&mut self, path: &str, data: Vec<u8>) {
        self.vfs.insert(path.to_owned(), VfsFile { data });
    }

    /// Ensures `name` is loaded and linked, loading supertypes first.
    pub fn load_class(&mut self, name: &str) -> Result<ClassId> {
        if let Some(id) = self.registry.id_of(name) {
            return Ok(id);
        }
        if self.loading.iter().any(|n| n == name) {
            return Err(VmError::LinkError {
                class: name.to_owned(),
                reason: "circular class hierarchy".into(),
            });
        }
        let bytes = self
            .provider
            .load(name)
            .ok_or_else(|| VmError::ClassNotFound(name.to_owned()))?;
        let size = bytes.len();
        let cf = ClassFile::parse(&bytes)?;
        let declared = cf.name()?.to_owned();
        if declared != name {
            return Err(VmError::LinkError {
                class: name.to_owned(),
                reason: format!("provider returned class {declared}"),
            });
        }
        self.loading.push(name.to_owned());
        let result = (|| -> Result<ClassId> {
            if let Some(sup) = cf.super_name()? {
                let sup = sup.to_owned();
                self.load_class(&sup)?;
            }
            let ifaces: Vec<String> = cf
                .interface_names()?
                .into_iter()
                .map(str::to_owned)
                .collect();
            for iface in ifaces {
                self.load_class(&iface)?;
            }
            self.registry.link(&cf, size)
        })();
        self.loading.pop();
        let id = result?;
        self.stats.classes_loaded.push((name.to_owned(), size));
        self.bind_exec_ir(id);
        Ok(id)
    }

    /// Installs compiled IR for a class, binding immediately when the
    /// class is already linked and deferring otherwise (the tier binds
    /// pending IR when the class loads).
    pub fn install_ir(&mut self, ir: ClassIr) {
        match self.registry.id_of(&ir.class) {
            Some(id) => self.bind_exec_ir_class(id, ir),
            None => self.exec.offer(ir),
        }
    }

    /// Binds any pending compiled IR for a freshly-linked class.
    fn bind_exec_ir(&mut self, id: ClassId) {
        let name = self.registry.get(id).name.clone();
        if let Some(ir) = self.exec.take_pending(&name) {
            self.bind_exec_ir_class(id, ir);
        }
    }

    fn bind_exec_ir_class(&mut self, id: ClassId, ir: ClassIr) {
        let mut installed = 0u64;
        for func in ir.methods {
            let idx = {
                let rc = self.registry.get(id);
                rc.method_index
                    .get(&(func.name.clone(), func.descriptor.clone()))
                    .copied()
                    // Never shadow native or abstract methods.
                    .filter(|&i| rc.methods[i].code.is_some())
            };
            if let Some(idx) = idx {
                self.exec.install(id, idx, func);
                installed += 1;
            }
        }
        if installed > 0 {
            self.exec.stats.installed_classes += 1;
        }
    }

    /// Allocates a zero-initialized instance of `class`.
    pub fn alloc_instance(&mut self, class: ClassId) -> Result<HeapRef> {
        let fields = self
            .registry
            .get(class)
            .instance_layout
            .iter()
            .map(|s| Value::default_for(&s.descriptor))
            .collect();
        self.stats.allocations += 1;
        self.heap.alloc(HeapObject::Instance { class, fields })
    }

    /// Interns a string literal, returning its heap reference.
    pub fn intern_string(&mut self, s: &str) -> Result<HeapRef> {
        if let Some(&r) = self.interned.get(s) {
            return Ok(r);
        }
        let r = self.heap.alloc(HeapObject::Str(s.to_owned()))?;
        self.interned.insert(s.to_owned(), r);
        Ok(r)
    }

    /// Allocates a (non-interned) string.
    pub fn new_string(&mut self, s: String) -> Result<HeapRef> {
        self.stats.allocations += 1;
        self.heap.alloc(HeapObject::Str(s))
    }

    /// Reads a heap string.
    pub fn get_string(&self, r: HeapRef) -> Result<&str> {
        match self.heap.get(r)? {
            HeapObject::Str(s) => Ok(s),
            other => Err(VmError::BadCode(format!(
                "expected string, found {other:?}"
            ))),
        }
    }

    /// Returns the runtime class of a heap object.
    pub fn class_of(&self, r: HeapRef) -> Result<ClassId> {
        match self.heap.get(r)? {
            HeapObject::Instance { class, .. } => Ok(*class),
            HeapObject::Str(_) => self
                .registry
                .id_of("java/lang/String")
                .ok_or_else(|| VmError::ClassNotFound("java/lang/String".into())),
            HeapObject::Array(_) => self
                .registry
                .id_of("java/lang/Object")
                .ok_or_else(|| VmError::ClassNotFound("java/lang/Object".into())),
        }
    }

    /// Sets a static field by class and field name.
    pub fn set_static(&mut self, class: &str, field: &str, value: Value) -> Result<()> {
        let id = self
            .registry
            .id_of(class)
            .ok_or_else(|| VmError::ClassNotFound(class.to_owned()))?;
        let (decl, off) =
            self.registry
                .resolve_static(id, field)
                .ok_or_else(|| VmError::NoSuchMember {
                    class: class.to_owned(),
                    name: field.to_owned(),
                    descriptor: "<static>".to_owned(),
                })?;
        self.registry.get_mut(decl).statics[off] = value;
        Ok(())
    }

    /// Reads a static field by class and field name.
    pub fn get_static(&self, class: &str, field: &str) -> Result<Value> {
        let id = self
            .registry
            .id_of(class)
            .ok_or_else(|| VmError::ClassNotFound(class.to_owned()))?;
        let (decl, off) =
            self.registry
                .resolve_static(id, field)
                .ok_or_else(|| VmError::NoSuchMember {
                    class: class.to_owned(),
                    name: field.to_owned(),
                    descriptor: "<static>".to_owned(),
                })?;
        Ok(self.registry.get(decl).statics[off])
    }

    /// Creates an exception instance of `class_name` with `message`,
    /// loading the class if necessary.
    pub fn make_exception(&mut self, class_name: &str, message: &str) -> Result<HeapRef> {
        let class = self.load_class(class_name)?;
        let r = self.alloc_instance(class)?;
        let msg = self.new_string(message.to_owned())?;
        // Throwable's `message` is the first field in every throwable
        // layout (Throwable declares it first).
        if let HeapObject::Instance { fields, .. } = self.heap.get_mut(r)? {
            if let Some(slot) = fields.get_mut(0) {
                *slot = Value::Ref(Some(msg));
            }
        }
        self.stats.exceptions_thrown += 1;
        Ok(r)
    }

    /// Reads a throwable's message for diagnostics.
    pub fn exception_message(&self, r: HeapRef) -> Option<(String, String)> {
        let class = self.class_of(r).ok()?;
        let name = self.registry.get(class).name.clone();
        let msg = match self.heap.get(r).ok()? {
            HeapObject::Instance { fields, .. } => match fields.first() {
                Some(Value::Ref(Some(m))) => self.get_string(*m).ok()?.to_owned(),
                _ => String::new(),
            },
            _ => String::new(),
        };
        Some((name, msg))
    }

    /// Returns GC roots contributed by VM-global state (statics, interned
    /// strings, open streams).
    pub fn global_roots(&self) -> Vec<HeapRef> {
        let mut roots: Vec<HeapRef> = self.interned.values().copied().collect();
        roots.extend_from_slice(&self.exec_roots);
        for (_, class) in self.registry.iter() {
            for v in &class.statics {
                if let Value::Ref(Some(r)) = v {
                    roots.push(*r);
                }
            }
        }
        roots
    }

    /// Marks a class initialization state.
    pub fn set_init_state(&mut self, class: ClassId, state: InitState) {
        self.registry.get_mut(class).init_state = state;
    }
}

fn default_properties() -> HashMap<String, String> {
    let mut p = HashMap::new();
    p.insert("java.version".into(), "1.2".into());
    p.insert("java.vendor".into(), "DVM reproduction".into());
    p.insert("os.name".into(), "SimOS".into());
    p.insert("os.arch".into(), "x86".into());
    p.insert("user.name".into(), "dvm".into());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::MapProvider;

    #[test]
    fn bootstrap_links_and_wires_system_out() {
        let vm = Vm::new(Box::new(MapProvider::new())).unwrap();
        assert!(vm.registry.len() > 25);
        let out = vm.get_static("java/lang/System", "out").unwrap();
        assert!(matches!(out, Value::Ref(Some(_))));
    }

    #[test]
    fn missing_class_reports_name() {
        let mut vm = Vm::new(Box::new(MapProvider::new())).unwrap();
        match vm.load_class("does/not/Exist") {
            Err(VmError::ClassNotFound(n)) => assert_eq!(n, "does/not/Exist"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn string_interning_dedupes() {
        let mut vm = Vm::new(Box::new(MapProvider::new())).unwrap();
        let a = vm.intern_string("x").unwrap();
        let b = vm.intern_string("x").unwrap();
        assert_eq!(a, b);
        let c = vm.new_string("x".into()).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn exceptions_carry_class_and_message() {
        let mut vm = Vm::new(Box::new(MapProvider::new())).unwrap();
        let e = vm
            .make_exception("java/lang/NullPointerException", "boom")
            .unwrap();
        let (class, msg) = vm.exception_message(e).unwrap();
        assert_eq!(class, "java/lang/NullPointerException");
        assert_eq!(msg, "boom");
    }

    #[test]
    fn load_class_records_transfer_stats() {
        let mut provider = MapProvider::new();
        let mut cf = dvm_classfile::ClassBuilder::new("demo/T").build();
        provider.insert_class(&mut cf).unwrap();
        let mut vm = Vm::new(Box::new(provider)).unwrap();
        vm.load_class("demo/T").unwrap();
        assert_eq!(vm.stats.classes_loaded.len(), 1);
        assert_eq!(vm.stats.classes_loaded[0].0, "demo/T");
        assert!(vm.stats.classes_loaded[0].1 > 0);
    }
}
